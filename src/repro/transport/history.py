r"""History-based transport: the scalar schedule over the stage kernels.

This is OpenMC's algorithm and the paper's baseline: each particle is tracked
from birth (a fission site) to death (absorption, leakage, or energy
cutoff), with every decision driven by the particle's private random-number
stream.  The physics lives in :mod:`repro.transport.stages`; this module is
only the *schedule* — the per-particle while-loop that decides when each
kernel's **scalar apply** runs.

**The RNG protocol.**  The event-based loop (:mod:`repro.transport.events`)
must consume each particle's stream in *exactly* the same order so the two
algorithms produce identical histories.  The canonical order, per particle:

1. birth: 2 draws (isotropic direction);
2. per flight segment:
   a. XS lookup: 1 conditional draw per in-range URR nuclide, in material
      nuclide order (inside :class:`repro.physics.macroxs.XSCalculator`);
   b. 1 draw for the collision distance;
   c. surface crossing: no draws;
   d. collision (analog mode): 1 draw for the channel, then
      - capture: no further draws (history ends);
      - fission: 1 draw for the fissioning nuclide, 1 draw for the site
        count, then per banked site the Watt rejection draws (variable);
      - scatter: 1 draw for the scattering nuclide, then kinematics —
        S(alpha, beta) (3 draws: outgoing bin, cosine bin, azimuth),
        free-gas (7 draws), or target-at-rest elastic (2 draws);
   e. collision (survival-biasing mode): NO channel draw — capture and
      fission are implicit.  1 draw for the expected fission-site count,
      per-site Watt draws, then the scatter sequence of (d), then 1
      roulette draw only if the reduced weight fell below the cutoff.

Any change to this protocol lands in the stage kernels, which both
schedules share; the equivalence tests in
``tests/transport/test_equivalence.py`` enforce bit-parity.
"""

from __future__ import annotations

import numpy as np

from ..types import CollisionChannel
from .context import TransportContext
from .meshtally import PowerTally
from .particle import FissionBank, Particle
from .spectrum import SpectrumTally
from .stages import (
    COLLISION,
    CROSSING,
    FISSION,
    FLIGHT,
    SCATTER,
    SURVIVAL,
    XS_LOOKUP,
)
from .stats import TransportStats
from .tally import GlobalTallies

__all__ = ["transport_history", "run_generation_history"]


def transport_history(
    particle: Particle,
    ctx: TransportContext,
    tallies: GlobalTallies,
    fission_bank: FissionBank,
    k_norm: float = 1.0,
    power: PowerTally | None = None,
    spectrum: SpectrumTally | None = None,
    stats: TransportStats | None = None,
) -> None:
    """Track one particle to death, scoring tallies and banking fission sites.

    With ``stats``, records one row per history: the number of segments
    (lookups/flights), collisions, and crossings this particle saw — the
    per-history divergence profile that banking has to absorb.  Column
    totals match the event schedule's per-cycle rows exactly.
    """
    stream = particle.stream
    counters = ctx.counters
    n_lookup = 0
    n_collision = 0
    n_crossing = 0

    while particle.alive:
        mat_id = ctx.material_id_at(particle.position)
        if mat_id < 0:
            tallies.n_leaks += 1
            particle.alive = False
            break
        material = ctx.material(mat_id)

        # (a) Cross-section lookup (Algorithm 1) — the bottleneck kernel.
        xs = XS_LOOKUP.scalar(ctx, material, particle.energy, stream)
        n_lookup += 1

        # (b) Distance to collision (Eq. 1) vs distance to boundary.
        d_coll, d_bound = FLIGHT.scalar(ctx, particle, xs)

        d_move = min(d_bound, d_coll)
        if power is not None:
            power.score_track(
                particle.position + 0.5 * d_move * particle.direction,
                particle.weight,
                d_move,
                xs.fission,
            )
        if spectrum is not None:
            spectrum.score_track(particle.energy, particle.weight, d_move)

        if d_bound < d_coll:
            # (c) Surface crossing: move past the surface and relocate.
            tallies.score_track(particle.weight, d_bound, xs.nu_fission)
            CROSSING.scalar(ctx, particle, tallies, d_bound)
            n_crossing += 1
            continue

        # (d) Collision.
        tallies.score_track(particle.weight, d_coll, xs.nu_fission)
        particle.position = particle.position + d_coll * particle.direction
        tallies.score_collision(particle.weight, xs.nu_fission, xs.total)
        counters.collisions += 1
        n_collision += 1

        if ctx.survival_biasing:
            # (e) Implicit capture: no channel draw; expected fission sites
            # banked, weight reduced by the survival probability, always
            # scatter, roulette below the weight cutoff.
            SURVIVAL.scalar(
                ctx, particle, material, xs, tallies, fission_bank, k_norm
            )
            continue

        channel = COLLISION.scalar(ctx, xs, stream)

        if channel == CollisionChannel.CAPTURE:
            tallies.score_absorption(
                particle.weight, xs.nu_fission, xs.absorption
            )
            particle.alive = False

        elif channel == CollisionChannel.FISSION:
            tallies.score_absorption(
                particle.weight, xs.nu_fission, xs.absorption
            )
            counters.fissions += 1
            FISSION.scalar(ctx, particle, material, fission_bank, k_norm)

        else:  # SCATTER (clamp included in the kernel)
            SCATTER.scalar(ctx, particle, material)

    if stats is not None:
        stats.record(n_lookup, n_collision, n_crossing)


def run_generation_history(
    ctx: TransportContext,
    positions: np.ndarray,
    energies: np.ndarray,
    tallies: GlobalTallies,
    k_norm: float = 1.0,
    first_id: int = 0,
    stats: TransportStats | None = None,
    power: PowerTally | None = None,
    spectrum: SpectrumTally | None = None,
) -> FissionBank:
    """Transport one generation of source particles, history style.

    Returns the fission bank for the next generation.  ``first_id`` offsets
    the particle ids (and hence their RNG streams) so successive batches
    draw from disjoint stream ranges.  ``stats`` records one row per
    history (vs one row per cycle on the event schedule); column totals
    agree across backends.
    """
    bank = FissionBank()
    n = positions.shape[0]
    tallies.source_weight += float(n)
    for i in range(n):
        particle = Particle.from_source(
            first_id + i, positions[i], float(energies[i]), ctx.master_seed
        )
        ctx.counters.rn_draws += 2
        transport_history(
            particle, ctx, tallies, bank, k_norm, power, spectrum, stats
        )
    return bank
