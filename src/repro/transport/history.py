r"""History-based transport: one thread of execution per particle history.

This is OpenMC's algorithm and the paper's baseline: each particle is tracked
from birth (a fission site) to death (absorption, leakage, or energy
cutoff), with every decision driven by the particle's private random-number
stream.

**The RNG protocol.**  The event-based loop (:mod:`repro.transport.events`)
must consume each particle's stream in *exactly* the same order so the two
algorithms produce identical histories.  The canonical order, per particle:

1. birth: 2 draws (isotropic direction);
2. per flight segment:
   a. XS lookup: 1 conditional draw per in-range URR nuclide, in material
      nuclide order (inside :class:`repro.physics.macroxs.XSCalculator`);
   b. 1 draw for the collision distance;
   c. surface crossing: no draws;
   d. collision (analog mode): 1 draw for the channel, then
      - capture: no further draws (history ends);
      - fission: 1 draw for the fissioning nuclide, 1 draw for the site
        count, then per banked site the Watt rejection draws (variable);
      - scatter: 1 draw for the scattering nuclide, then kinematics —
        S(alpha, beta) (3 draws: outgoing bin, cosine bin, azimuth),
        free-gas (7 draws), or target-at-rest elastic (2 draws);
   e. collision (survival-biasing mode): NO channel draw — capture and
      fission are implicit.  1 draw for the expected fission-site count,
      per-site Watt draws, then the scatter sequence of (d), then 1
      roulette draw only if the reduced weight fell below the cutoff.

Any change here must be mirrored in the event loop (and vice versa); the
equivalence tests in ``tests/transport/test_equivalence.py`` enforce it.
"""

from __future__ import annotations

import numpy as np

from ..physics.collision import select_channel
from ..physics.fission import WATT_A, WATT_B, sample_nu, watt_spectrum
from ..physics.scattering import elastic_scatter, rotate_direction
from ..physics.thermal import free_gas_scatter
from ..types import CollisionChannel, Reaction
from .context import TransportContext
from .meshtally import PowerTally
from .particle import FissionBank, Particle
from .spectrum import SpectrumTally
from .tally import GlobalTallies

__all__ = ["transport_history", "run_generation_history"]

_TINY = 1.0e-300


def _sample_index(weights: np.ndarray, xi: float) -> int:
    """CDF-sample an index from unnormalized weights."""
    cum = np.cumsum(weights)
    if cum[-1] <= 0.0:
        return int(np.argmax(weights))
    k = int(np.searchsorted(cum, xi * cum[-1], side="right"))
    return min(k, weights.shape[0] - 1)


def transport_history(
    particle: Particle,
    ctx: TransportContext,
    tallies: GlobalTallies,
    fission_bank: FissionBank,
    k_norm: float = 1.0,
    power: PowerTally | None = None,
    spectrum: SpectrumTally | None = None,
) -> None:
    """Track one particle to death, scoring tallies and banking fission sites."""
    calc = ctx.calculator
    stream = particle.stream
    counters = ctx.counters

    while particle.alive:
        mat_id = ctx.material_id_at(particle.position)
        if mat_id < 0:
            tallies.n_leaks += 1
            particle.alive = False
            break
        material = ctx.material(mat_id)

        # (a) Cross-section lookup (Algorithm 1) — the bottleneck kernel.
        xs = calc.scalar(material, particle.energy, stream, counters)

        # (b) Distance to collision (Eq. 1) vs distance to boundary.
        xi_dist = stream.prn()
        d_coll = -np.log(max(xi_dist, _TINY)) / xs.total
        d_bound = ctx.boundary_distance(particle.position, particle.direction)
        counters.rn_draws += 1
        counters.flights += 1

        d_move = min(d_bound, d_coll)
        if power is not None:
            power.score_track(
                particle.position + 0.5 * d_move * particle.direction,
                particle.weight,
                d_move,
                xs.fission,
            )
        if spectrum is not None:
            spectrum.score_track(particle.energy, particle.weight, d_move)

        if d_bound < d_coll:
            # (c) Surface crossing: move past the surface and relocate.
            tallies.score_track(particle.weight, d_bound, xs.nu_fission)
            particle.position = ctx.nudge(
                particle.position + d_bound * particle.direction,
                particle.direction,
            )
            if ctx.material_id_at(particle.position) < 0:
                p_new, u_new, alive = ctx.handle_escape(
                    particle.position, particle.direction
                )
                if not alive:
                    tallies.n_leaks += 1
                    particle.alive = False
                else:
                    particle.position = p_new
                    particle.direction = u_new
            continue

        # (d) Collision.
        tallies.score_track(particle.weight, d_coll, xs.nu_fission)
        particle.position = particle.position + d_coll * particle.direction
        tallies.score_collision(particle.weight, xs.nu_fission, xs.total)
        counters.collisions += 1

        if ctx.survival_biasing:
            # (e) Implicit capture: no channel draw; expected fission sites
            # banked, weight reduced by the survival probability, always
            # scatter, roulette below the weight cutoff.
            w = particle.weight
            absorbed = w * xs.absorption / xs.total
            tallies.score_absorption(absorbed, xs.nu_fission, xs.absorption)
            nu_bar = w * xs.nu_fission / xs.total
            n_sites = sample_nu(nu_bar, k_norm, stream.prn())
            counters.rn_draws += 1
            if n_sites:
                counters.fissions += 1
            for s in range(n_sites):
                e_birth = watt_spectrum(WATT_A, WATT_B, stream)
                fission_bank.add(particle.position, e_birth, particle.id, s)
            particle.weight = w * (1.0 - xs.absorption / xs.total)
            _do_scatter(particle, ctx, material)
            if particle.energy < ctx.energy_cutoff:
                particle.energy = ctx.energy_cutoff
            if particle.weight < ctx.weight_cutoff:
                xi = stream.prn()
                counters.rn_draws += 1
                if xi < particle.weight / ctx.weight_survival:
                    particle.weight = ctx.weight_survival
                else:
                    particle.alive = False
            continue

        channel = select_channel(xs, stream.prn())
        counters.rn_draws += 1

        if channel == CollisionChannel.CAPTURE:
            tallies.score_absorption(
                particle.weight, xs.nu_fission, xs.absorption
            )
            particle.alive = False

        elif channel == CollisionChannel.FISSION:
            tallies.score_absorption(
                particle.weight, xs.nu_fission, xs.absorption
            )
            counters.fissions += 1
            weights = calc.attribution_weights(
                material, particle.energy, Reaction.FISSION, counters
            )[:, 0]
            k = _sample_index(weights, stream.prn())
            ids, _ = material.resolve(ctx.library)
            nuc = ctx.library[int(ids[k])]
            nu_bar = float(nuc.nu(particle.energy)) * particle.weight
            n_sites = sample_nu(nu_bar, k_norm, stream.prn())
            counters.rn_draws += 2
            for s in range(n_sites):
                e_birth = watt_spectrum(nuc.watt_a, nuc.watt_b, stream)
                fission_bank.add(particle.position, e_birth, particle.id, s)
            particle.alive = False

        else:  # SCATTER
            _do_scatter(particle, ctx, material)
            if particle.energy < ctx.energy_cutoff:
                particle.energy = ctx.energy_cutoff


def _do_scatter(particle: Particle, ctx: TransportContext, material) -> None:
    """The shared scatter sequence: 1 draw for the nuclide, then S(a,b) /
    free-gas / target-at-rest kinematics (see the RNG protocol above)."""
    calc = ctx.calculator
    stream = particle.stream
    counters = ctx.counters
    weights = calc.attribution_weights(
        material, particle.energy, Reaction.ELASTIC, counters
    )[:, 0]
    k = _sample_index(weights, stream.prn())
    counters.rn_draws += 1
    ids, _ = material.resolve(ctx.library)
    nuc = ctx.library[int(ids[k])]
    sab = ctx.library.sab.get(nuc.name) if calc.use_sab else None
    if sab is not None and particle.energy < sab.cutoff:
        e_out, mu = sab.sample(particle.energy, stream.prn(), stream.prn())
        phi = 2.0 * np.pi * stream.prn()
        particle.direction = rotate_direction(particle.direction, mu, phi)
        particle.energy = e_out
        counters.rn_draws += 3
        counters.sab_samples += 1
    elif particle.energy < ctx.free_gas_cutoff:
        e_out, new_dir = free_gas_scatter(
            particle.energy, particle.direction, nuc.awr, ctx.temperature, stream
        )
        particle.energy = e_out
        particle.direction = new_dir
        counters.rn_draws += 7
    else:
        e_out, mu = elastic_scatter(particle.energy, nuc.awr, stream.prn())
        phi = 2.0 * np.pi * stream.prn()
        particle.direction = rotate_direction(particle.direction, mu, phi)
        particle.energy = e_out
        counters.rn_draws += 2


def run_generation_history(
    ctx: TransportContext,
    positions: np.ndarray,
    energies: np.ndarray,
    tallies: GlobalTallies,
    k_norm: float = 1.0,
    first_id: int = 0,
    power: PowerTally | None = None,
    spectrum: SpectrumTally | None = None,
) -> FissionBank:
    """Transport one generation of source particles, history style.

    Returns the fission bank for the next generation.  ``first_id`` offsets
    the particle ids (and hence their RNG streams) so successive batches
    draw from disjoint stream ranges.
    """
    bank = FissionBank()
    n = positions.shape[0]
    tallies.source_weight += float(n)
    for i in range(n):
        particle = Particle.from_source(
            first_id + i, positions[i], float(energies[i]), ctx.master_seed
        )
        ctx.counters.rn_draws += 2
        transport_history(particle, ctx, tallies, bank, k_norm, power, spectrum)
    return bank
