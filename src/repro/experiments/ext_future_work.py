"""Extension experiments: the paper's §V future-work items, implemented.

Three of the paper's named future directions, carried out:

* **full-physics banking** — "the primary component missing from our
  banking-based implementation is the inclusion of the S(alpha, beta) and
  URR routines": this package's event loop *includes* them (gather-based
  vectorized samplers), so their cost is measured rather than avoided;
* **runtime-adaptive alpha** — "alpha can be determined at runtime ... we
  are currently implementing this feature": implemented as
  :class:`repro.execution.loadbalance.AdaptiveAlphaController`;
* **Knights Landing projection** — "a possible automatic ~3x single thread
  speedup over Knights Corner": quantified by the calibrated device model;
* **energy analysis** — "future work will include these energy
  measurements": the RAPL-style power model compares J/neutron.
"""

from __future__ import annotations

import numpy as np

from ..data.library import LibraryConfig, build_library
from ..data.unionized import UnionizedGrid
from ..execution.loadbalance import AdaptiveAlphaController
from ..machine.knl import KNL_PROJECTED, knl_projection
from ..machine.power import energy_per_particle
from ..machine.presets import JLSE_HOST, MIC_7120A
from ..proxy.xsbench import XSBench
from .common import ExperimentResult, Scale, register

__all__ = ["run"]


@register("ext-futurework")
def run(scale: Scale) -> ExperimentResult:
    rows: list[dict] = []

    # --- 1. Full-physics banking: S(a,b)+URR in the vectorized kernel.
    config = (
        LibraryConfig.tiny() if scale.library == "tiny" else LibraryConfig()
    )
    library = build_library("hm-large", config)
    union = UnionizedGrid(library)
    full = XSBench(library, union, use_sab=True, use_urr=True)
    stripped = XSBench(library, union, use_sab=False, use_urr=False)
    sample = full.generate_lookups(scale.micro_n // 2)

    import time

    from ..rng.lcg import particle_seeds

    def run_banked(bench):
        t0 = time.perf_counter()
        for mid in np.unique(sample.material_ids):
            mask = sample.material_ids == mid
            states = particle_seeds(
                1, np.nonzero(mask)[0].astype(np.uint64)
            ).copy()
            bench.calculator.banked(
                bench.materials[int(mid)], sample.energies[mask],
                rng_states=states,
            )
        return time.perf_counter() - t0

    t_full = run_banked(full)
    t_stripped = run_banked(stripped)
    rows.append(
        {
            "item": "full-physics banked lookup (S(a,b)+URR included)",
            "value": f"{t_full / t_stripped:.2f}x the stripped kernel's time",
            "paper §V": "named as the primary missing component",
        }
    )

    # --- 2. Runtime-adaptive alpha.
    ctrl = AdaptiveAlphaController(p_mic=1, p_cpu=1)
    ctrl.observe(4050.0, 6641.0)
    rows.append(
        {
            "item": "runtime-adaptive alpha after ONE observed batch",
            "value": f"alpha = {ctrl.alpha:.3f} (static calibration: 0.62)",
            "paper §V": "'can be estimated accurately from only a single "
            "inactive and active batch'",
        }
    )

    # --- 3. Knights Landing projection.
    proj = knl_projection()
    rows.append(
        {
            "item": "KNL vs KNC single-thread speedup (modelled)",
            "value": f"{proj['single_thread_speedup']:.2f}x",
            "paper §V": "'a possible automatic ~3x single thread speedup'",
        }
    )
    rows.append(
        {
            "item": "KNL device rate (H.M. Large, 1e5 particles)",
            "value": f"{proj['rate_knl']:,.0f} n/s "
            f"({proj['knl_vs_jlse_host']:.1f}x the JLSE host)",
            "paper §V": "out-of-order cores + on-package memory, no PCIe",
        }
    )

    # --- 4. Energy analysis.
    e_host = energy_per_particle(JLSE_HOST, "hm-large", 100_000)
    e_mic = energy_per_particle(MIC_7120A, "hm-large", 100_000)
    e_mic_small = energy_per_particle(MIC_7120A, "hm-large", 500)
    rows.append(
        {
            "item": "energy per neutron at 1e5 particles",
            "value": f"host {e_host:.3f} J vs MIC {e_mic:.3f} J "
            f"(MIC {e_host / e_mic:.2f}x better)",
            "paper §V": "'host-attached devices show excellent performance "
            "per watt'",
        }
    )
    rows.append(
        {
            "item": "energy per neutron, MIC at 500 particles",
            "value": f"{e_mic_small:.3f} J — "
            f"{e_mic_small / e_mic:.1f}x worse than at 1e5",
            "paper §V": "(the occupancy flip side: idle watts without rate)",
        }
    )

    result = ExperimentResult(
        exp_id="ext-futurework",
        title="Paper §V future-work items, implemented and quantified",
        rows=rows,
    )
    result.notes.append(
        f"KNL preset: {KNL_PROJECTED.cores} cores @ "
        f"{KNL_PROJECTED.clock_ghz} GHz, AVX-512, out-of-order, "
        f"{KNL_PROJECTED.dram_bw_gbps:.0f} GB/s MCDRAM"
    )
    return result
