"""Table I: the distance-sampling micro-benchmark.

Three implementations (Naive / Optimized-1 / Optimized-2) on two devices
(host CPU with 32 threads, MIC with 122 threads).  The modelled times
reproduce the paper's six entries; the measured rows run the same three
executable kernels in this Python implementation (scaled N and iterations)
and must preserve the ordering Naive >> Optimized-1 >= Optimized-2.
"""

from __future__ import annotations

import time

import numpy as np

from ..machine.kernels import distance_sampling_time
from ..machine.presets import JLSE_HOST, MIC_7120A
from ..physics.distance import (
    sample_distance_naive,
    sample_distance_optimized1,
    sample_distance_optimized2,
)
from .common import ExperimentResult, Scale, register

__all__ = ["run"]

PAPER = {
    ("CPU - 32 threads", "naive"): 412.0,
    ("CPU - 32 threads", "optimized1"): 40.6,
    ("CPU - 32 threads", "optimized2"): 36.6,
    ("MIC - 122 threads", "naive"): 8243.0,
    ("MIC - 122 threads", "optimized1"): 21.0,
    ("MIC - 122 threads", "optimized2"): 18.9,
}


@register("table1")
def run(scale: Scale) -> ExperimentResult:
    rows: list[dict] = []

    # -- Modelled device times at the paper's parameters.
    for device, label in ((JLSE_HOST, "CPU - 32 threads"), (MIC_7120A, "MIC - 122 threads")):
        row = {"implementation": label, "kind": "modelled"}
        for impl, col in (
            ("naive", "Naive time(s)"),
            ("optimized1", "Optimized-1 time(s)"),
            ("optimized2", "Optimized-2 time(s)"),
        ):
            row[col] = distance_sampling_time(device, impl)
        rows.append(row)

    # -- Measured: the executable kernels at a scaled workload.
    n = max(64, (scale.micro_n // 4) * 4)
    iters = scale.micro_iters
    sigma = np.random.default_rng(3).uniform(0.1, 2.0, n)

    t0 = time.perf_counter()
    d_naive = sample_distance_naive(sigma, max(1, iters // 3), seed=1)
    t_naive = (time.perf_counter() - t0) * 3  # normalize to full iters

    t0 = time.perf_counter()
    d_opt1 = sample_distance_optimized1(sigma, iters, seed=1)
    t_opt1 = time.perf_counter() - t0

    t0 = time.perf_counter()
    d_opt2 = sample_distance_optimized2(sigma, iters, seed=1)
    t_opt2 = time.perf_counter() - t0

    rows.append(
        {
            "implementation": f"Python measured (N={n}, iters={iters})",
            "kind": "measured",
            "Naive time(s)": t_naive,
            "Optimized-1 time(s)": t_opt1,
            "Optimized-2 time(s)": t_opt2,
        }
    )

    result = ExperimentResult(
        exp_id="table1",
        title="Distance-sampling micro-benchmark (paper Table I)",
        rows=rows,
        paper={f"{dev} / {impl}": v for (dev, impl), v in PAPER.items()},
    )
    # Correctness: all three sample the same distances.
    agree = np.allclose(d_opt1, d_opt2.astype(np.float64), rtol=1e-5)
    result.notes.append(
        f"optimized variants agree: {agree}; naive uses the same master "
        "sequence (verified in tests/physics)"
    )
    result.notes.append(
        "modelled rows: iters=1e4, N=1e7 as in the paper; measured rows run "
        "the same executable kernels at reduced size"
    )
    return result
