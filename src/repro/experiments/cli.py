"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    repro-experiments list
    repro-experiments run fig2 [--scale quick|paper]
    repro-experiments all [--scale quick|paper]
"""

from __future__ import annotations

import argparse
import sys

from .common import Scale, all_experiments, get_experiment

# Importing the modules registers the experiments.
from . import (  # noqa: F401  (registration side effects)
    ext_doppler,
    ext_future_work,
    fig1_u238_xs,
    fig2_lookup_rates,
    fig3_offload_ratio,
    fig4_profile,
    fig5_calc_rates,
    fig6_strong_scaling,
    fig7_weak_scaling,
    fig8_rsbench,
    table1_sampling,
    table2_offload,
    table3_loadbalance,
)

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of Ozog, Malony & "
        "Siegel (IPDPS-W 2015).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment ids")
    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("exp_id")
    run_p.add_argument("--scale", default="quick", choices=["quick", "paper"])
    run_p.add_argument("--csv", metavar="DIR",
                       help="also write the rows to DIR/<exp_id>.csv")
    all_p = sub.add_parser("all", help="run every experiment")
    all_p.add_argument("--scale", default="quick", choices=["quick", "paper"])
    all_p.add_argument("--csv", metavar="DIR",
                       help="also write each experiment's rows to DIR/")
    args = parser.parse_args(argv)

    if args.command == "list":
        for exp_id in sorted(all_experiments()):
            print(exp_id)
        return 0
    scale = Scale.of(args.scale)

    def emit(result):
        print(result.format())
        if getattr(args, "csv", None):
            from pathlib import Path

            out_dir = Path(args.csv)
            out_dir.mkdir(parents=True, exist_ok=True)
            path = out_dir / f"{result.exp_id}.csv"
            path.write_text(result.to_csv())
            print(f"[csv written to {path}]")

    if args.command == "run":
        emit(get_experiment(args.exp_id)(scale))
        return 0
    # all
    for exp_id in sorted(all_experiments()):
        emit(get_experiment(exp_id)(scale))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
