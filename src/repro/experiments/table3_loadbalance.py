"""Table III: symmetric-mode calculation rates, original vs load balanced.

Regenerates the four hardware rows (CPU only, 1 MIC, CPU + 1 MIC,
CPU + 2 MICs) in both the default equal-split and the Eq. 3 alpha-balanced
configurations, against the paper's measured rates.  Also exercises the
runtime-adaptive alpha controller (paper §V) to show it converges to the
same split.
"""

from __future__ import annotations

from ..cluster.topology import fleet_by_name
from ..execution.loadbalance import AdaptiveAlphaController
from ..execution.native import NativeModel
from ..execution.symmetric import FleetNode, SymmetricNode
from ..machine.presets import JLSE_HOST, MIC_7120A
from .common import ExperimentResult, Scale, register

__all__ = ["run"]

N = 100_000
ALPHA = 0.62

PAPER = {
    "CPU only": 4_050,
    "1 MIC": 6_641,
    "CPU + 1 MIC (original)": 8_988,
    "CPU + 1 MIC (balanced)": 10_068,
    "CPU + 2 MIC (original)": 11_860,
    "CPU + 2 MIC (balanced)": 17_098,
}


@register("table3")
def run(scale: Scale) -> ExperimentResult:
    cpu_only = SymmetricNode(JLSE_HOST, [], "hm-large")
    one = SymmetricNode(JLSE_HOST, [MIC_7120A], "hm-large")
    two = SymmetricNode(JLSE_HOST, [MIC_7120A, MIC_7120A], "hm-large")
    mic_native = NativeModel(MIC_7120A, "hm-large")

    rows = [
        {
            "hardware": "CPU only",
            "original [n/s]": cpu_only.calculation_rate(N),
            "load balanced [n/s]": None,
            "paper original": PAPER["CPU only"],
            "paper balanced": None,
        },
        {
            "hardware": "1 MIC",
            "original [n/s]": mic_native.calculation_rate(N, active=True),
            "load balanced [n/s]": None,
            "paper original": PAPER["1 MIC"],
            "paper balanced": None,
        },
        {
            "hardware": "CPU + 1 MIC",
            "original [n/s]": one.calculation_rate(N, "equal"),
            "load balanced [n/s]": one.calculation_rate(N, "alpha", ALPHA),
            "paper original": PAPER["CPU + 1 MIC (original)"],
            "paper balanced": PAPER["CPU + 1 MIC (balanced)"],
        },
        {
            "hardware": "CPU + 2 MIC",
            "original [n/s]": two.calculation_rate(N, "equal"),
            "load balanced [n/s]": two.calculation_rate(N, "alpha", ALPHA),
            "paper original": PAPER["CPU + 2 MIC (original)"],
            "paper balanced": PAPER["CPU + 2 MIC (balanced)"],
        },
    ]

    # Modern-fleet extension (ROADMAP item 4): the same equal-vs-balanced
    # comparison on GPU-era nodes, with the N-way rate-proportional split
    # in place of the two-class alpha.  No paper anchors — these rows are
    # the model's projection of Table III onto today's hardware.
    for fleet_name in ("a100-node", "mixed-gpu-node"):
        fleet = FleetNode(fleet_by_name(fleet_name), "hm-large")
        n_modern = 10 * N  # modern fleets starve below ~1e5/device
        rows.append(
            {
                "hardware": f"{fleet_name} ({fleet.n_ranks} devices)",
                "original [n/s]": fleet.calculation_rate(n_modern, "equal"),
                "load balanced [n/s]": fleet.calculation_rate(
                    n_modern, "rate"
                ),
                "paper original": None,
                "paper balanced": None,
            }
        )

    # Adaptive alpha (paper §V): converges to the static value from
    # measured batch rates.
    ctrl = AdaptiveAlphaController(p_mic=1, p_cpu=1)
    cpu_rate = cpu_only.calculation_rate(N)
    mic_rate = mic_native.calculation_rate(N)
    for _ in range(5):
        ctrl.observe(cpu_rate, mic_rate)

    result = ExperimentResult(
        exp_id="table3",
        title="Symmetric-mode rates, H.M. Large, 1e5 particles "
        "(paper Table III)",
        rows=rows,
        paper={
            "ideal CPU+1MIC": "10,691 n/s (original 16% under, balanced 6%)",
            "ideal CPU+2MIC": "17,332 n/s (original 32% under)",
            "headline": "17,098 n/s — 'higher than any other MC neutron "
            "transport application'",
        },
    )
    result.notes.append(
        f"adaptive alpha controller converges to {ctrl.alpha:.3f} "
        f"(static value {ALPHA})"
    )
    lb2 = two.calculation_rate(N, "alpha", ALPHA)
    result.notes.append(
        f"modelled CPU+2MIC balanced = {lb2:,.0f} n/s vs paper 17,098 "
        f"({lb2 / 17098 - 1:+.1%})"
    )
    return result
