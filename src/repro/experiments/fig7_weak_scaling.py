"""Figure 7: weak scaling of H.M. Large (1e6 particles per node) on Stampede.

With the per-node population held at 1e6, occupancy stays saturated at
every scale and only communication grows (logarithmically) — the paper
reports > 94% efficiency to 128 nodes and predicts (footnote) a flat curve
to 2^10 nodes, which the model confirms.
"""

from __future__ import annotations

from ..cluster.scaling import weak_scaling
from ..cluster.topology import STAMPEDE
from .common import ExperimentResult, Scale, register

__all__ = ["run"]

NODES = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]
N_PER_NODE = 1_000_000
STAMPEDE_ALPHA = 0.42


@register("fig7")
def run(scale: Scale) -> ExperimentResult:
    curves = {
        "CPU only": weak_scaling(STAMPEDE, NODES, N_PER_NODE, 0),
        "CPU + 1 MIC": weak_scaling(
            STAMPEDE, NODES, N_PER_NODE, 1, alpha=STAMPEDE_ALPHA
        ),
        "CPU + 2 MIC": weak_scaling(
            STAMPEDE, NODES, N_PER_NODE, 2, alpha=STAMPEDE_ALPHA
        ),
    }
    by_nodes: dict[int, dict] = {}
    for label, points in curves.items():
        for pt in points:
            row = by_nodes.setdefault(pt.nodes, {"nodes": pt.nodes})
            row[f"{label} rate [n/s]"] = pt.rate
            row[f"{label} eff"] = round(pt.efficiency, 4)
    rows = [by_nodes[p] for p in sorted(by_nodes)]

    result = ExperimentResult(
        exp_id="fig7",
        title="Weak scaling, H.M. Large, N=1e6/node, Stampede (paper Fig. 7)",
        rows=rows,
        paper={
            "efficiency": "> 94% at all scales up to 128 nodes",
            "footnote": "curve expected to remain flat to 2^10 nodes",
        },
    )
    one_mic = curves["CPU + 1 MIC"]
    min_eff = min(pt.efficiency for pt in one_mic if pt.nodes <= 128)
    tail_eff = one_mic[-1].efficiency
    result.notes.append(
        f"1-MIC minimum efficiency to 128 nodes: {min_eff:.1%}; "
        f"at {one_mic[-1].nodes} nodes: {tail_eff:.1%} (flat, confirming "
        "the paper's prediction)"
    )
    return result
