"""Figure 6: strong scaling of H.M. Large (1e7 particles) on Stampede.

Three curves — CPU only, CPU + 1 MIC, CPU + 2 MICs — across node counts to
2^10 (the 2-MIC curve stops at 384 nodes, Stampede's 2-MIC inventory).
Checked features: >= 95% efficiency at 128 nodes, the 1-MIC tail at 1,024
nodes from alpha drift at low particles-per-node, and the CPU-only curve's
immunity to that tail.  The communication layer executes real reductions
through the simulated communicator.
"""

from __future__ import annotations

from ..cluster.scaling import strong_scaling
from ..cluster.topology import STAMPEDE
from .common import ExperimentResult, Scale, register

__all__ = ["run"]

NODES = [4, 8, 16, 32, 64, 128, 256, 512, 1024]
N_TOTAL = 10_000_000
STAMPEDE_ALPHA = 0.42  # the paper's measured Stampede alpha


@register("fig6")
def run(scale: Scale) -> ExperimentResult:
    curves = {
        "CPU only": strong_scaling(STAMPEDE, NODES, N_TOTAL, 0),
        "CPU + 1 MIC": strong_scaling(
            STAMPEDE, NODES, N_TOTAL, 1, alpha=STAMPEDE_ALPHA
        ),
        "CPU + 2 MIC": strong_scaling(
            STAMPEDE, NODES, N_TOTAL, 2, alpha=STAMPEDE_ALPHA
        ),
    }
    by_nodes: dict[int, dict] = {}
    for label, points in curves.items():
        for pt in points:
            row = by_nodes.setdefault(pt.nodes, {"nodes": pt.nodes})
            row[f"{label} rate [n/s]"] = pt.rate
            row[f"{label} eff"] = round(pt.efficiency, 3)
    rows = [by_nodes[p] for p in sorted(by_nodes)]

    result = ExperimentResult(
        exp_id="fig6",
        title="Strong scaling, H.M. Large, N=1e7, Stampede (paper Fig. 6)",
        rows=rows,
        paper={
            "efficiency at 128 nodes": ">= 95% of ideal (vs 4-node ref)",
            "1-MIC tail": "visible at 1,024 nodes (alpha drift, ~6.6k "
            "particles per MIC)",
            "2-MIC curve": "stops at 384 nodes (hardware inventory)",
            "alpha (Stampede)": 0.42,
        },
    )
    p128 = next(pt for pt in curves["CPU + 1 MIC"] if pt.nodes == 128)
    p1024 = next(pt for pt in curves["CPU + 1 MIC"] if pt.nodes == 1024)
    result.notes.append(
        f"1-MIC efficiency: {p128.efficiency:.1%} at 128 nodes, "
        f"{p1024.efficiency:.1%} at 1,024 nodes (the tail)"
    )
    result.notes.append(
        f"communication share at 1,024 nodes: "
        f"{p1024.comm_time / p1024.batch_time:.2%} — losses are occupancy, "
        "not network"
    )
    return result
