"""Extension: temperature dependence via multipole (paper §IV-B motivation).

The multipole representation exists because "applying temperature
dependence with the standard table lookup approach requires an astoundingly
large amount of data that is impractical to replicate" — each temperature
needs its own broadened pointwise table, while the multipole form
broadens *at evaluation time* from one temperature-independent data set.

This experiment quantifies both halves of that argument on the synthetic
U-238 data:

* physics — Doppler broadening lowers resonance peaks and raises the
  near-resonance wings with temperature (the negative-feedback mechanism
  of fuel temperature coefficients), evaluated at 300/600/1200/2400 K from
  the *same* multipole data, and cross-checked against pointwise
  reconstruction at each temperature;
* memory — pointwise-per-temperature vs single multipole footprint.
"""

from __future__ import annotations

import numpy as np

from ..data.multipole import build_multipole
from ..data.resonance import build_energy_grid, reconstruct_xs, sample_ladder
from ..types import Reaction
from .common import ExperimentResult, Scale, register

__all__ = ["run"]

TEMPERATURES = (300.0, 600.0, 1200.0, 2400.0)


@register("ext-doppler")
def run(scale: Scale) -> ExperimentResult:
    n_res = 20 if scale.library == "tiny" else 80
    rng = np.random.default_rng(20150525)
    ladder = sample_ladder(rng, fissionable=False, n_resonances=n_res)
    mp = build_multipole("U238x", ladder, awr=236.0)
    grid = build_energy_grid(ladder, n_base=300, points_per_resonance=10)

    # Probe the strongest resonance (Porter-Thomas widths vary wildly).
    strongest = int(np.argmax(ladder.gamma_n / ladder.e0))
    peak_e = float(ladder.e0[strongest])
    gamma = float(ladder.gamma_total[strongest])
    wing_e = peak_e + 30.0 * gamma

    rows: list[dict] = []
    pointwise_bytes_total = 0
    for temp in TEMPERATURES:
        mp_peak = mp.evaluate(peak_e, temp)[Reaction.CAPTURE]
        mp_wing = mp.evaluate(wing_e, temp)[Reaction.CAPTURE]
        truth = reconstruct_xs(
            ladder, np.array([peak_e, wing_e]), awr=236.0, temperature=temp
        )
        rel = abs(mp_peak - truth["capture"][0]) / truth["capture"][0]
        rows.append(
            {
                "T [K]": temp,
                "peak capture [b] (multipole)": mp_peak,
                "wing capture [b] (multipole)": mp_wing,
                "vs pointwise rel err": rel,
            }
        )
        # A pointwise library needs one full broadened table per temperature.
        pointwise_bytes_total += grid.nbytes * 5

    result = ExperimentResult(
        exp_id="ext-doppler",
        title="On-the-fly Doppler broadening via multipole (paper §IV-B)",
        rows=rows,
        paper={
            "motivation": "table-lookup temperature dependence needs "
            "'an astoundingly large amount of data'",
            "multipole": "temperature dependence at remarkably low memory "
            "cost; memory-bound -> compute-bound",
        },
    )
    peaks = [r["peak capture [b] (multipole)"] for r in rows]
    wings = [r["wing capture [b] (multipole)"] for r in rows]
    result.notes.append(
        f"peak falls {peaks[0] / peaks[-1]:.1f}x and wing rises "
        f"{wings[-1] / wings[0]:.1f}x from 300 K to 2400 K — the Doppler "
        "feedback mechanism"
    )
    result.notes.append(
        f"memory: {len(TEMPERATURES)} pointwise tables = "
        f"{pointwise_bytes_total / 1e6:.2f} MB (per nuclide, grows per "
        f"temperature) vs ONE multipole set = {mp.nbytes / 1e3:.1f} KB "
        "(any temperature)"
    )
    return result
