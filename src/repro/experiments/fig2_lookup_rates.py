"""Figure 2: cross-section lookup rates — banking (MIC) vs history (CPU).

Two complementary regenerations:

* **measured** — the executable XSBench proxy times the scalar (history)
  and vectorized (banked) kernels in this Python implementation; the
  NumPy-vs-interpreted ratio is the measured analogue of the SIMD-vs-scalar
  contrast;
* **modelled** — the calibrated machine model produces the lookup rates of
  the paper's devices across bank sizes, reproducing the ~10x banked-MIC vs
  history-CPU gap for H.M. Large, with the banked rate climbing as banks
  grow (thread/lane occupancy) exactly as in the figure.
"""

from __future__ import annotations

from ..data.library import LibraryConfig, build_library
from ..machine.kernels import lookup_rate
from ..machine.occupancy import occupancy_factor
from ..machine.presets import JLSE_HOST, MIC_7120A
from ..proxy.xsbench import XSBench
from .common import ExperimentResult, Scale, register

__all__ = ["run"]

_N_NUC_LARGE = 321  # H.M. Large fuel nuclides per lookup


@register("fig2")
def run(scale: Scale) -> ExperimentResult:
    rows: list[dict] = []

    # -- Modelled device rates across bank sizes (the figure's axes).
    history_cpu = lookup_rate(JLSE_HOST, "history", _N_NUC_LARGE)
    for n_bank in (1_000, 10_000, 100_000, 1_000_000):
        banked_mic = lookup_rate(
            MIC_7120A, "banked", _N_NUC_LARGE
        ) * occupancy_factor(MIC_7120A, n_bank)
        rows.append(
            {
                "bank size": n_bank,
                "banked MIC [lookups/s]": banked_mic,
                "history CPU [lookups/s]": history_cpu,
                "ratio": banked_mic / history_cpu,
            }
        )

    # -- Measured Python kernels (same algorithms, this implementation).
    config = (
        LibraryConfig.tiny() if scale.library == "tiny" else LibraryConfig()
    )
    library = build_library("hm-large", config)
    bench = XSBench(library)
    sample = bench.generate_lookups(scale.micro_n)
    t_hist, _ = bench.run_history(
        bench.generate_lookups(min(scale.micro_n, 2_000))
    )
    n_hist = min(scale.micro_n, 2_000)
    t_bank, _ = bench.run_banked(sample)
    measured_hist_rate = n_hist / t_hist
    measured_bank_rate = sample.n / t_bank
    rows.append(
        {
            "bank size": f"measured ({sample.n})",
            "banked MIC [lookups/s]": measured_bank_rate,
            "history CPU [lookups/s]": measured_hist_rate,
            "ratio": measured_bank_rate / measured_hist_rate,
        }
    )

    result = ExperimentResult(
        exp_id="fig2",
        title="Lookup rates: banking vs history (H.M. Large)",
        rows=rows,
        paper={
            "speedup": "~10x (banking on MIC vs history baseline)",
        },
    )
    result.notes.append(
        "modelled rows use the calibrated device model; the 'measured' row "
        "is this Python implementation (vectorized NumPy vs interpreted "
        "scalar standing in for SIMD vs scalar)"
    )
    result.notes.append(
        f"banked/history exactness check: max rel deviation = "
        f"{bench.verify(bench.generate_lookups(200)):.2e}"
    )
    return result
