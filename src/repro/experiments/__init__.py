"""Experiment harness: one module per paper table/figure (DESIGN.md §4).

Importing this package registers every experiment; run them via
``repro-experiments`` or :func:`repro.experiments.run_experiment`.
"""

from . import (  # noqa: F401  (registration side effects)
    ext_doppler,
    ext_future_work,
    fig1_u238_xs,
    fig2_lookup_rates,
    fig3_offload_ratio,
    fig4_profile,
    fig5_calc_rates,
    fig6_strong_scaling,
    fig7_weak_scaling,
    fig8_rsbench,
    table1_sampling,
    table2_offload,
    table3_loadbalance,
)
from .common import ExperimentResult, Scale, all_experiments, get_experiment


def run_experiment(exp_id: str, scale: str = "quick") -> ExperimentResult:
    """Run one registered experiment at the named scale."""
    return get_experiment(exp_id)(Scale.of(scale))


__all__ = [
    "ExperimentResult",
    "Scale",
    "all_experiments",
    "get_experiment",
    "run_experiment",
]
