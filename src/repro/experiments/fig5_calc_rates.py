"""Figure 5: calculation rate vs particle count, CPU vs MIC, inactive/active.

Sweeps the batch size from 1e2 to 1e8 and reports both devices' modelled
rates for inactive and active batches, with out-of-memory cutoffs, plus the
alpha column.  The paper's observations checked here: rates saturate above
~1e5 particles; alpha_i = 0.61 +/- 0.02 and alpha_a = 0.62 +/- 0.01 for
>= 1e4 particles; memory limits fall between 1e7 and 1e8 (host and 16 GB
MIC).  A measured row runs this implementation's event transport at two
batch sizes to show the same saturation behaviour.
"""

from __future__ import annotations

import numpy as np

from ..data.library import LibraryConfig, build_library
from ..execution.native import NativeModel
from ..machine.presets import JLSE_HOST, MIC_7120A
from ..transport.simulation import Settings, Simulation
from .common import ExperimentResult, Scale, register

__all__ = ["run"]


@register("fig5")
def run(scale: Scale) -> ExperimentResult:
    cpu = NativeModel(JLSE_HOST, "hm-large")
    mic = NativeModel(MIC_7120A, "hm-large")
    rows: list[dict] = []
    for exp in range(2, 9):
        n = 10**exp
        r_cpu_i = cpu.calculation_rate(n, active=False)
        r_mic_i = mic.calculation_rate(n, active=False)
        r_cpu_a = cpu.calculation_rate(n, active=True)
        r_mic_a = mic.calculation_rate(n, active=True)
        rows.append(
            {
                "particles": n,
                "CPU inactive [n/s]": r_cpu_i or "OOM",
                "MIC inactive [n/s]": r_mic_i or "OOM",
                "CPU active [n/s]": r_cpu_a or "OOM",
                "MIC active [n/s]": r_mic_a or "OOM",
                "alpha_a": (r_cpu_a / r_mic_a) if r_mic_a else None,
            }
        )

    # Measured saturation: this implementation's event loop at two sizes.
    config = (
        LibraryConfig.tiny() if scale.library == "tiny" else LibraryConfig()
    )
    library = build_library("hm-small", config)
    small_n = max(40, scale.particles // 4)
    big_n = scale.particles * 2
    rates = {}
    for n in (small_n, big_n):
        sim = Simulation(
            library,
            Settings(
                n_particles=n, n_inactive=0, n_active=2, pincell=True,
                mode="event", seed=13,
            ),
        )
        rates[n] = sim.run().calculation_rate
    rows.append(
        {
            "particles": f"measured python {small_n} -> {big_n}",
            "CPU inactive [n/s]": rates[small_n],
            "MIC inactive [n/s]": rates[big_n],
            "CPU active [n/s]": None,
            "MIC active [n/s]": None,
            "alpha_a": None,
        }
    )

    result = ExperimentResult(
        exp_id="fig5",
        title="Calculation rate vs particles (paper Fig. 5, H.M. Large)",
        rows=rows,
        paper={
            "alpha_i": "0.61 +/- 0.02 (>= 1e4 particles)",
            "alpha_a": "0.62 +/- 0.01",
            "MIC advantage": "1.5-2x, highest rates at >= 1e5 particles",
            "memory limits": "host & 16 GB MIC: between 1e7 and 1e8",
        },
    )
    alphas = [r["alpha_a"] for r in rows if isinstance(r.get("alpha_a"), float)]
    stable = [
        r["alpha_a"]
        for r in rows
        if isinstance(r.get("particles"), int)
        and r["particles"] >= 10_000
        and isinstance(r.get("alpha_a"), float)
    ]
    if stable:
        result.notes.append(
            f"alpha_a over >=1e4 particles: "
            f"{np.mean(stable):.3f} +/- {np.std(stable):.3f}"
        )
    result.notes.append(
        "measured rows: event-mode Python rates at two batch sizes — the "
        "larger batch achieves the higher rate (vector/bank amortization)"
    )
    return result
