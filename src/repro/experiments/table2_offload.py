"""Table II: banking and offload overheads (per iteration, 1e5 particles).

Regenerates every Table II row for both H.M. models from the calibrated
offload cost model, alongside the actual (reduced-fidelity) data volumes of
this Python implementation for scale comparison.
"""

from __future__ import annotations

from ..data.library import LibraryConfig, build_library
from ..data.unionized import UnionizedGrid
from ..execution.offload import OffloadCostModel
from ..machine.memory import bank_bytes, energy_grid_bytes
from ..machine.presets import JLSE_HOST, MIC_7120A, PCIE_GEN2_X16
from ..transport.particle import ParticleBank
from .common import ExperimentResult, Scale, register

__all__ = ["run"]

PAPER = {
    "banking host [ms] (small/large)": "4 / 4",
    "banking MIC [ms] (small/large)": "21 / 34",
    "transfer [ms] (small/large)": "460 / 2,210",
    "bank size (small/large)": "496 MB / 2.84 GB",
    "energy grid (small/large)": "1.31 GB / 8.37 GB",
    "MIC compute [ms] (small/large)": "17 / 101",
}

N_PARTICLES = 100_000


@register("table2")
def run(scale: Scale) -> ExperimentResult:
    rows: list[dict] = []
    for model in ("hm-small", "hm-large"):
        off = OffloadCostModel(JLSE_HOST, MIC_7120A, PCIE_GEN2_X16, model)
        rows.append(
            {
                "operation": f"banking (host) [{model}]",
                "modelled": f"{off.banking_time_host(N_PARTICLES) * 1e3:.1f} ms",
            }
        )
        rows.append(
            {
                "operation": f"banking (MIC) [{model}]",
                "modelled": f"{off.banking_time_mic(N_PARTICLES) * 1e3:.1f} ms",
            }
        )
        rows.append(
            {
                "operation": f"transfer time (PCIe) [{model}]",
                "modelled": f"{off.transfer_time(N_PARTICLES) * 1e3:.0f} ms",
            }
        )
        rows.append(
            {
                "operation": f"bank size transferred [{model}]",
                "modelled": f"{bank_bytes(N_PARTICLES, model) / 1e9:.3f} GB",
            }
        )
        rows.append(
            {
                "operation": f"energy grid size transferred [{model}]",
                "modelled": f"{energy_grid_bytes(model) / 1e9:.2f} GB",
            }
        )
        rows.append(
            {
                "operation": f"compute bank cross sections (MIC) [{model}]",
                "modelled": f"{off.mic_compute_time(N_PARTICLES) * 1e3:.0f} ms",
            }
        )

    # Actual (reduced-fidelity) volumes of this implementation, for context.
    config = (
        LibraryConfig.tiny() if scale.library == "tiny" else LibraryConfig()
    )
    library = build_library("hm-small", config)
    union = UnionizedGrid(library)
    bank = ParticleBank(min(N_PARTICLES, scale.particles * 10))
    rows.append(
        {
            "operation": "ACTUAL python SoA bank (per particle)",
            "modelled": f"{bank.nbytes / bank.n:.0f} B",
        }
    )
    rows.append(
        {
            "operation": "ACTUAL python union grid (reduced fidelity)",
            "modelled": f"{union.nbytes / 1e6:.1f} MB",
        }
    )

    result = ExperimentResult(
        exp_id="table2",
        title="Offload overheads per iteration, 1e5 particles (paper Table II)",
        rows=rows,
        paper=PAPER,
    )
    result.notes.append(
        "modelled record layout back-derived from Table II: 1,434 B base + "
        "82 B/nuclide per particle; union grid ~3.4e6 points x 8 B/nuclide"
    )
    result.notes.append(
        "energy grid cost is paid once at initialization and amortized "
        "(paper: '~1 second for every 5 GB')"
    )
    return result
