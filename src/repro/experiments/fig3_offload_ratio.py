"""Figure 3: offload-cost : generation-time ratios vs particle count.

All per-iteration offload components (host banking, MIC banking, PCIe
transfer, MIC XS compute, host XS compute) normalized by the host
generation time, swept over bank sizes.  The paper's reading — transfer and
MIC-compute ratios fall, host-compute ratio rises, offload profitable above
~10,000 particles — must emerge from the model.
"""

from __future__ import annotations

from ..execution.offload import OffloadCostModel
from ..machine.presets import JLSE_HOST, MIC_7120A, PCIE_GEN2_X16
from .common import ExperimentResult, Scale, register

__all__ = ["run"]


@register("fig3")
def run(scale: Scale) -> ExperimentResult:
    off = OffloadCostModel(JLSE_HOST, MIC_7120A, PCIE_GEN2_X16, "hm-small")
    rows: list[dict] = []
    for n in (100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000):
        ratios = off.normalized_ratios(n)
        rows.append(
            {
                "particles": n,
                "bank host": ratios["bank_host"],
                "bank MIC": ratios["bank_mic"],
                "transfer (PCIe)": ratios["transfer"],
                "MIC XS compute": ratios["mic_compute"],
                "host XS compute": ratios["host_xs_compute"],
                "offload wins": off.profitable(n),
            }
        )
    crossover = off.crossover_particles()
    result = ExperimentResult(
        exp_id="fig3",
        title="Offload time ratios vs particles (paper Fig. 3, H.M. Small)",
        rows=rows,
        paper={
            "crossover": "offload profitable above ~10,000 particles",
            "trends": "transfer ratio falls, host XS ratio rises, MIC XS "
            "ratio falls",
        },
    )
    result.notes.append(f"modelled profitability crossover: {crossover:,} particles")
    return result
