"""Figure 8: RSBench execution time — original vs vectorized, on Stampede.

The multipole method turns the memory-bound table lookup into a
compute-bound Faddeeva-evaluation kernel; the paper's Fig. 8 compares the
original RSBench (ragged poles-per-window loops) against a vectorized
variant (fixed poles per window) on the Stampede host and MIC.

* **measured** — both executable kernels of :class:`repro.proxy.rsbench`
  run on the synthetic multipole library (identical results, the vectorized
  variant strictly faster);
* **modelled** — a compute-roofline estimate per device and variant: the
  original kernel is effectively scalar (data-dependent inner bounds), the
  vectorized one runs at high vector fraction — which is why the MIC only
  wins after vectorization, mirroring the figure.
"""

from __future__ import annotations

import numpy as np

from ..machine.presets import MIC_SE10P, STAMPEDE_HOST
from ..machine.roofline import KernelProfile, kernel_time
from ..proxy.rsbench import RSBench, RSBenchConfig
from .common import ExperimentResult, Scale, register

__all__ = ["run"]

#: Modelled lookups of the Fig. 8 workload.
N_LOOKUPS = 1.0e8

#: FLOPs per lookup: ~poles-per-window Faddeeva evaluations (~40 flops of
#: complex arithmetic each) plus the polynomial background.
FLOPS_PER_LOOKUP = 12 * 40.0 + 20.0


def _modelled(device, variant: str) -> float:
    # The fixed-poles-per-window kernel is a tight hand-vectorized loop —
    # ~98% of its arithmetic runs in vector pipes; the original's
    # data-dependent bounds leave it essentially scalar.
    profile = KernelProfile(
        name=f"rsbench-{variant}",
        flops_per_item=FLOPS_PER_LOOKUP,
        bytes_per_item=64.0,  # poles/residues stream from cache
        vector_fraction=0.98 if variant == "vectorized" else 0.05,
        gather_fraction=0.1,
    )
    return kernel_time(device, profile, N_LOOKUPS)


@register("fig8")
def run(scale: Scale) -> ExperimentResult:
    rows: list[dict] = []
    for device, label in (
        (STAMPEDE_HOST, "Stampede host"),
        (MIC_SE10P, "Stampede MIC (SE10P)"),
    ):
        t_orig = _modelled(device, "original")
        t_vec = _modelled(device, "vectorized")
        rows.append(
            {
                "device": label,
                "original [s]": t_orig,
                "vectorized [s]": t_vec,
                "speedup": t_orig / t_vec,
                "kind": "modelled (1e8 lookups)",
            }
        )

    # Measured: the executable proxy.
    n_nuc = 4 if scale.library == "tiny" else 8
    bench = RSBench(RSBenchConfig(n_nuclides=n_nuc, resonances_per_nuclide=24))
    which, energies = bench.generate_lookups(scale.micro_n // 2)
    t_orig, out_a = bench.run_original(which, energies)
    t_vec, out_b = bench.run_vectorized(which, energies)
    rows.append(
        {
            "device": f"Python measured ({which.shape[0]} lookups)",
            "original [s]": t_orig,
            "vectorized [s]": t_vec,
            "speedup": t_orig / t_vec,
            "kind": "measured",
        }
    )

    result = ExperimentResult(
        exp_id="fig8",
        title="RSBench original vs vectorized (paper Fig. 8)",
        rows=rows,
        paper={
            "observation": "vectorized variant faster on both devices; the "
            "MIC benefits most (compute-bound kernel, wide vectors)",
            "context": "multipole achieves 2x the FLOP rate of table "
            "lookups on the host (Tramm & Siegel)",
        },
    )
    agree = float(np.max(np.abs(out_a - out_b) / np.maximum(np.abs(out_a), 1e-12)))
    result.notes.append(f"variant agreement: max rel deviation {agree:.2e}")
    result.notes.append(
        f"multipole data footprint: {bench.nbytes / 1e3:.1f} KB — the "
        "'reduced data movement' vs GB-scale pointwise tables"
    )
    mic_vec = rows[1]["vectorized [s]"]
    host_vec = rows[0]["vectorized [s]"]
    result.notes.append(
        f"modelled: vectorized MIC/host time ratio = {mic_vec / host_vec:.2f} "
        "(<1 means the MIC wins once vectorized)"
    )
    return result
