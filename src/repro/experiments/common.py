"""Shared experiment scaffolding: results, scales, registry.

Every experiment module exposes ``run(scale) -> ExperimentResult``; the
result carries the regenerated rows/series, the paper's reported values for
side-by-side comparison, and free-form notes.  ``scale`` controls the
executable parts: ``"quick"`` shrinks the measured workloads to seconds
(for CI), ``"paper"`` runs the full-shape workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import ReproError

__all__ = ["Scale", "ExperimentResult", "register", "get_experiment", "all_experiments"]


@dataclass(frozen=True)
class Scale:
    """Workload scale for the executable (measured) parts of experiments."""

    name: str
    #: Lookups / samples for micro-benchmarks.
    micro_n: int
    #: Iterations for the distance kernel.
    micro_iters: int
    #: Particles per batch in transport measurements.
    particles: int
    #: Batches in transport measurements.
    batches: int
    #: Library fidelity: "tiny" or "default".
    library: str

    @classmethod
    def quick(cls) -> "Scale":
        return cls(
            name="quick", micro_n=2_000, micro_iters=3, particles=150,
            batches=2, library="tiny",
        )

    @classmethod
    def paper(cls) -> "Scale":
        return cls(
            name="paper", micro_n=100_000, micro_iters=10, particles=2_000,
            batches=4, library="default",
        )

    @classmethod
    def of(cls, name: str) -> "Scale":
        if name == "quick":
            return cls.quick()
        if name == "paper":
            return cls.paper()
        raise ReproError(f"unknown scale {name!r}")


@dataclass
class ExperimentResult:
    """The regenerated content of one paper table/figure."""

    exp_id: str
    title: str
    #: Regenerated rows: list of dicts with homogeneous keys.
    rows: list[dict] = field(default_factory=list)
    #: The paper's reported values for the same quantities, where stated.
    paper: dict[str, float | str] = field(default_factory=dict)
    #: Free-form observations (deviations, substitutions, caveats).
    notes: list[str] = field(default_factory=list)

    def to_csv(self) -> str:
        """Rows as CSV text (header from the first row's keys)."""
        import csv
        import io

        if not self.rows:
            return ""
        buf = io.StringIO()
        writer = csv.DictWriter(buf, fieldnames=list(self.rows[0].keys()))
        writer.writeheader()
        for row in self.rows:
            writer.writerow(row)
        return buf.getvalue()

    def format(self) -> str:
        """Plain-text rendering: header, aligned rows, notes."""
        out = [f"=== {self.exp_id}: {self.title} ==="]
        if self.rows:
            keys = list(self.rows[0].keys())
            widths = {
                k: max(len(k), *(len(_fmt(r.get(k))) for r in self.rows))
                for k in keys
            }
            out.append("  ".join(k.ljust(widths[k]) for k in keys))
            for r in self.rows:
                out.append(
                    "  ".join(_fmt(r.get(k)).ljust(widths[k]) for k in keys)
                )
        if self.paper:
            out.append("paper reference values:")
            for k, v in self.paper.items():
                out.append(f"  {k} = {v}")
        for note in self.notes:
            out.append(f"note: {note}")
        return "\n".join(out)


def _fmt(v) -> str:
    if v is None:
        return "-"
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1e5 or abs(v) < 1e-3:
            return f"{v:.3e}"
        return f"{v:,.3f}".rstrip("0").rstrip(".")
    return str(v)


_REGISTRY: dict[str, Callable[[Scale], ExperimentResult]] = {}


def register(exp_id: str):
    """Decorator: register an experiment's run function under its id."""

    def wrap(fn: Callable[[Scale], ExperimentResult]):
        _REGISTRY[exp_id] = fn
        return fn

    return wrap


def get_experiment(exp_id: str) -> Callable[[Scale], ExperimentResult]:
    try:
        return _REGISTRY[exp_id]
    except KeyError:
        raise ReproError(
            f"unknown experiment {exp_id!r}; known: {sorted(_REGISTRY)}"
        ) from None


def all_experiments() -> dict[str, Callable[[Scale], ExperimentResult]]:
    return dict(_REGISTRY)
