"""Figure 4: TAU profile comparison — host CPU vs MIC (native mode).

Two regenerations:

* **modelled** — per-routine device times from the calibrated cost model
  for the paper's workload (H.M. Large, 1e7 particles): the top routines
  are the cross-section lookups, they run faster on the MIC, and the total
  time ratio lands near the paper's 96 min vs 65 min (1.5x);
* **measured** — a TAU-style instrumented run of this implementation's
  history transport (timers wrapped around calculate_xs and the tracking
  loop) showing the same profile shape: lookups dominate.
"""

from __future__ import annotations

from ..data.library import LibraryConfig, build_library
from ..data.unionized import UnionizedGrid
from ..machine.kernels import (
    TransportCostModel,
    WorkPerParticle,
    lookup_time_history,
)
from ..machine.presets import JLSE_HOST, MIC_7120A
from ..profiling.report import compare_profiles
from ..profiling.timers import TimerRegistry
from ..transport.context import TransportContext
from ..transport.history import run_generation_history
from ..transport.simulation import Settings, Simulation
from ..transport.tally import GlobalTallies
from .common import ExperimentResult, Scale, register

__all__ = ["run"]

_N_PARTICLES = 10_000_000
_N_NUC = 321


def _modelled_profile(device) -> dict[str, float]:
    """Routine-level device seconds for the Fig. 4 workload."""
    work = WorkPerParticle.hm_reference()
    cost = TransportCostModel(device, _N_NUC, work)
    total = cost.batch_time(_N_PARTICLES)
    lookup = lookup_time_history(device, work.lookups * _N_PARTICLES, _N_NUC)
    rest = total - lookup
    # Split lookup time across the paper's three visible routines.
    return {
        "calculate_xs": 0.55 * lookup,
        "micro_xs_lookup": 0.30 * lookup,
        "grid_search": 0.15 * lookup,
        "tracking+physics": rest,
    }


@register("fig4")
def run(scale: Scale) -> ExperimentResult:
    rows: list[dict] = []

    cpu = _modelled_profile(JLSE_HOST)
    mic = _modelled_profile(MIC_7120A)
    for row in compare_profiles(cpu, mic, top=6):
        rows.append(
            {
                "routine": row.routine,
                "CPU [s]": row.seconds_a,
                "MIC [s]": row.seconds_b,
                "CPU/MIC": row.speedup,
                "kind": "modelled",
            }
        )
    total_cpu = sum(cpu.values())
    total_mic = sum(mic.values())
    rows.append(
        {
            "routine": "TOTAL",
            "CPU [s]": total_cpu,
            "MIC [s]": total_mic,
            "CPU/MIC": total_cpu / total_mic,
            "kind": "modelled",
        }
    )

    # -- Measured: instrument this implementation's history loop.
    config = (
        LibraryConfig.tiny() if scale.library == "tiny" else LibraryConfig.tiny()
    )
    library = build_library("hm-small", config)
    union = UnionizedGrid(library)
    ctx = TransportContext.create(library, pincell=True, union=union, master_seed=5)
    registry = TimerRegistry("python-history")
    original_scalar = ctx.calculator.scalar
    ctx.calculator.scalar = registry.timed("calculate_xs")(original_scalar)
    sim = Simulation(
        library, Settings(n_particles=scale.particles, pincell=True, seed=5)
    )
    positions, energies = sim.initial_source(scale.particles)
    tallies = GlobalTallies()
    with registry.timer("generation_total"):
        run_generation_history(ctx, positions, energies, tallies, 1.0, 0)
    prof = registry.profile
    xs_frac = (
        prof.routines["calculate_xs"].total_seconds
        / prof.routines["generation_total"].total_seconds
    )
    rows.append(
        {
            "routine": "measured python: calculate_xs share",
            "CPU [s]": prof.routines["calculate_xs"].total_seconds,
            "MIC [s]": None,
            "CPU/MIC": None,
            "kind": f"measured ({xs_frac:.0%} of generation)",
        }
    )

    result = ExperimentResult(
        exp_id="fig4",
        title="Profile comparison, CPU vs MIC native (paper Fig. 4)",
        rows=rows,
        paper={
            "total host": "96 minutes",
            "total MIC": "65 minutes",
            "speedup": "1.5x",
            "observation": "top-3 routines are all cross-section lookups; "
            "MIC beats CPU on them",
        },
    )
    result.notes.append(
        f"modelled total ratio CPU/MIC = {total_cpu / total_mic:.2f} "
        "(paper: 96/65 = 1.48)"
    )
    return result
