"""Figure 1: total cross-section data for U-238.

The paper's Fig. 1 plots U-238's total cross section from 1e-11 to ~20 MeV:
a smooth 1/v-dominated thermal range, the dense resolved resonance region
(keV-scale), the unresolved range near 1e-2 MeV, and the flat fast range.
This experiment regenerates the curve from the synthetic library and
verifies those four structural regimes quantitatively.
"""

from __future__ import annotations

from ..data.library import LibraryConfig, build_nuclide
from ..types import Reaction
from .common import ExperimentResult, Scale, register

__all__ = ["run"]


@register("fig1")
def run(scale: Scale) -> ExperimentResult:
    config = (
        LibraryConfig.tiny() if scale.library == "tiny" else LibraryConfig()
    )
    u238, urr, _ = build_nuclide("U238", config)
    energies = u238.energy
    total = u238.xs[Reaction.TOTAL]

    # Characterize the four regimes of the curve.
    thermal = float(u238.micro_xs(2.53e-8)[Reaction.TOTAL])
    resolved = (energies >= 4e-6) & (energies <= u238.urr_emin)
    peak = float(total[resolved].max()) if resolved.any() else float("nan")
    valley = float(total[resolved].min()) if resolved.any() else float("nan")
    fast = float(u238.micro_xs(2.0)[Reaction.TOTAL])

    rows = [
        {
            "regime": "thermal (0.0253 eV)",
            "sigma_t [b]": thermal,
            "feature": "1/v capture + potential scattering",
        },
        {
            "regime": "resolved resonance peak",
            "sigma_t [b]": peak,
            "feature": f"{config.heavy_resonances} SLBW resonances",
        },
        {
            "regime": "resolved resonance valley",
            "sigma_t [b]": valley,
            "feature": "interference dips",
        },
        {
            "regime": "URR onset [MeV]",
            "sigma_t [b]": u238.urr_emin,
            "feature": f"{urr.n_bands} probability-table bands",
        },
        {
            "regime": "fast (2 MeV)",
            "sigma_t [b]": fast,
            "feature": "smooth potential scattering",
        },
        {
            "regime": "grid points",
            "sigma_t [b]": float(u238.n_points),
            "feature": "union of backbone + per-resonance clusters",
        },
    ]
    result = ExperimentResult(
        exp_id="fig1",
        title="U-238 total cross section vs energy (synthetic library)",
        rows=rows,
        paper={
            "URR location [MeV]": "~1e-2 (paper Fig. 1 annotation)",
            "resonance peak/valley contrast": ">100x (visual)",
        },
    )
    if resolved.any() and valley > 0:
        contrast = peak / valley
        result.notes.append(
            f"resonance peak/valley contrast = {contrast:,.0f}x"
        )
        if contrast < 10:
            result.notes.append(
                "WARNING: contrast below expectation — check library fidelity"
            )
    result.notes.append(
        "synthetic ladder (Wigner spacings, Porter-Thomas widths) replaces "
        "ENDF data — see DESIGN.md substitutions"
    )
    return result
