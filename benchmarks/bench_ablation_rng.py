"""Ablation 4 (DESIGN.md §5): scalar per-call RNG vs vectorized streams.

Table I's Naive -> Optimized-1 step is almost entirely the RNG: replacing
per-call ``rand_r()`` with VSL-style vectorized multi-stream generation.
This ablation isolates that step: filling the same array of uniforms with
the scalar generator vs the lockstep stream generator.
"""

import numpy as np
import pytest

from repro.rng.streams import Partition, ScalarRandR, VectorStreams

N = 32_768


def test_scalar_rng_fill(benchmark):
    out = np.empty(N)

    def fill():
        ScalarRandR(seed=1).fill(out)
        return out

    result = benchmark.pedantic(fill, rounds=2, iterations=1)
    assert np.all((result >= 0) & (result < 1))


@pytest.mark.parametrize("nstreams", [1, 4, 16])
def test_vector_stream_fill(benchmark, nstreams):
    out = np.empty(N)

    def fill():
        VectorStreams(nstreams=nstreams, seed=1).fill(out)
        return out

    result = benchmark(fill)
    assert np.all((result >= 0) & (result < 1))


def test_leapfrog_fill(benchmark):
    out = np.empty(N)

    def fill():
        VectorStreams(
            nstreams=16, seed=1, partition=Partition.LEAPFROG
        ).fill(out)
        return out

    benchmark.pedantic(fill, rounds=2, iterations=1)


def test_vector_beats_scalar():
    """The Naive -> Optimized-1 mechanism, measured."""
    import time

    out = np.empty(N)
    t0 = time.perf_counter()
    ScalarRandR(seed=1).fill(out)
    t_scalar = time.perf_counter() - t0
    t0 = time.perf_counter()
    VectorStreams(nstreams=16, seed=1).fill(out)
    t_vector = time.perf_counter() - t0
    assert t_vector < t_scalar / 3
