"""Ablation 5 (DESIGN.md §5): S(alpha, beta) / URR enabled vs removed.

The paper removed both treatments to vectorize its micro-benchmarks.  This
ablation measures what they cost in the banked kernel — the masked
sub-bank work and extra RNG traffic — and what the divergence does to the
lane machine's efficiency.
"""

import numpy as np
import pytest

from repro.proxy.xsbench import XSBench
from repro.rng.lcg import particle_seeds
from repro.simd.analysis import divergence_loss

N = 2_500


def _run(bench, sample):
    counters_total = None
    for mid in np.unique(sample.material_ids):
        mask = sample.material_ids == mid
        states = particle_seeds(1, np.nonzero(mask)[0].astype(np.uint64)).copy()
        bench.calculator.banked(
            bench.materials[int(mid)],
            sample.energies[mask],
            rng_states=states,
        )


@pytest.fixture(scope="module")
def samples(tiny_large, union_large):
    full = XSBench(tiny_large, union_large, use_sab=True, use_urr=True)
    stripped = XSBench(tiny_large, union_large, use_sab=False, use_urr=False)
    return full, stripped, full.generate_lookups(N)


def test_full_physics_banked(benchmark, samples):
    full, _, sample = samples
    benchmark(_run, full, sample)


def test_stripped_physics_banked(benchmark, samples):
    _, stripped, sample = samples
    benchmark(_run, stripped, sample)


def test_branchy_physics_costs(samples):
    """Full physics is measurably slower and consumes URR/S(a,b) samples."""
    import time

    full, stripped, sample = samples
    t0 = time.perf_counter()
    _run(full, sample)
    t_full = time.perf_counter() - t0
    t0 = time.perf_counter()
    _run(stripped, sample)
    t_stripped = time.perf_counter() - t0
    assert t_full > t_stripped

    from repro.work import WorkCounters

    c = WorkCounters()
    for mid in np.unique(sample.material_ids):
        mask = sample.material_ids == mid
        states = particle_seeds(1, np.nonzero(mask)[0].astype(np.uint64)).copy()
        full.calculator.banked(
            full.materials[int(mid)], sample.energies[mask],
            rng_states=states, counters=c,
        )
    assert c.urr_samples > 0
    assert c.sab_samples > 0


def test_masked_divergence_model():
    """Under masked execution, the three scatter branches (S(a,b),
    free-gas, target-at-rest) cost ~3x in lane efficiency."""
    assert divergence_loss([0.2, 0.3, 0.5]) == pytest.approx(1 / 3)
