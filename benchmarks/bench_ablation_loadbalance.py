"""Ablation 6 (DESIGN.md §5): equal split vs static alpha vs adaptive alpha.

Quantifies the symmetric-mode balancing choices of Table III and §V across
a range of alpha mis-estimates: the static Eq. 3 split is only as good as
its alpha, and the adaptive controller recovers from a bad initial guess.
"""

import pytest

from repro.execution.loadbalance import AdaptiveAlphaController
from repro.execution.symmetric import SymmetricNode
from repro.machine.presets import JLSE_HOST, MIC_7120A

N = 100_000
TRUE_ALPHA = 0.62


@pytest.fixture(scope="module")
def node():
    return SymmetricNode(JLSE_HOST, [MIC_7120A, MIC_7120A], "hm-large")


def test_equal_split_rate(benchmark, node):
    rate = benchmark(node.calculation_rate, N, "equal")
    assert rate > 0


def test_alpha_split_rate(benchmark, node):
    rate = benchmark(node.calculation_rate, N, "alpha", TRUE_ALPHA)
    assert rate > node.calculation_rate(N, "equal")


def test_alpha_sensitivity(node):
    """Rate vs assumed alpha peaks near the true value."""
    rates = {a: node.calculation_rate(N, "alpha", a) for a in
             (0.2, 0.4, 0.62, 1.0, 1.6)}
    best = max(rates, key=rates.get)
    assert best == pytest.approx(TRUE_ALPHA, abs=0.25)
    # Over-loading the CPU (alpha >> true) is worse than the equal split
    # it replaced — mis-calibration in that direction costs real rate.
    assert rates[1.6] < node.calculation_rate(N, "equal") * 1.05


def test_adaptive_recovers(benchmark, node):
    """Starting from equal split, the adaptive controller converges to a
    near-optimal split within a few observed batches."""

    def converge():
        ctrl = AdaptiveAlphaController(p_mic=2, p_cpu=1, smoothing=0.6)
        cpu_rate = SymmetricNode(JLSE_HOST, [], "hm-large").calculation_rate(N)
        from repro.execution.native import NativeModel

        mic_rate = NativeModel(MIC_7120A, "hm-large").calculation_rate(N)
        for _ in range(4):
            ctrl.observe(cpu_rate, mic_rate)
        return ctrl.alpha

    a = benchmark.pedantic(converge, rounds=1, iterations=1)
    assert a == pytest.approx(TRUE_ALPHA, abs=0.05)
