"""Table III bench: symmetric-mode rates and load balancing."""

import pytest

from repro.execution.loadbalance import alpha_split
from repro.execution.symmetric import SymmetricNode
from repro.machine.presets import JLSE_HOST, MIC_7120A

N = 100_000


@pytest.fixture(scope="module")
def node2():
    return SymmetricNode(JLSE_HOST, [MIC_7120A, MIC_7120A], "hm-large")


def test_rate_evaluation(benchmark, node2):
    rate = benchmark(node2.calculation_rate, N, "alpha", 0.62)
    assert rate == pytest.approx(17_098, rel=0.08)


def test_eq3_split(benchmark):
    n_mic, n_cpu = benchmark(alpha_split, 10_000_000, 1, 1, 0.62)
    assert (n_mic, n_cpu) == (6_172_840, 3_827_160)


def test_table3_rows(node2):
    """The full Table III shape: balanced beats equal; ~4x over CPU-only."""
    cpu = SymmetricNode(JLSE_HOST, [], "hm-large")
    one = SymmetricNode(JLSE_HOST, [MIC_7120A], "hm-large")
    r_cpu = cpu.calculation_rate(N)
    r1_eq = one.calculation_rate(N, "equal")
    r1_lb = one.calculation_rate(N, "alpha", 0.62)
    r2_eq = node2.calculation_rate(N, "equal")
    r2_lb = node2.calculation_rate(N, "alpha", 0.62)
    assert r_cpu == pytest.approx(4_050, rel=0.05)
    assert r1_lb > r1_eq
    assert r2_lb > r2_eq > r1_eq
    assert r2_lb / r_cpu == pytest.approx(4.0, abs=0.5)
