"""Fig. 4 bench: instrumented history generation + modelled profile.

Times one TAU-instrumented history-mode generation (the measurement the
paper's Fig. 4 profile comes from) and asserts the modelled CPU/MIC total
ratio against the paper's 96/65 minutes.
"""

import numpy as np
import pytest

from repro.experiments import run_experiment
from repro.transport.context import TransportContext
from repro.transport.history import run_generation_history
from repro.transport.tally import GlobalTallies

N = 60


@pytest.fixture(scope="module")
def ctx(tiny_small, union_small):
    return TransportContext.create(
        tiny_small, pincell=True, union=union_small, master_seed=5
    )


@pytest.fixture(scope="module")
def source():
    rng = np.random.default_rng(5)
    pos = np.column_stack(
        [rng.uniform(-0.3, 0.3, N), rng.uniform(-0.3, 0.3, N),
         rng.uniform(-100, 100, N)]
    )
    return pos, np.full(N, 1.0)


def test_history_generation(benchmark, ctx, source):
    pos, en = source

    def run():
        t = GlobalTallies()
        return run_generation_history(ctx, pos, en, t, 1.0, 0)

    bank = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(bank) > 0


def test_fig4_model_ratio(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("fig4", "quick"), rounds=1, iterations=1
    )
    total = next(r for r in result.rows if r["routine"] == "TOTAL")
    # Paper: 96 min vs 65 min = 1.48x.
    assert total["CPU/MIC"] == pytest.approx(1.48, abs=0.25)
