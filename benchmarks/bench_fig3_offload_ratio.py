"""Fig. 3 bench: offload-ratio sweep and profitability crossover."""

import pytest

from repro.execution.offload import OffloadCostModel
from repro.machine.presets import JLSE_HOST, MIC_7120A, PCIE_GEN2_X16


@pytest.fixture(scope="module")
def offload():
    return OffloadCostModel(JLSE_HOST, MIC_7120A, PCIE_GEN2_X16, "hm-small")


def test_ratio_sweep(benchmark, offload):
    def sweep():
        return [
            offload.normalized_ratios(n)
            for n in (100, 1_000, 10_000, 100_000, 1_000_000)
        ]

    ratios = benchmark(sweep)
    # Fig. 3's trends.
    assert ratios[-1]["transfer"] < ratios[0]["transfer"]
    assert ratios[-1]["host_xs_compute"] > ratios[0]["host_xs_compute"]
    assert ratios[-1]["mic_compute"] < ratios[0]["mic_compute"]


def test_crossover_search(benchmark, offload):
    crossover = benchmark(offload.crossover_particles)
    # Paper: "above 10,000" particles.
    assert 3_000 < crossover < 30_000
