"""Ablation 2 (DESIGN.md §5): inner (nuclide) vs outer (particle) loop
vectorization of the banked XS kernel.

The paper found forcing ``#pragma simd`` on the outer (particle) loop
*slower* than vectorizing the inner nuclide loop, "likely because the
bounds of the inner loop vary with the different materials".  The Python
analogue: NumPy across particles per nuclide (inner) vs NumPy across
nuclides per particle (outer) — and the same ordering must hold.
"""

import pytest

from repro.proxy.xsbench import XSBench

N = 1_200


@pytest.fixture(scope="module")
def setup(tiny_large, union_large):
    xs = XSBench(tiny_large, union_large, use_sab=False, use_urr=False)
    return xs, xs.generate_lookups(N)


def test_inner_loop_vectorization(benchmark, setup):
    xs, sample = setup
    t, c = benchmark(xs.run_banked, sample)
    assert c.lookups == N


def test_outer_loop_vectorization(benchmark, setup):
    xs, sample = setup
    t, c = benchmark.pedantic(
        xs.run_banked_outer, args=(sample,), rounds=2, iterations=1
    )
    assert c.lookups == N


def test_inner_beats_outer(setup):
    """The paper's loop-order finding, measured."""
    xs, sample = setup
    t_inner, _ = xs.run_banked(sample)
    t_outer, _ = xs.run_banked_outer(sample)
    assert t_inner < t_outer
