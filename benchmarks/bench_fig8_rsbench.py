"""Fig. 8 bench: RSBench original vs vectorized multipole lookups."""

import pytest

from repro.proxy.rsbench import RSBench, RSBenchConfig

N_LOOKUPS = 1_500


@pytest.fixture(scope="module")
def setup():
    bench = RSBench(RSBenchConfig(n_nuclides=4, resonances_per_nuclide=20))
    which, energies = bench.generate_lookups(N_LOOKUPS)
    return bench, which, energies


def test_original(benchmark, setup):
    bench, which, energies = setup
    t, out = benchmark.pedantic(
        bench.run_original, args=(which, energies), rounds=2, iterations=1
    )
    assert out.shape == (N_LOOKUPS,)


def test_vectorized(benchmark, setup):
    bench, which, energies = setup
    t, out = benchmark(bench.run_vectorized, which, energies)
    assert out.shape == (N_LOOKUPS,)


def test_vectorized_wins(setup):
    bench, which, energies = setup
    t_orig, a = bench.run_original(which, energies)
    t_vec, b = bench.run_vectorized(which, energies)
    assert t_vec < t_orig / 3
    assert bench.verify(100) < 1e-10
