"""Shared fixtures for the benchmark suite (tiny-fidelity libraries)."""

import pytest

from repro.data import LibraryConfig, UnionizedGrid, build_library


@pytest.fixture(scope="session")
def tiny_small():
    return build_library("hm-small", LibraryConfig.tiny())


@pytest.fixture(scope="session")
def tiny_large():
    return build_library("hm-large", LibraryConfig.tiny())


@pytest.fixture(scope="session")
def union_small(tiny_small):
    return UnionizedGrid(tiny_small)


@pytest.fixture(scope="session")
def union_large(tiny_large):
    return UnionizedGrid(tiny_large)
