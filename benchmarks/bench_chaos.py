"""Durability bench: what crash consistency costs, with a gate.

Two questions about PR 10's write-ahead journal, mirroring the gateway
bench's split between a portable regression gate and an absolute
acceptance bound:

* **Journaled drain** — the same open-loop synthetic drain as
  ``bench_gateway``, but with every state transition framed, hashed,
  and appended to the journal.  The normalized drain time is pinned
  against ``baselines/chaos.json`` (calibration kernel and gate factor
  identical to the gateway bench), so the cost of durability itself is
  under regression control.
* **Replay budget** — recovery must be cheap enough to be the default
  restart path: replaying the completed journal into a fresh gateway
  (scan + digest checks + state rebuild + result restore) must take
  **< 5% of the sweep's wall time** (the acceptance bound from the
  issue).  Replay is pure deserialization — if it ever approaches the
  cost of the work it recovers, the journal has failed its purpose.

Journal fsync stays off here: the bench isolates the framing/hashing
cost, not the disk's sync latency (the CLI turns fsync on; torn-tail
safety never depends on it — the scan truncates unsynced garbage).
"""

import hashlib
import json
import shutil
from pathlib import Path
from time import perf_counter

from repro.gateway import Gateway, SyntheticService, WriteAheadJournal
from repro.serve import JobSpec

SETTINGS = {
    "n_particles": 24,
    "n_inactive": 0,
    "n_active": 2,
    "mode": "event",
    "pincell": True,
}

N_JOBS = 512
N_SHARDS = 2
N_DISTINCT = 128
ROUNDS = 3

BASELINE = json.loads(
    (Path(__file__).parent / "baselines" / "chaos.json").read_text()
)


def make_specs(n, prefix, *, distinct=N_DISTINCT):
    return [
        JobSpec(
            job_id=f"{prefix}{i:04d}",
            settings={**SETTINGS, "seed": i % distinct},
        )
        for i in range(n)
    ]


def calibration_time() -> float:
    """Same hash-shaped kernel as bench_gateway: SHA-256 over spec-sized
    JSON documents — also exactly the CPU shape of journal framing."""
    docs = [
        json.dumps(
            {"settings": {**SETTINGS, "seed": i}, "job_id": f"cal{i}"},
            sort_keys=True,
        ).encode()
        for i in range(N_JOBS)
    ]
    best = float("inf")
    for _ in range(3):
        t0 = perf_counter()
        for _ in range(20):
            for doc in docs:
                hashlib.sha256(doc).hexdigest()
        best = min(best, perf_counter() - t0)
    return best


def journaled_drain(specs, journal_path):
    """Drain every spec through a journaled synthetic gateway."""
    gw = Gateway(
        N_SHARDS,
        workers_per_shard=2,
        capacity=N_JOBS,
        max_class_share=1.0,
        service_factory=SyntheticService,
        journal_path=journal_path,
    )
    t0 = perf_counter()
    with gw:
        for spec in specs:
            gw.submit(spec)
        gw.drain(deadline_s=120)
    seconds = perf_counter() - t0
    assert len(gw.results) == len(specs)
    assert all(r.status == "done" for r in gw.results.values())
    return seconds, gw


def test_journaled_drain_regression_gate(tmp_path):
    """512 jobs through a journaled 2-shard gateway: the normalized
    drain time must not regress more than 25% over the baseline."""
    seconds = float("inf")
    for round_no in range(ROUNDS):
        t, gw = journaled_drain(
            make_specs(N_JOBS, f"jd{round_no}-"),
            tmp_path / f"r{round_no}.journal",
        )
        seconds = min(seconds, t)
    appended = gw.journal.appended

    cal = calibration_time()
    ratio = seconds / cal
    recorded = BASELINE["baseline"]
    print(
        f"\njournaled drain: {N_JOBS} jobs in {seconds:.2f}s "
        f"({N_JOBS / seconds:.0f} jobs/s, {appended} journal records); "
        f"ratio {ratio:.2f} vs recorded {recorded['ratio']:.2f} "
        f"(calibration {cal * 1e3:.0f} ms)"
    )
    gate = BASELINE["gate_factor"] * recorded["ratio"]
    assert ratio <= gate, (
        f"journaled drain regressed: normalized ratio {ratio:.2f} "
        f"exceeds gate {gate:.2f} (recorded {recorded['ratio']:.2f} + 25%)"
    )


def test_replay_overhead_under_5pct_of_sweep_wall(tmp_path):
    """The acceptance bound: recovering a completed sweep from its
    journal costs < 5% of the wall time the sweep itself took.

    The sweep here runs **real transport** (the same tiny pin-cell
    physics as bench_gateway's overhead test): replay must be cheap
    relative to the work it spares, and synthetic shards fabricate
    results so fast that the comparison would measure nothing.
    """
    n_jobs, n_distinct = 6, 4
    specs = [
        JobSpec(job_id=f"sw{i}", settings={**SETTINGS, "seed": i % n_distinct})
        for i in range(n_jobs)
    ]
    journal = tmp_path / "sweep.journal"
    gw = Gateway(
        N_SHARDS,
        cache_dir=str(tmp_path / "libs"),
        journal_path=journal,
    )
    t0 = perf_counter()
    with gw:
        results = gw.run(specs, deadline_s=110)
    sweep_seconds = perf_counter() - t0
    assert all(r.status == "done" for r in results)
    n_records = len(WriteAheadJournal.scan(journal).records)

    replay = float("inf")
    for round_no in range(ROUNDS):
        # recover() appends a marker, so each round replays a pristine
        # copy of the post-sweep journal.
        copy = tmp_path / f"replay{round_no}.journal"
        shutil.copyfile(journal, copy)
        second = Gateway(
            N_SHARDS,
            service_factory=SyntheticService,
            journal_path=copy,
        )
        t0 = perf_counter()
        summary = second.recover()
        replay = min(replay, perf_counter() - t0)
        assert summary["restored"] == n_jobs
        assert summary["requeued"] == 0
        second.shutdown()

    fraction = replay / sweep_seconds
    print(
        f"\njournal replay: {n_records} records, {n_jobs} results "
        f"restored in {replay * 1e3:.1f} ms — {100 * fraction:.2f}% of "
        f"the {sweep_seconds:.2f}s sweep (budget 5%)"
    )
    assert fraction < 0.05, (
        f"replay overhead {100 * fraction:.2f}% exceeds the 5% budget"
    )
