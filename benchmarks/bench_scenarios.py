"""Scenario bench: the canned-scenario x backend calculation-rate matrix.

Smoke-level (no committed baseline yet — see ROADMAP item 3): every
canned scenario runs one tiny generation on every registered backend,
printing the paper's calculation-rate metric per cell.  What *is* gated
here is the declarative layer's own overhead: document load + validation
+ compilation down to a ``JobSpec`` must stay in single-digit
milliseconds — the roof layer may not tax the run path it lowers onto.

Run directly::

    PYTHONPATH=src python -m pytest benchmarks/bench_scenarios.py -q -s
"""

from time import perf_counter

import pytest

from repro.scenarios import canned_scenario_names, compile_scenario, load_scenario
from repro.transport import available_backends

#: One tiny generation per cell keeps the full matrix CI-sized.
RUN = dict(fidelity="tiny", particles=100, inactive=0, active=1)

#: Compile must stay this many times cheaper than even a tiny generation.
COMPILE_BUDGET_S = 0.05

_libraries: dict = {}


def _library_for(compiled):
    """Share built libraries across cells (keyed by fingerprint)."""
    key = compiled.job_spec().library_fingerprint()
    if key not in _libraries:
        _libraries[key] = compiled.build_library()
    return _libraries[key]


@pytest.mark.parametrize("name", canned_scenario_names())
def test_compile_overhead_is_negligible(name):
    t0 = perf_counter()
    compiled = load_scenario(name)
    spec = compiled.job_spec()
    elapsed = perf_counter() - t0
    print(f"\ncompile {name}: {elapsed * 1e3:.2f} ms "
          f"(fingerprint {spec.scenario_fingerprint[:12]})")
    assert elapsed < COMPILE_BUDGET_S


@pytest.mark.parametrize("backend", sorted(available_backends()))
@pytest.mark.parametrize("name", canned_scenario_names())
def test_scenario_backend_matrix(name, backend):
    compiled = compile_scenario(
        load_scenario(name).spec.with_overrides(
            backend=backend,
            # Delta tracking scores no track-length tallies; the matrix
            # compares transport rates, so strip the power request
            # uniformly.
            tallies=("k-effective", "entropy"),
            **RUN,
        )
    )
    result = compiled.build_simulation(_library_for(compiled)).run()
    print(f"\n{name:>14} x {backend:<8} "
          f"{result.calculation_rate:>10,.0f} n/s   "
          f"k={result.k_effective.mean:.4f}")
    assert result.n_particles == RUN["particles"]
    assert result.counters.collisions > 0
