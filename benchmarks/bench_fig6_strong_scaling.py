"""Fig. 6 bench: strong scaling sweep on the simulated Stampede cluster."""

from repro.cluster.scaling import strong_scaling
from repro.cluster.topology import STAMPEDE

NODES = [4, 8, 16, 32, 64, 128, 256, 512, 1024]


def test_strong_scaling_sweep(benchmark):
    points = benchmark(
        strong_scaling, STAMPEDE, NODES, 10_000_000, 1, "hm-large", 0.42
    )
    eff = {pt.nodes: pt.efficiency for pt in points}
    assert eff[128] >= 0.95
    assert eff[1024] < 0.87


def test_all_three_curves(benchmark):
    def sweep():
        return {
            m: strong_scaling(STAMPEDE, NODES, 10_000_000, m, alpha=0.42)
            for m in (0, 1, 2)
        }

    curves = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # 2-MIC inventory cap.
    assert max(pt.nodes for pt in curves[2]) <= 384
    # CPU-only immune to the tail.
    assert curves[0][-1].efficiency > curves[1][-1].efficiency
