"""Benchmarks for the extension features: distributed runs, multigroup
condensation, power/spectrum tallies, and survival biasing overhead."""

import pytest

from repro.cluster.distributed import DistributedSimulation
from repro.data.multigroup import GroupStructure, condense
from repro.geometry.materials import make_fuel, make_water
from repro.transport import Settings, Simulation

SETTINGS = Settings(
    n_particles=80, n_inactive=0, n_active=2, pincell=True,
    mode="event", seed=17,
)


def test_distributed_4_ranks(benchmark, tiny_small):
    def run():
        return DistributedSimulation(tiny_small, SETTINGS, 4).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.n_ranks == 4


def test_condense_two_group_fuel(benchmark, tiny_small):
    fuel = make_fuel("hm-small")
    mg = benchmark(condense, tiny_small, fuel, GroupStructure.two_group())
    assert mg.k_infinity() > 0


def test_condense_water_8_groups(benchmark, tiny_small):
    water = make_water()
    mg = benchmark(
        condense, tiny_small, water, GroupStructure.equal_lethargy(8)
    )
    assert mg.scatter.sum() > 0


@pytest.mark.parametrize("survival", [False, True])
def test_event_simulation(benchmark, tiny_small, survival):
    """Survival biasing's measured overhead per batch (longer histories)."""

    def run():
        return Simulation(
            tiny_small,
            Settings(
                n_particles=100, n_inactive=0, n_active=1, pincell=True,
                mode="event", seed=5, survival_biasing=survival,
            ),
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.counters.collisions > 0


def test_power_tally_overhead(benchmark, tiny_small):
    """Scoring the 17x17 power map must cost little on top of transport."""

    def run():
        return Simulation(
            tiny_small,
            Settings(
                n_particles=80, n_inactive=0, n_active=1, pincell=False,
                mode="event", seed=5, tally_power=True,
            ),
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.power is not None
