"""Ablation 1 (DESIGN.md §5): AoS vs SoA particle/XS data layout.

The paper calls AoS->SoA "the most important" optimization for the banked
kernels on the MIC.  In NumPy, both layouts execute gathers, so the
*measured* contrast is modest (and can even favour AoS's per-record cache
locality); the hardware effect — unit-stride vector loads — lives in the
machine model.  Both are reported here.
"""

import pytest

from repro.proxy.xsbench import XSBench

N = 3_000


@pytest.fixture(scope="module")
def samples(tiny_large, union_large):
    soa = XSBench(tiny_large, union_large, layout="soa")
    aos = XSBench(tiny_large, union_large, layout="aos")
    sample = soa.generate_lookups(N)
    return soa, aos, sample


def test_soa_banked(benchmark, samples):
    soa, _, sample = samples
    t, counters = benchmark(soa.run_banked, sample)
    assert counters.lookups == N


def test_aos_banked(benchmark, samples):
    _, aos, sample = samples
    t, counters = benchmark(aos.run_banked, sample)
    assert counters.lookups == N


def test_layouts_agree(samples):
    """Layout is a performance choice, never a physics choice."""
    import numpy as np

    soa, aos, sample = samples
    for mid in np.unique(sample.material_ids):
        mask = sample.material_ids == mid
        a = soa.calculator.banked(
            soa.materials[int(mid)], sample.energies[mask]
        )["total"]
        b = aos.calculator.banked(
            aos.materials[int(mid)], sample.energies[mask]
        )["total"]
        np.testing.assert_allclose(a, b, rtol=1e-13)
