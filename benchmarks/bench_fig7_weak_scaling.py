"""Fig. 7 bench: weak scaling sweep on the simulated Stampede cluster."""

from repro.cluster.scaling import weak_scaling
from repro.cluster.topology import STAMPEDE

NODES = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]


def test_weak_scaling_sweep(benchmark):
    points = benchmark(
        weak_scaling, STAMPEDE, NODES, 1_000_000, 1, "hm-large", 0.42
    )
    # Paper: > 94% to 128 nodes, predicted flat to 2^10 (footnote).
    assert all(pt.efficiency > 0.94 for pt in points)


def test_rate_linearity(benchmark):
    points = benchmark.pedantic(
        weak_scaling,
        args=(STAMPEDE, [1, 256], 1_000_000, 1, "hm-large", 0.42),
        rounds=1, iterations=1,
    )
    assert points[1].rate > 250 * points[0].rate
