"""Table II bench: banking and offload volumes.

Times the real AoS->SoA banking conversion (the operation Table II's
"banking" rows measure) and a simulated PCIe-style buffer shipment, and
asserts the modelled Table II entries against the paper's numbers.
"""

import numpy as np
import pytest

from repro.execution.offload import OffloadCostModel
from repro.machine.memory import bank_bytes, energy_grid_bytes
from repro.machine.presets import JLSE_HOST, MIC_7120A, PCIE_GEN2_X16
from repro.transport.particle import Particle, ParticleBank

N_PARTICLES = 2_000


@pytest.fixture(scope="module")
def particles():
    rng = np.random.default_rng(1)
    return [
        Particle.from_source(i, rng.uniform(-1, 1, 3), 1.0)
        for i in range(N_PARTICLES)
    ]


def test_banking_aos_to_soa(benchmark, particles):
    """The banking operation: scatter AoS particle objects into SoA arrays."""
    bank = benchmark(ParticleBank.from_particles, particles)
    assert bank.n == N_PARTICLES


def test_unbanking_soa_to_aos(benchmark, particles):
    bank = ParticleBank.from_particles(particles)
    out = benchmark(bank.to_particles)
    assert len(out) == N_PARTICLES


def test_simulated_transfer(benchmark, particles):
    """Shipping the bank: a contiguous buffer copy (the PCIe payload)."""
    bank = ParticleBank.from_particles(particles)
    payload = np.concatenate(
        [bank.position.ravel(), bank.direction.ravel(), bank.energy]
    )

    def ship():
        return payload.copy()

    out = benchmark(ship)
    assert out.nbytes == payload.nbytes


class TestModelledTableII:
    def test_bank_sizes(self):
        assert bank_bytes(100_000, "hm-small") == pytest.approx(496e6, rel=0.02)
        assert bank_bytes(100_000, "hm-large") == pytest.approx(2.84e9, rel=0.02)

    def test_grid_sizes(self):
        assert energy_grid_bytes("hm-small") == pytest.approx(1.31e9, rel=0.10)
        assert energy_grid_bytes("hm-large") == pytest.approx(8.37e9, rel=0.10)

    def test_component_times(self):
        off = OffloadCostModel(JLSE_HOST, MIC_7120A, PCIE_GEN2_X16, "hm-large")
        assert off.banking_time_host(100_000) == pytest.approx(0.004, rel=0.05)
        assert off.banking_time_mic(100_000) == pytest.approx(0.034, rel=0.05)
        assert off.transfer_time(100_000) == pytest.approx(2.21, rel=0.05)
        assert off.mic_compute_time(100_000) == pytest.approx(0.101, rel=0.05)
