"""Fig. 9 (extension): the paper's crossover figures on modern devices.

The paper's Fig. 5 story — the coprocessor loses to the host below an
occupancy threshold and wins above it — replayed on the GPU-era presets
(EPYC host vs A100, ``hm-large``).  Everything here is the deterministic
cost model (pure float math, no timing), so the committed baseline in
``baselines/fleet_crossover.json`` pins the exact modelled values: any
drift in the device presets or kernel constants shows up as a diff
against physics-anchored numbers, not as CI noise.

Asserted shape, mirroring the paper:

* the host wins at 1e3 particles, the GPU wins from 1e4 up (Fig. 5's
  crossover, shifted right by the GPU's ~10x larger thread count);
* the GPU's rate saturates (1e7 within ~2% of 1e6) while the host is
  already flat — occupancy starvation is a small-batch effect;
* the rate-balanced host *share* on an ``a100-node`` collapses from ~1
  at starvation scale and stabilizes above 1e5 (the N-way Eq. 3 regime).
"""

import json
from pathlib import Path

import pytest

from repro.cluster.topology import fleet_by_name
from repro.execution.symmetric import FleetNode
from repro.machine.kernels import TransportCostModel, WorkPerParticle
from repro.machine.memory import library_nuclides
from repro.machine.presets import device_by_name

POINTS = [1_000, 10_000, 100_000, 1_000_000, 10_000_000]

BASELINE = json.loads(
    (Path(__file__).parent / "baselines" / "fleet_crossover.json").read_text()
)


def _cost(name: str) -> TransportCostModel:
    return TransportCostModel(
        device_by_name(name),
        library_nuclides("hm-large"),
        WorkPerParticle.hm_reference(),
    )


@pytest.fixture(scope="module")
def curves():
    host, gpu = _cost("epyc-host"), _cost("a100")
    node = FleetNode(fleet_by_name("a100-node"), "hm-large")
    rows = {}
    for n in POINTS:
        counts = node.fleet_counts(n, "rate")
        rows[str(n)] = {
            "host": host.calculation_rate(n),
            "a100": gpu.calculation_rate(n),
            "node_balanced": node.calculation_rate(n, "rate"),
            "host_share": counts[-1] / n,
        }
    return rows


def test_matches_committed_baseline(curves):
    """Every modelled value matches the committed baseline to 1e-9 —
    the curve is a pure function of the presets and kernel constants."""
    for n, row in BASELINE["points"].items():
        for key, recorded in row.items():
            assert curves[n][key] == pytest.approx(recorded, rel=1e-9), (
                f"n={n} {key}: modelled {curves[n][key]!r} vs "
                f"baseline {recorded!r}"
            )


def test_crossover_location(curves):
    """Host wins at 1e3; the A100 wins from 1e4 up (Fig. 5 at modern
    scale: the crossover moved right with the device's thread count)."""
    assert curves["1000"]["host"] > curves["1000"]["a100"]
    for n in POINTS[1:]:
        assert curves[str(n)]["a100"] > curves[str(n)]["host"]


def test_gpu_saturates_host_already_flat(curves):
    """Above the crossover both curves flatten: starvation is a
    small-batch effect, exactly the paper's Fig. 5 plateau."""
    assert curves["10000000"]["a100"] < 1.02 * curves["1000000"]["a100"]
    assert curves["10000000"]["host"] < 1.02 * curves["1000000"]["host"]


def test_balanced_host_share_stabilizes(curves):
    """The N-way rate split sends nearly everything to the host while the
    GPUs starve, then settles to a stable small host share at scale."""
    assert curves["1000"]["host_share"] > 0.85
    big = [curves[str(n)]["host_share"] for n in POINTS[2:]]
    assert all(0.05 < s < 0.12 for s in big)
    assert max(big) - min(big) < 0.04


def test_balanced_node_beats_best_device_at_scale(curves):
    """At 1e6+ the balanced fleet outruns its best single device — the
    Table III headline, reproduced on the modern node."""
    for n in ("1000000", "10000000"):
        best_single = max(curves[n]["host"], curves[n]["a100"])
        assert curves[n]["node_balanced"] > 1.5 * best_single
