"""Resilience bench: checkpoint write/restore cost vs. batch wall time.

The operational requirement: at the default cadence
(:data:`repro.resilience.checkpoint.DEFAULT_CADENCE` batches between
writes), checkpointing must cost **< 5% of batch wall time** — resilience
is supposed to be cheap insurance, not a second workload.  The suite times
the raw save/load path on a production-sized state (1e4 particles) and
then measures the end-to-end overhead inside a real checkpointed run via
the driver's own profile.

A regression gate (pattern from ``bench_event_hotpath``) pins the raw
save+restore cost against ``baselines/resilience.json``: times are
normalized by a serialization-shaped calibration kernel (pack + hash, the
dominant CPU cost of a checkpoint write) so the gate is portable across
CI hosts, and the bench fails if the normalized ratio regresses more than
``gate_factor`` (25%) over the committed baseline.
"""

import hashlib
import io
import json
from pathlib import Path
from time import perf_counter

import numpy as np
import pytest

from repro.resilience.checkpoint import (
    DEFAULT_CADENCE,
    CheckpointState,
    load_checkpoint,
    save_checkpoint,
)
from repro.transport import Settings, Simulation

N_PARTICLES = 10_000

BASELINE = json.loads(
    (Path(__file__).parent / "baselines" / "resilience.json").read_text()
)


def calibration_time() -> float:
    """Serialization-shaped kernel (npz pack + SHA-256), identical to the
    one used when the baseline was recorded, so ratios are comparable
    across machines."""
    rng = np.random.default_rng(0)
    arrays = {
        "positions": rng.normal(size=(N_PARTICLES, 3)),
        "energies": rng.uniform(1e-5, 2.0, N_PARTICLES),
    }
    best = float("inf")
    for _ in range(3):
        t0 = perf_counter()
        for _ in range(5):
            buf = io.BytesIO()
            np.savez(buf, **arrays)
            hashlib.sha256(buf.getvalue()).hexdigest()
        best = min(best, perf_counter() - t0)
    return best


@pytest.fixture(scope="module")
def big_state():
    rng = np.random.default_rng(3)
    n_batches = 40
    return CheckpointState(
        batches_done=n_batches,
        id_offset=n_batches * N_PARTICLES,
        n_inactive=10,
        fingerprint="b" * 64,
        positions=rng.normal(size=(N_PARTICLES, 3)),
        energies=rng.uniform(1e-5, 2.0, N_PARTICLES),
        k_collision=list(rng.uniform(0.9, 1.1, n_batches)),
        k_absorption=list(rng.uniform(0.9, 1.1, n_batches)),
        k_track=list(rng.uniform(0.9, 1.1, n_batches)),
        entropy=list(rng.uniform(3.0, 4.0, n_batches)),
        source_rng_state=np.random.default_rng(3).bit_generator.state,
        counters={"lookups": 10**9, "collisions": 10**8},
        elapsed_seconds=3600.0,
    )


def test_checkpoint_write(benchmark, big_state, tmp_path):
    """Atomic serialize + hash + fsync + rename of a 1e4-particle state."""
    path = benchmark(save_checkpoint, big_state, tmp_path / "bench.rpk")
    assert path.exists()


def test_checkpoint_restore(benchmark, big_state, tmp_path):
    """Read + verify + unpack of the same state."""
    path = save_checkpoint(big_state, tmp_path / "bench.rpk")
    loaded = benchmark(load_checkpoint, path)
    assert loaded.batches_done == big_state.batches_done


def test_save_restore_regression_gate(big_state, tmp_path):
    """The raw round trip, normalized by the calibration kernel, must not
    regress more than 25% over the committed baseline."""
    path = tmp_path / "gate.rpk"
    save = restore = float("inf")
    for _ in range(5):
        t0 = perf_counter()
        save_checkpoint(big_state, path)
        save = min(save, perf_counter() - t0)
        t0 = perf_counter()
        loaded = load_checkpoint(path)
        restore = min(restore, perf_counter() - t0)
    assert loaded.batches_done == big_state.batches_done

    cal = calibration_time()
    ratio = (save + restore) / cal
    recorded = BASELINE["baseline"]
    print(
        f"\nresilience round trip: save {save * 1e3:.2f} ms + restore "
        f"{restore * 1e3:.2f} ms (ratio {ratio:.2f}, calibration "
        f"{cal * 1e3:.2f} ms); recorded ratio {recorded['ratio']:.2f}"
    )
    gate = BASELINE["gate_factor"] * recorded["ratio"]
    assert ratio <= gate, (
        f"checkpoint round trip regressed: normalized ratio {ratio:.2f} "
        f"exceeds gate {gate:.2f} (recorded ratio {recorded['ratio']:.2f} "
        f"+ 25%)"
    )


class TestOverheadBudget:
    """End-to-end: checkpointing inside a real run stays under budget."""

    def test_write_overhead_under_5pct_of_batch_time(
        self, tiny_small, tmp_path
    ):
        settings = Settings(
            n_particles=150,
            n_inactive=1,
            n_active=2 * DEFAULT_CADENCE - 1,
            pincell=True,
            mode="event",
            seed=5,
            checkpoint_every=DEFAULT_CADENCE,
            checkpoint_dir=str(tmp_path),
        )
        result = Simulation(tiny_small, settings).run()
        profile = result.profile
        writes = profile.routines["checkpoint_write"]
        transport = profile.routines["transport_generation"]
        assert writes.calls == 2  # 10 batches at cadence 5
        batch_seconds = transport.total_seconds / transport.calls
        # Overhead amortized over one cadence window, per batch.
        per_batch_overhead = writes.mean_seconds / DEFAULT_CADENCE
        fraction = per_batch_overhead / batch_seconds
        print(
            f"\ncheckpoint overhead: {writes.mean_seconds * 1e3:.2f} ms/write, "
            f"{100 * fraction:.3f}% of batch wall time at cadence "
            f"{DEFAULT_CADENCE}"
        )
        assert fraction < 0.05

    def test_restore_cost_bounded_by_one_batch(self, tiny_small, tmp_path):
        settings = Settings(
            n_particles=150,
            n_inactive=1,
            n_active=DEFAULT_CADENCE,
            pincell=True,
            mode="event",
            seed=5,
            checkpoint_every=DEFAULT_CADENCE,
            checkpoint_dir=str(tmp_path),
        )
        Simulation(tiny_small, settings).run()
        from repro.resilience.checkpoint import latest_checkpoint

        resumed = Simulation(tiny_small, settings).run(
            resume_from=latest_checkpoint(tmp_path)
        )
        profile = resumed.profile
        restore = profile.routines["checkpoint_restore"]
        transport = profile.routines["transport_generation"]
        batch_seconds = transport.total_seconds / transport.calls
        # Restoring must be far cheaper than redoing even one batch.
        assert restore.total_seconds < batch_seconds
