"""Resilience bench: checkpoint write/restore cost vs. batch wall time.

The operational requirement: at the default cadence
(:data:`repro.resilience.checkpoint.DEFAULT_CADENCE` batches between
writes), checkpointing must cost **< 5% of batch wall time** — resilience
is supposed to be cheap insurance, not a second workload.  The suite times
the raw save/load path on a production-sized state (1e4 particles) and
then measures the end-to-end overhead inside a real checkpointed run via
the driver's own profile.
"""

import numpy as np
import pytest

from repro.resilience.checkpoint import (
    DEFAULT_CADENCE,
    CheckpointState,
    load_checkpoint,
    save_checkpoint,
)
from repro.transport import Settings, Simulation

N_PARTICLES = 10_000


@pytest.fixture(scope="module")
def big_state():
    rng = np.random.default_rng(3)
    n_batches = 40
    return CheckpointState(
        batches_done=n_batches,
        id_offset=n_batches * N_PARTICLES,
        n_inactive=10,
        fingerprint="b" * 64,
        positions=rng.normal(size=(N_PARTICLES, 3)),
        energies=rng.uniform(1e-5, 2.0, N_PARTICLES),
        k_collision=list(rng.uniform(0.9, 1.1, n_batches)),
        k_absorption=list(rng.uniform(0.9, 1.1, n_batches)),
        k_track=list(rng.uniform(0.9, 1.1, n_batches)),
        entropy=list(rng.uniform(3.0, 4.0, n_batches)),
        source_rng_state=np.random.default_rng(3).bit_generator.state,
        counters={"lookups": 10**9, "collisions": 10**8},
        elapsed_seconds=3600.0,
    )


def test_checkpoint_write(benchmark, big_state, tmp_path):
    """Atomic serialize + hash + fsync + rename of a 1e4-particle state."""
    path = benchmark(save_checkpoint, big_state, tmp_path / "bench.rpk")
    assert path.exists()


def test_checkpoint_restore(benchmark, big_state, tmp_path):
    """Read + verify + unpack of the same state."""
    path = save_checkpoint(big_state, tmp_path / "bench.rpk")
    loaded = benchmark(load_checkpoint, path)
    assert loaded.batches_done == big_state.batches_done


class TestOverheadBudget:
    """End-to-end: checkpointing inside a real run stays under budget."""

    def test_write_overhead_under_5pct_of_batch_time(
        self, tiny_small, tmp_path
    ):
        settings = Settings(
            n_particles=150,
            n_inactive=1,
            n_active=2 * DEFAULT_CADENCE - 1,
            pincell=True,
            mode="event",
            seed=5,
            checkpoint_every=DEFAULT_CADENCE,
            checkpoint_dir=str(tmp_path),
        )
        result = Simulation(tiny_small, settings).run()
        profile = result.profile
        writes = profile.routines["checkpoint_write"]
        transport = profile.routines["transport_generation"]
        assert writes.calls == 2  # 10 batches at cadence 5
        batch_seconds = transport.total_seconds / transport.calls
        # Overhead amortized over one cadence window, per batch.
        per_batch_overhead = writes.mean_seconds / DEFAULT_CADENCE
        fraction = per_batch_overhead / batch_seconds
        print(
            f"\ncheckpoint overhead: {writes.mean_seconds * 1e3:.2f} ms/write, "
            f"{100 * fraction:.3f}% of batch wall time at cadence "
            f"{DEFAULT_CADENCE}"
        )
        assert fraction < 0.05

    def test_restore_cost_bounded_by_one_batch(self, tiny_small, tmp_path):
        settings = Settings(
            n_particles=150,
            n_inactive=1,
            n_active=DEFAULT_CADENCE,
            pincell=True,
            mode="event",
            seed=5,
            checkpoint_every=DEFAULT_CADENCE,
            checkpoint_dir=str(tmp_path),
        )
        Simulation(tiny_small, settings).run()
        from repro.resilience.checkpoint import latest_checkpoint

        resumed = Simulation(tiny_small, settings).run(
            resume_from=latest_checkpoint(tmp_path)
        )
        profile = resumed.profile
        restore = profile.routines["checkpoint_restore"]
        transport = profile.routines["transport_generation"]
        batch_seconds = transport.total_seconds / transport.calls
        # Restoring must be far cheaper than redoing even one batch.
        assert restore.total_seconds < batch_seconds
