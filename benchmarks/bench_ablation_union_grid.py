"""Ablation 3 (DESIGN.md §5): unionized energy grid vs per-nuclide search.

Leppänen's unionized grid trades memory (Table II's GB-scale index matrix)
for replacing per-nuclide binary searches with one union search plus
gathers.  Both configurations are exercised through the banked kernel; the
grid-search work counters quantify the reduction.
"""

import pytest

from repro.proxy.xsbench import XSBench

N = 2_000


@pytest.fixture(scope="module")
def with_union(tiny_large, union_large):
    xs = XSBench(tiny_large, union_large)
    return xs, xs.generate_lookups(N)


@pytest.fixture(scope="module")
def without_union(tiny_large):
    from repro.physics.macroxs import XSCalculator

    # Build an XSBench-like wrapper whose calculator has no union grid.
    xs = XSBench(tiny_large)
    xs.calculator = XSCalculator(tiny_large, None, use_sab=False, use_urr=False)
    return xs, xs.generate_lookups(N)


def test_unionized_lookups(benchmark, with_union):
    xs, sample = with_union
    t, counters = benchmark(xs.run_banked, sample)
    # One union search per particle.
    assert counters.grid_searches == N


def test_per_nuclide_search_lookups(benchmark, without_union):
    xs, sample = without_union
    t, counters = benchmark(xs.run_banked, sample)
    # One search per particle *per nuclide*.
    assert counters.grid_searches > 30 * N


def test_union_reduces_search_work(with_union, without_union):
    xs_u, sample = with_union
    xs_n, _ = without_union
    _, c_u = xs_u.run_banked(sample)
    _, c_n = xs_n.run_banked(sample)
    assert c_u.grid_searches * 30 < c_n.grid_searches


def test_union_memory_cost(tiny_large, union_large):
    """The trade: the index matrix dwarfs the union energies themselves."""
    assert union_large.indices.nbytes > 10 * union_large.energy.nbytes
