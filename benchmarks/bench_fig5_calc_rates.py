"""Fig. 5 bench: calculation rates vs batch size (measured + modelled).

Times event-mode generations at two batch sizes — the measured rate must
rise with batch size (bank amortization) — and asserts the modelled alpha
band of the paper.
"""

import numpy as np
import pytest

from repro.execution.native import alpha
from repro.machine.presets import JLSE_HOST, MIC_7120A
from repro.transport.context import TransportContext
from repro.transport.events import run_generation_event
from repro.transport.tally import GlobalTallies


@pytest.fixture(scope="module")
def ctx(tiny_small, union_small):
    return TransportContext.create(
        tiny_small, pincell=True, union=union_small, master_seed=13
    )


def _source(n, seed=13):
    rng = np.random.default_rng(seed)
    pos = np.column_stack(
        [rng.uniform(-0.3, 0.3, n), rng.uniform(-0.3, 0.3, n),
         rng.uniform(-100, 100, n)]
    )
    return pos, np.full(n, 1.0)


@pytest.mark.parametrize("n", [50, 400])
def test_event_generation_rate(benchmark, ctx, n):
    pos, en = _source(n)

    def run():
        t = GlobalTallies()
        run_generation_event(ctx, pos, en, t, 1.0, 0)
        return t

    tallies = benchmark.pedantic(run, rounds=2, iterations=1)
    assert tallies.n_collisions > 0


def test_rate_increases_with_batch(ctx):
    import time

    rates = {}
    for n in (50, 800):
        pos, en = _source(n)
        t0 = time.perf_counter()
        run_generation_event(ctx, pos, en, GlobalTallies(), 1.0, 0)
        rates[n] = n / (time.perf_counter() - t0)
    assert rates[800] > rates[50]


def test_modelled_alpha_band():
    values = [
        alpha(JLSE_HOST, MIC_7120A, "hm-large", n)
        for n in (10_000, 100_000, 1_000_000)
    ]
    assert all(0.58 < v < 0.68 for v in values)
