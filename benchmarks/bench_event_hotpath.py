"""Event-loop hot-path bench: event and numba-event backends vs baseline.

One full generation per backend — resolved through the transport backend
registry, the same route the simulation driver takes — on the H.M.
full-core configuration recorded in ``baselines/event_hotpath.json``.
Checks, per backend:

* **Physics fingerprint** — the generation's collision/track-length tallies
  and fission-site count must match the recorded baseline bitwise-tightly
  (rel 1e-12), and the ``numba-event`` backend must match the *same*
  fingerprint as ``event`` (the bit-identity contract); a hot-path
  "optimization" that changes the Monte Carlo game is a bug, not a speedup.
* **Regression gate** — generation time is normalized by a fixed
  calibration kernel (searchsorted + interpolate, the shape of the XS
  lookup inner loop) so the gate is portable across machines.  The bench
  fails if the normalized time regresses more than ``gate_factor`` (25%)
  over the recorded baseline for that backend.
* **Recorded speedup** — the committed before/after numbers of the
  compaction + fused-kernel PR must themselves document its >= 2x win.

Timing protocol: every backend gets one explicit **warm-up generation
excluded from the gated region** before the timed rounds.  For
``numba-event`` with numba installed the warm-up absorbs the one-shot JIT
compilation; its cost is reported separately as ``compile_s`` (also
attached to the pytest-benchmark JSON via ``extra_info``), never mixed
into the steady-state generation time the gate sees.  The committed
baseline's ``numba_event`` section records which flavor was measured
(``numba_available``) — in a numba-free environment the backend runs its
NumPy fallback at ``event`` speed plus the energy-sort overhead, and
that is what the honest fallback baseline contains.
"""

import json
from pathlib import Path
from time import perf_counter

import numpy as np
import pytest

from repro.transport.backends import get_backend
from repro.transport.context import TransportContext
from repro.transport.jit import HAVE_NUMBA, jit_status, reset_compile_times
from repro.transport.tally import GlobalTallies

BASELINE = json.loads(
    (Path(__file__).parent / "baselines" / "event_hotpath.json").read_text()
)


def calibration_time() -> float:
    """Fixed-size lookup-shaped kernel; identical to the one used when the
    baseline was recorded, so ratios are comparable across machines."""
    rng = np.random.default_rng(0)
    x = rng.random(200_000)
    grid = np.sort(rng.random(5000))
    best = float("inf")
    for _ in range(3):
        t0 = perf_counter()
        for _ in range(10):
            idx = np.clip(np.searchsorted(grid, x) - 1, 0, grid.size - 2)
            y = 0.5 * grid[idx] + 0.5 * grid[idx + 1]
            float(y.sum())
        best = min(best, perf_counter() - t0)
    return best


def source(n, seed):
    rng = np.random.default_rng(seed)
    pos = np.column_stack(
        [
            rng.uniform(-0.3, 0.3, n),
            rng.uniform(-0.3, 0.3, n),
            rng.uniform(-150, 150, n),
        ]
    )
    return pos, np.full(n, 1.0)


def _measure(backend, tiny_small, union_small, benchmark, warmup_rounds=1):
    """Warm-up (untimed) + timed best-of-rounds generations of ``backend``.

    Returns ``(best_generation_seconds, fingerprint)``.  The warm-up
    generations run the identical workload but never touch the timing —
    they exist to absorb one-shot costs (JIT compilation, plan/view
    caches) outside the gated region.
    """
    cfg = BASELINE["config"]
    pos, en = source(cfg["n_particles"], cfg["source_seed"])
    best = {"gen": float("inf")}

    def run(record=True):
        ctx = TransportContext.create(
            tiny_small,
            pincell=cfg["pincell"],
            union=union_small,
            master_seed=cfg["master_seed"],
        )
        tallies = GlobalTallies()
        t0 = perf_counter()
        bank = backend.run_generation(ctx, pos, en, tallies, 1.0, 0)
        if record:
            best["gen"] = min(best["gen"], perf_counter() - t0)
        best["fingerprint"] = (
            tallies.collision, tallies.track_length, len(bank)
        )
        return bank

    for _ in range(warmup_rounds):
        run(record=False)
    benchmark.pedantic(run, rounds=3, iterations=1)
    return best["gen"], best["fingerprint"]


def _check_fingerprint(fingerprint):
    fp = BASELINE["fingerprint"]
    collision, track_length, n_sites = fingerprint
    assert collision == pytest.approx(fp["collision"], rel=1e-12)
    assert track_length == pytest.approx(fp["track_length"], rel=1e-12)
    assert n_sites == fp["n_sites"]


def test_event_hotpath_generation(tiny_small, union_small, benchmark):
    gen, fingerprint = _measure(
        get_backend("event"), tiny_small, union_small, benchmark
    )
    _check_fingerprint(fingerprint)

    cal = calibration_time()
    ratio = gen / cal
    recorded = BASELINE["event"]
    before = BASELINE["before"]
    after = BASELINE["after"]
    print(
        f"\nevent hot path: recorded ratio {recorded['ratio']:.2f}; "
        f"this run {gen:.3f}s (ratio {ratio:.2f}, calibration {cal:.3f}s)"
    )
    gate = BASELINE["gate_factor"] * recorded["ratio"]
    assert ratio <= gate, (
        f"event-loop generation regressed: normalized ratio {ratio:.2f} "
        f"exceeds gate {gate:.2f} (recorded ratio "
        f"{recorded['ratio']:.2f} + 25%)"
    )
    # The committed before/after history must itself document the >= 2x
    # hot-path win of the compaction + fused-kernel PR.
    assert (
        before["generation_seconds"] / after["generation_seconds"] >= 2.0
    )


def test_numba_event_hotpath_generation(tiny_small, union_small, benchmark):
    reset_compile_times()
    gen, fingerprint = _measure(
        get_backend("numba-event"), tiny_small, union_small, benchmark
    )
    # Compile cost was paid inside the warm-up; report it separately.
    compile_s = jit_status()["compile_s"]
    benchmark.extra_info["compile_s"] = compile_s
    benchmark.extra_info["numba_available"] = HAVE_NUMBA

    # Same fingerprint as the event backend: the bit-identity contract.
    _check_fingerprint(fingerprint)

    cal = calibration_time()
    ratio = gen / cal
    recorded = BASELINE["numba_event"]
    print(
        f"\nnumba-event hot path ({'jit' if HAVE_NUMBA else 'fallback'}): "
        f"recorded ratio {recorded['ratio']:.2f} "
        f"(numba_available={recorded['numba_available']}); this run "
        f"{gen:.3f}s (ratio {ratio:.2f}, compile {compile_s:.3f}s, "
        f"calibration {cal:.3f}s)"
    )
    if HAVE_NUMBA and not recorded["numba_available"]:
        # Compiled run gated against a fallback baseline: it must at least
        # not be slower, and the tentpole target is >= 2x on this path.
        event_ratio = BASELINE["event"]["ratio"]
        assert ratio <= event_ratio / 2.0, (
            f"compiled numba-event ratio {ratio:.2f} misses the 2x target "
            f"vs the event backend's recorded ratio {event_ratio:.2f}"
        )
    else:
        gate = BASELINE["gate_factor"] * recorded["ratio"]
        assert ratio <= gate, (
            f"numba-event generation regressed: normalized ratio "
            f"{ratio:.2f} exceeds gate {gate:.2f} (recorded ratio "
            f"{recorded['ratio']:.2f} + 25%)"
        )
