"""Event-loop hot-path bench: compacted sorted-bank transport vs baseline.

One full event-backend generation — resolved through the transport
backend registry (``get_backend("event")``), the same route the
simulation driver takes — on the H.M. full-core configuration recorded
in ``baselines/event_hotpath.json``.  Three checks:

* **Physics fingerprint** — the generation's collision/track-length tallies
  and fission-site count must match the recorded baseline bitwise-tightly
  (rel 1e-12); a hot-path "optimization" that changes the Monte Carlo game
  is a bug, not a speedup.
* **Regression gate** — generation time is normalized by a fixed
  calibration kernel (searchsorted + interpolate, the shape of the XS
  lookup inner loop) so the gate is portable across machines.  The bench
  fails if the normalized time regresses more than ``gate_factor`` (25%)
  over the recorded post-PR baseline.
* **Recorded speedup** — the committed before/after numbers themselves must
  document the >= 2x win of the compaction + fused-kernel PR.
"""

import json
from pathlib import Path
from time import perf_counter

import numpy as np
import pytest

from repro.transport.backends import get_backend
from repro.transport.context import TransportContext
from repro.transport.tally import GlobalTallies

BASELINE = json.loads(
    (Path(__file__).parent / "baselines" / "event_hotpath.json").read_text()
)


def calibration_time() -> float:
    """Fixed-size lookup-shaped kernel; identical to the one used when the
    baseline was recorded, so ratios are comparable across machines."""
    rng = np.random.default_rng(0)
    x = rng.random(200_000)
    grid = np.sort(rng.random(5000))
    best = float("inf")
    for _ in range(3):
        t0 = perf_counter()
        for _ in range(10):
            idx = np.clip(np.searchsorted(grid, x) - 1, 0, grid.size - 2)
            y = 0.5 * grid[idx] + 0.5 * grid[idx + 1]
            float(y.sum())
        best = min(best, perf_counter() - t0)
    return best


def source(n, seed):
    rng = np.random.default_rng(seed)
    pos = np.column_stack(
        [
            rng.uniform(-0.3, 0.3, n),
            rng.uniform(-0.3, 0.3, n),
            rng.uniform(-150, 150, n),
        ]
    )
    return pos, np.full(n, 1.0)


def test_event_hotpath_generation(tiny_small, union_small, benchmark):
    cfg = BASELINE["config"]
    pos, en = source(cfg["n_particles"], cfg["source_seed"])
    best = {"gen": float("inf")}
    backend = get_backend("event")

    def run():
        ctx = TransportContext.create(
            tiny_small,
            pincell=cfg["pincell"],
            union=union_small,
            master_seed=cfg["master_seed"],
        )
        tallies = GlobalTallies()
        t0 = perf_counter()
        bank = backend.run_generation(ctx, pos, en, tallies, 1.0, 0)
        best["gen"] = min(best["gen"], perf_counter() - t0)
        best["fingerprint"] = (
            tallies.collision, tallies.track_length, len(bank)
        )
        return bank

    benchmark.pedantic(run, rounds=3, iterations=1)

    fp = BASELINE["fingerprint"]
    collision, track_length, n_sites = best["fingerprint"]
    assert collision == pytest.approx(fp["collision"], rel=1e-12)
    assert track_length == pytest.approx(fp["track_length"], rel=1e-12)
    assert n_sites == fp["n_sites"]

    cal = calibration_time()
    ratio = best["gen"] / cal
    before = BASELINE["before"]
    after = BASELINE["after"]
    print(
        f"\nevent hot path: before {before['generation_seconds']:.3f}s "
        f"(ratio {before['ratio']:.2f}) -> after "
        f"{after['generation_seconds']:.3f}s (ratio {after['ratio']:.2f}); "
        f"this run {best['gen']:.3f}s (ratio {ratio:.2f}, "
        f"calibration {cal:.3f}s)"
    )
    gate = BASELINE["gate_factor"] * after["ratio"]
    assert ratio <= gate, (
        f"event-loop generation regressed: normalized ratio {ratio:.2f} "
        f"exceeds gate {gate:.2f} (recorded post-PR ratio "
        f"{after['ratio']:.2f} + 25%)"
    )
    # The committed baseline must itself document the >= 2x hot-path win.
    assert (
        before["generation_seconds"] / after["generation_seconds"] >= 2.0
    )
