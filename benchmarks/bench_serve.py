"""Service bench: throughput vs workers, cache economics, dispatch overhead.

Three questions, mirroring the paper's fixed-cost-amortization analysis at
the job level:

* **Throughput vs worker count** — how does drain time scale as workers are
  added?  (On a single-core CI box the curve is flat; the bench reports it
  rather than asserting a speedup.)
* **Cache hit vs miss service time** — a cold job pays library
  construction; warm jobs must not (the service analogue of Fig. 3's
  offload fixed overhead).
* **Overhead budget** — queue + dispatch bookkeeping (the service loop's
  own CPU work, measured by the ``dispatch_overhead_seconds`` histogram)
  must stay **< 5% of total worker service time** at 4 workers: scheduling
  is supposed to be free next to transport, just as checkpointing is next
  to a batch.
"""

import json

import pytest

from repro.serve import JobSpec, SimulationService

SETTINGS = {
    "n_particles": 64,
    "n_inactive": 0,
    "n_active": 2,
    "mode": "event",
    "pincell": True,
}


def make_specs(n, prefix, *, seed0=1, library_seed=20150525):
    return [
        JobSpec(
            job_id=f"{prefix}{i}",
            library_seed=library_seed,
            settings={**SETTINGS, "seed": seed0 + i},
        )
        for i in range(n)
    ]


def drain(n_workers, specs, *, cache_dir=None):
    service = SimulationService(
        n_workers=n_workers,
        cache_dir=str(cache_dir) if cache_dir else None,
        capacity=max(16, len(specs)),
    )
    results = service.run(specs)
    service.shutdown()
    assert all(r.status == "done" for r in results)
    return service, results


@pytest.mark.parametrize("n_workers", [1, 2, 4])
def test_throughput_vs_worker_count(n_workers, tmp_path, benchmark):
    """Wall time to drain a fixed batch at 1/2/4 workers."""
    specs = make_specs(4, f"tp{n_workers}-")

    def run():
        return drain(n_workers, specs, cache_dir=tmp_path / "cache")

    service, results = benchmark.pedantic(run, rounds=1, iterations=1)
    total_service = sum(r.service_seconds for r in results)
    print(
        f"\n{n_workers} workers: {len(results)} jobs, "
        f"{total_service:.2f}s total service time, "
        f"{len(results) / total_service:.2f} jobs/s of worker time"
    )


def test_cache_hit_vs_miss_service_time(tmp_path):
    """Warm jobs must skip the library build entirely."""
    specs = make_specs(3, "c")
    service, results = drain(1, specs, cache_dir=tmp_path / "cache")
    cold, warm = results[0], results[1:]
    assert cold.library_source == "built"
    assert cold.build_seconds > 0
    for r in warm:
        assert r.library_source == "memory"
        assert r.build_seconds == 0.0
    doc = json.loads(service.metrics.to_json())
    assert doc["metrics"]["library_builds"]["value"] == 1
    print(
        f"\ncold (build+run): {cold.service_seconds * 1e3:.0f} ms "
        f"(build {cold.build_seconds * 1e3:.0f} ms), "
        f"warm mean: "
        f"{1e3 * sum(r.service_seconds for r in warm) / len(warm):.0f} ms"
    )


class TestOverheadBudget:
    def test_dispatch_overhead_under_5pct_at_4_workers(self, tmp_path):
        """Queue + dispatch bookkeeping < 5% of worker service time."""
        specs = make_specs(8, "ov")
        service, results = drain(4, specs, cache_dir=tmp_path / "cache")
        doc = json.loads(service.metrics.to_json())
        overhead = doc["metrics"]["dispatch_overhead_seconds"]["sum"]
        service_time = doc["metrics"]["service_seconds"]["sum"]
        assert service_time > 0
        fraction = overhead / service_time
        print(
            f"\nqueue+dispatch overhead: {overhead * 1e3:.1f} ms over "
            f"{service_time:.2f}s of service time "
            f"({100 * fraction:.2f}% — budget 5%)"
        )
        assert fraction < 0.05
