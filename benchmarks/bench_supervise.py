"""Supervision overhead bench: watching a run must cost < 5% of it.

The supervisor observes each batch through ``Simulation``'s ``on_batch``
hook — an EMA rate update, a heartbeat, and a deadline check per batch.
That is the whole in-process cost of supervision, so it is measured where
it accrues: every callback invocation inside a real supervised run is
timed and summed, then compared against the run's own transport profile
(the same in-run budget pattern as ``bench_resilience``, immune to the
wall-clock noise of comparing two separate runs).  The budget is 5%; the
measured cost is orders of magnitude below it.  A micro-bench documents
the per-batch cost in absolute terms.
"""

from time import perf_counter

import pytest

from repro.supervise import SupervisionPolicy, Supervisor
from repro.transport import Settings, Simulation


def _settings():
    return Settings(
        n_particles=300,
        n_inactive=1,
        n_active=4,
        pincell=True,
        mode="event",
        seed=7,
    )


def test_supervision_overhead_under_5pct_of_batch_time(tiny_small):
    """Acceptance: full supervision (health + deadline) on every batch
    costs < 5% of the transport time it watches — and changes nothing
    about the physics."""
    supervisor = Supervisor(
        n_ranks=1, policy=SupervisionPolicy(batch_deadline_s=3600.0)
    )
    inner = supervisor.batch_callback()
    spent = {"seconds": 0.0, "calls": 0}

    def on_batch(batch, seconds, n_particles):
        t0 = perf_counter()
        inner(batch, seconds, n_particles)
        spent["seconds"] += perf_counter() - t0
        spent["calls"] += 1

    supervised = Simulation(tiny_small, _settings()).run(on_batch=on_batch)
    plain = Simulation(tiny_small, _settings()).run()

    transport = supervised.profile.routines["transport_generation"]
    fraction = spent["seconds"] / transport.total_seconds
    print(
        f"\nsupervision overhead: {spent['seconds'] * 1e6:.1f} us across "
        f"{spent['calls']} batches vs {transport.total_seconds * 1e3:.1f} ms "
        f"of transport ({100 * fraction:.4f}% of batch wall time)"
    )
    assert spent["calls"] == 5  # 1 inactive + 4 active
    assert supervisor.report()["batches"] == 5
    # The observer sees timing only — identical trajectories, bitwise.
    assert supervised.statistics.k_collision == plain.statistics.k_collision
    assert supervised.statistics.entropy == plain.statistics.entropy
    assert fraction < 0.05


def test_batch_callback_microcost(benchmark):
    """Per-batch absolute cost: one observation through the callback
    (rate EMA + heartbeat + deadline check) is microseconds — invisible
    next to any real transport batch."""
    supervisor = Supervisor(
        n_ranks=1, policy=SupervisionPolicy(batch_deadline_s=3600.0)
    )
    on_batch = supervisor.batch_callback()
    counter = iter(range(10_000_000))

    def observe():
        on_batch(next(counter), 0.01, 1000)

    benchmark(observe)
    report = supervisor.report()
    assert report["health"][0]["status"] == "healthy"
    assert report["batches"] > 0
    assert benchmark.stats["mean"] < 1e-3  # well under a millisecond
    print(
        f"\nbatch callback: {benchmark.stats['mean'] * 1e6:.2f} us/observation"
    )


def test_deadline_check_is_flat_over_many_batches(tiny_small):
    """The supervisor's bookkeeping is O(1) per batch — a long run pays
    the same per-batch cost as a short one."""
    supervisor = Supervisor(
        n_ranks=1, policy=SupervisionPolicy(batch_deadline_s=3600.0)
    )
    on_batch = supervisor.batch_callback()
    for batch in range(5_000):
        on_batch(batch, 0.01, 1000)
    t0 = perf_counter()
    for batch in range(5_000, 10_000):
        on_batch(batch, 0.01, 1000)
    second_half = perf_counter() - t0
    per_batch = second_half / 5_000
    print(f"\nsteady-state callback cost: {per_batch * 1e6:.2f} us/batch")
    assert per_batch < 1e-4
    assert supervisor.report()["batches"] == 10_000


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v"]))
