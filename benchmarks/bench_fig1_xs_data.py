"""Fig. 1 bench: regenerating U-238's cross-section data.

Times the resonance-reconstruction pipeline (ladder -> Doppler-broadened
pointwise tables) that produces the paper's Fig. 1 curve, and asserts the
curve's structural regimes.
"""

from repro.data.library import LibraryConfig, build_nuclide
from repro.experiments import run_experiment
from repro.types import Reaction


def test_build_u238(benchmark):
    config = LibraryConfig.tiny()
    nuclide, _, _ = benchmark(build_nuclide, "U238", config)
    total = nuclide.xs[Reaction.TOTAL]
    assert total.max() > 100 * total.min()


def test_fig1_experiment(benchmark):
    result = benchmark.pedantic(
        run_experiment, args=("fig1", "quick"), rounds=1, iterations=1
    )
    by_regime = {r["regime"]: r["sigma_t [b]"] for r in result.rows}
    assert by_regime["resolved resonance peak"] > by_regime["fast (2 MeV)"]
