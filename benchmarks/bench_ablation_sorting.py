"""Ablation 8: energy-sorted vs unsorted banks in the lookup kernel.

Production event-based codes sort their banks by energy (or material)
before the lookup stage: neighbouring lanes then touch neighbouring grid
rows, turning scattered gathers into near-unit-stride access.  The same
effect is measurable in NumPy — ``searchsorted`` and fancy indexing both
run faster on sorted keys — making this a rare hardware-locality effect the
Python analogue *can* observe directly.
"""

import numpy as np
import pytest

from repro.proxy.xsbench import XSBench

N = 20_000


@pytest.fixture(scope="module")
def setup(tiny_large, union_large):
    xs = XSBench(tiny_large, union_large)
    sample = xs.generate_lookups(N)
    # Sort each material group's energies (what a sorting event loop does).
    sorted_sample = type(sample)(
        material_ids=sample.material_ids.copy(),
        energies=sample.energies.copy(),
    )
    for mid in np.unique(sorted_sample.material_ids):
        mask = sorted_sample.material_ids == mid
        sorted_sample.energies[mask] = np.sort(sorted_sample.energies[mask])
    return xs, sample, sorted_sample


def test_unsorted_bank(benchmark, setup):
    xs, sample, _ = setup
    t, c = benchmark(xs.run_banked, sample)
    assert c.lookups == N


def test_sorted_bank(benchmark, setup):
    xs, _, sorted_sample = setup
    t, c = benchmark(xs.run_banked, sorted_sample)
    assert c.lookups == N


def test_sort_cost_itself(benchmark, setup):
    """The sort is the price of locality; it must stay far below the
    lookup cost it saves."""
    xs, sample, _ = setup

    def sort():
        return np.sort(sample.energies)

    benchmark(sort)


def test_same_statistics(setup):
    """Sorting permutes the bank; aggregate totals are identical."""
    xs, sample, sorted_sample = setup
    a = xs.calculator.banked(xs.materials[0],
                             sample.energies[sample.material_ids == 0])
    b = xs.calculator.banked(
        xs.materials[0],
        sorted_sample.energies[sorted_sample.material_ids == 0],
    )
    assert np.sum(a["total"]) == pytest.approx(np.sum(b["total"]), rel=1e-12)
