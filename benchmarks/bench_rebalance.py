"""Rebalance bench: static equal split vs work-stealing on an imbalanced
fleet (ISSUE 9 satellite 5).

Two halves:

* A deterministic modelled comparison on the ``mixed-gpu-node`` fleet
  (A100 + MI250X + Max 1550 + EPYC host — four devices, ~6x rate spread):
  pricing the :class:`~repro.execution.rebalance.WorkStealingRebalancer`'s
  actual ``plan()`` output through the per-device cost models must beat
  the equal split by a wide margin, and the converged plan must equal the
  rate-proportional :func:`~repro.execution.loadbalance.fleet_split`.

* A planning-cost regression gate (pattern from ``bench_resilience``):
  ``plan()`` is pure-Python bookkeeping that runs at every batch barrier,
  so its cost is pinned against ``baselines/rebalance.json``, normalized
  by a Python-shaped calibration kernel so the ratio is portable across
  CI hosts.  The bench fails if the normalized ratio regresses more than
  ``gate_factor`` (25%) over the committed baseline.
"""

import json
from pathlib import Path
from time import perf_counter

from repro.cluster.topology import fleet_by_name
from repro.execution.rebalance import WorkStealingRebalancer
from repro.execution.symmetric import NODE_SYNC_S, FleetNode

N_PARTICLES = 1_000_000
PLAN_RANKS = 8

BASELINE = json.loads(
    (Path(__file__).parent / "baselines" / "rebalance.json").read_text()
)


def calibration_time() -> float:
    """Python-shaped kernel (list build + sort + reduce), identical to the
    one used when the baseline was recorded, so ratios are comparable
    across machines."""
    best = float("inf")
    for _ in range(3):
        t0 = perf_counter()
        for _ in range(200):
            xs = [(i * 2654435761) % 1000003 for i in range(500)]
            xs.sort()
            sum(xs)
        best = min(best, perf_counter() - t0)
    return best


def _plan_counts(node: FleetNode, n: int) -> tuple[list[int], dict]:
    """Per-rank counts from the rebalancer's converged plan (true modelled
    rates fed in, as the health monitor's EMA would after warm-up)."""
    rebal = WorkStealingRebalancer()
    rates = node.device_rates(n)
    plan = rebal.plan(0, n, list(range(node.n_ranks)), rates)
    counts = [0] * node.n_ranks
    for rank, sl in plan:
        counts[rank] += sl.stop - sl.start
    return counts, rebal.summary()


def _batch_time(node: FleetNode, counts: list[int]) -> float:
    times = [
        cost.batch_time(count)
        for cost, count in zip(node._costs, counts)
        if count > 0
    ]
    return max(times) + NODE_SYNC_S


def test_work_stealing_beats_equal_split_on_imbalanced_fleet():
    """The converged steal plan, priced through the device cost models,
    must beat the static equal split on a >= 3-device imbalanced fleet."""
    node = FleetNode(fleet_by_name("mixed-gpu-node"), "hm-large")
    assert node.n_ranks >= 3
    counts, summary = _plan_counts(node, N_PARTICLES)
    assert sum(counts) == N_PARTICLES
    t_equal = node.batch_time(N_PARTICLES, "equal")
    t_ws = _batch_time(node, counts)
    speedup = t_equal / t_ws
    print(
        f"\nmixed-gpu-node, {N_PARTICLES:,} particles: equal "
        f"{N_PARTICLES / t_equal:,.0f} n/s, work-stealing "
        f"{N_PARTICLES / t_ws:,.0f} n/s ({speedup:.2f}x); "
        f"{summary['particles_moved']:,} particles stolen in "
        f"{summary['steals']} moves"
    )
    assert speedup > 2.0
    # Converged plan == the rate-proportional split (Eq. 3, N-way).
    assert counts == node.fleet_counts(N_PARTICLES, "rate")
    # Steals flow off the slow devices, and the host (slowest, last
    # rank) is always a donor.
    assert summary["particles_moved"] > 0
    donors = {ev.split("->")[0] for ev in summary["pairs"]}
    assert str(node.n_ranks - 1) in donors


def test_equal_rates_plan_is_noop():
    """With equal measured rates the plan is the equal split — no steal
    traffic, so a balanced fleet pays nothing for the rebalancer."""
    rebal = WorkStealingRebalancer()
    plan = rebal.plan(0, N_PARTICLES, list(range(4)), [5.0] * 4)
    assert [sl.stop - sl.start for _, sl in plan] == [250_000] * 4
    assert rebal.events == []


def _plan_time() -> float:
    """Best-of timing of the pure-Python per-barrier planning cost."""
    alive = list(range(PLAN_RANKS))
    rates = [1.0 + 0.35 * ((i * 7) % PLAN_RANKS) for i in range(PLAN_RANKS)]
    best = float("inf")
    for _ in range(5):
        t0 = perf_counter()
        for _ in range(200):
            WorkStealingRebalancer().plan(0, N_PARTICLES, alive, rates)
        best = min(best, perf_counter() - t0)
    return best


def test_plan_cost_regression_gate():
    """Per-barrier planning cost, normalized by the calibration kernel,
    must not regress more than 25% over the committed baseline."""
    plan_s = _plan_time()
    cal = calibration_time()
    ratio = plan_s / cal
    recorded = BASELINE["baseline"]
    print(
        f"\nrebalance plan: {plan_s / 200 * 1e6:.1f} us/plan over "
        f"{PLAN_RANKS} ranks (ratio {ratio:.3f}, calibration "
        f"{cal * 1e3:.2f} ms); recorded ratio {recorded['ratio']:.3f}"
    )
    gate = BASELINE["gate_factor"] * recorded["ratio"]
    assert ratio <= gate, (
        f"rebalance plan cost regressed: normalized ratio {ratio:.3f} "
        f"exceeds gate {gate:.3f} (recorded ratio "
        f"{recorded['ratio']:.3f} + 25%)"
    )
