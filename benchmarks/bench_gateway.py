"""Gateway bench: open-loop load through the front tier, with a gate.

Two questions about the gateway's own cost — the tier is pure
orchestration (admission, hashing, routing, caching), so its overhead
must vanish next to transport, exactly as dispatch does inside the
service and checkpointing does inside a run:

* **Open-loop throughput** — 1000+ jobs streamed through a 4-shard
  gateway over :class:`~repro.gateway.SyntheticService` workers (the
  protocol-compatible stand-in that fabricates results without
  transport), so the wall time *is* the orchestration cost: admission,
  cache lookups, ring hashing, pump hops, event fan-in.  A regression
  gate (pattern from ``bench_resilience``) pins the drain time against
  ``baselines/gateway.json``, normalized by a hash-shaped calibration
  kernel (SHA-256 over spec-sized JSON documents — the same CPU shape
  as cache keys and ring points) so the gate is portable across hosts.
* **Overhead budget on real transport** — through real workers on a
  tiny pin-cell job, the tier's ``dispatch_overhead_seconds`` must stay
  **< 5% of worker service time** (the acceptance bound: the gateway is
  supposed to be free next to the physics).

Per-job sojourn (submit -> done) is folded into a fixed-bucket
:class:`~repro.serve.metrics.Histogram` and reported as p50/p99 — the
open-loop analogue of the service bench's jobs/s line.
"""

import hashlib
import json
import threading
from pathlib import Path
from time import perf_counter

from repro.gateway import Gateway, SyntheticService
from repro.serve import JobSpec
from repro.serve.metrics import Histogram

SETTINGS = {
    "n_particles": 24,
    "n_inactive": 0,
    "n_active": 2,
    "mode": "event",
    "pincell": True,
}

N_JOBS = 1024
N_SHARDS = 4
#: Distinct physics identities: enough that the result cache and the
#: in-flight coalescer both see realistic (not degenerate) traffic.
N_DISTINCT = 256

BASELINE = json.loads(
    (Path(__file__).parent / "baselines" / "gateway.json").read_text()
)


def make_specs(n, prefix, *, distinct=N_DISTINCT):
    return [
        JobSpec(
            job_id=f"{prefix}{i:04d}",
            settings={**SETTINGS, "seed": i % distinct},
        )
        for i in range(n)
    ]


def calibration_time() -> float:
    """Hash-shaped kernel: SHA-256 over N_JOBS spec-sized JSON docs, the
    dominant CPU shape of the gateway's cache keys and ring points.
    Identical to the kernel used when the baseline was recorded."""
    docs = [
        json.dumps(
            {"settings": {**SETTINGS, "seed": i}, "job_id": f"cal{i}"},
            sort_keys=True,
        ).encode()
        for i in range(N_JOBS)
    ]
    best = float("inf")
    for _ in range(3):
        t0 = perf_counter()
        for _ in range(20):
            for doc in docs:
                hashlib.sha256(doc).hexdigest()
        best = min(best, perf_counter() - t0)
    return best


def open_loop_drain(specs):
    """Run every spec through a synthetic gateway; returns (seconds,
    sojourn histogram, gateway)."""
    gw = Gateway(
        N_SHARDS,
        workers_per_shard=2,
        capacity=N_JOBS,
        max_class_share=1.0,
        service_factory=SyntheticService,
    )
    sojourn = Histogram("sojourn_seconds", threading.Lock())
    submitted: dict[str, float] = {}

    import asyncio

    async def drive():
        async for event in gw.stream(specs, deadline_s=120):
            if event["kind"] != "done":
                continue
            t0 = submitted.get(event["job_id"])
            if t0 is not None:
                sojourn.observe(perf_counter() - t0)

    # Open loop: stamp submit times as the stream feeder admits them.
    original_submit = gw.submit

    def stamped_submit(spec):
        submitted[spec.job_id] = perf_counter()
        return original_submit(spec)

    gw.submit = stamped_submit
    t0 = perf_counter()
    with gw:
        asyncio.run(drive())
    seconds = perf_counter() - t0
    assert len(gw.results) == len(specs)
    assert all(r.status == "done" for r in gw.results.values())
    return seconds, sojourn, gw


def test_open_loop_throughput_regression_gate():
    """1k+ jobs through 4 synthetic shards: the normalized drain time
    must not regress more than 25% over the committed baseline."""
    seconds = float("inf")
    for round_no in range(3):
        t, sojourn, gw = open_loop_drain(
            make_specs(N_JOBS, f"ol{round_no}-")
        )
        seconds = min(seconds, t)

    cal = calibration_time()
    ratio = seconds / cal
    recorded = BASELINE["baseline"]
    counters = gw.counters
    print(
        f"\ngateway open loop: {N_JOBS} jobs in {seconds:.2f}s "
        f"({N_JOBS / seconds:.0f} jobs/s; {counters['cache_hits']} cache "
        f"hits, {counters['coalesced']} coalesced), sojourn p50 "
        f"{sojourn.quantile(0.5) * 1e3:.0f} ms / p99 "
        f"{sojourn.quantile(0.99) * 1e3:.0f} ms; ratio {ratio:.2f} vs "
        f"recorded {recorded['ratio']:.2f} (calibration {cal * 1e3:.0f} ms)"
    )
    gate = BASELINE["gate_factor"] * recorded["ratio"]
    assert ratio <= gate, (
        f"gateway drain regressed: normalized ratio {ratio:.2f} exceeds "
        f"gate {gate:.2f} (recorded ratio {recorded['ratio']:.2f} + 25%)"
    )


def test_dispatch_overhead_under_5pct_on_real_transport(tmp_path):
    """The acceptance bound: gateway dispatch < 5% of service time."""
    specs = [
        JobSpec(job_id=f"real{i}", settings={**SETTINGS, "seed": i})
        for i in range(2)
    ]
    gw = Gateway(
        1, workers_per_shard=1, cache_dir=str(tmp_path / "libs")
    )
    with gw:
        results = gw.run(specs, deadline_s=90)
    assert all(r.status == "done" for r in results)
    agg = gw.metrics_summary()["aggregate"]
    fraction = agg["dispatch_overhead_fraction"]
    print(
        f"\ngateway dispatch overhead: "
        f"{agg['dispatch_overhead_seconds'] * 1e3:.1f} ms over "
        f"{agg['service_seconds']:.2f}s of service time "
        f"({100 * fraction:.2f}% — budget 5%)"
    )
    assert agg["service_seconds"] > 0
    assert fraction < 0.05
