"""Table I bench: the three distance-sampling implementations.

Times Naive / Optimized-1 / Optimized-2 at a scaled workload; the paper's
ordering (Naive slowest by far; Optimized-2 fastest or tied) must hold in
the measured Python implementations as well.
"""

import numpy as np
import pytest

from repro.physics.distance import (
    sample_distance_naive,
    sample_distance_optimized1,
    sample_distance_optimized2,
)

N = 4_096
ITERS = 4


@pytest.fixture(scope="module")
def sigma():
    return np.random.default_rng(0).uniform(0.2, 3.0, N)


def test_naive(benchmark, sigma):
    # One iteration (the naive Python loop is the slow column by design).
    d = benchmark.pedantic(
        sample_distance_naive, args=(sigma, 1), kwargs={"seed": 1},
        rounds=2, iterations=1,
    )
    assert np.all(d > 0)


def test_optimized1(benchmark, sigma):
    d = benchmark(sample_distance_optimized1, sigma, ITERS, nstreams=4, seed=1)
    assert np.all(d > 0)


def test_optimized2(benchmark, sigma):
    d = benchmark(sample_distance_optimized2, sigma, ITERS, nstreams=4, seed=1)
    assert np.all(d > 0)


def test_optimized2_f32(benchmark, sigma):
    """The single-precision variant (Algorithm 4's _ps intrinsics)."""
    d = benchmark(
        sample_distance_optimized2, sigma, ITERS, nstreams=4, seed=1,
        use_f32=True,
    )
    assert np.all(d > 0)


def test_table_ordering(sigma):
    """Naive >> optimized, per sample."""
    import time

    t0 = time.perf_counter()
    sample_distance_naive(sigma, 1, seed=1)
    t_naive = (time.perf_counter() - t0) / 1
    t0 = time.perf_counter()
    sample_distance_optimized1(sigma, ITERS, nstreams=4, seed=1)
    t_opt = (time.perf_counter() - t0) / ITERS
    assert t_naive > 5 * t_opt
