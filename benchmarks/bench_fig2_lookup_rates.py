"""Fig. 2 bench: cross-section lookup rates, banking vs history.

Times the two executable lookup kernels on the H.M. Large library (tiny
fidelity) and checks the headline: the banked (vectorized) kernel is at
least several times faster than the scalar history path, and both compute
identical cross sections.
"""

import pytest

from repro.proxy.xsbench import XSBench

N_BANK = 3_000
N_HISTORY = 300


@pytest.fixture(scope="module")
def bench_setup(tiny_large, union_large):
    xs = XSBench(tiny_large, union_large)
    return xs, xs.generate_lookups(N_BANK), xs.generate_lookups(N_HISTORY)


def test_history_lookups(benchmark, bench_setup):
    xs, _, small_sample = bench_setup
    t, counters = benchmark(xs.run_history, small_sample)
    assert counters.lookups == N_HISTORY


def test_banked_lookups(benchmark, bench_setup):
    xs, sample, _ = bench_setup
    t, counters = benchmark(xs.run_banked, sample)
    assert counters.lookups == N_BANK


def test_banked_beats_history(bench_setup):
    """The measured Python analogue of the paper's ~10x claim."""
    xs, sample, small_sample = bench_setup
    t_hist, _ = xs.run_history(small_sample)
    t_bank, _ = xs.run_banked(sample)
    rate_hist = N_HISTORY / t_hist
    rate_bank = N_BANK / t_bank
    assert rate_bank > 5 * rate_hist


def test_kernels_identical(bench_setup):
    xs, _, small_sample = bench_setup
    assert xs.verify(small_sample) < 1e-12
