"""Ablation 7: surface tracking vs Woodcock delta-tracking.

Delta tracking removes the per-flight geometry search entirely (one
majorant gather instead), at the cost of virtual collisions — the trade
that makes it the preferred scheme for SIMD/GPU transport (the paper's
related work [6]).  Both event-style loops are timed on the same workload
and their k estimates must agree statistically.
"""

import numpy as np
import pytest

from repro.transport.context import TransportContext
from repro.transport.delta import MajorantXS, run_generation_delta
from repro.transport.events import run_generation_event
from repro.transport.tally import GlobalTallies

N = 250


@pytest.fixture(scope="module")
def setup(tiny_small, union_small):
    ctx = TransportContext.create(
        tiny_small, pincell=True, union=union_small, master_seed=3
    )
    majorant = MajorantXS(ctx)
    rng = np.random.default_rng(1)
    pos = np.column_stack(
        [rng.uniform(-0.3, 0.3, N), rng.uniform(-0.3, 0.3, N),
         rng.uniform(-150, 150, N)]
    )
    return ctx, majorant, pos, np.full(N, 2.0)


def test_surface_tracking(benchmark, setup):
    ctx, _, pos, en = setup

    def run():
        t = GlobalTallies()
        run_generation_event(ctx, pos, en, t, 1.0, 0)
        return t

    t = benchmark.pedantic(run, rounds=2, iterations=1)
    assert t.n_collisions > 0


def test_delta_tracking(benchmark, setup):
    ctx, majorant, pos, en = setup

    def run():
        t = GlobalTallies()
        run_generation_delta(ctx, pos, en, t, 1.0, 0, majorant=majorant)
        return t

    t = benchmark.pedantic(run, rounds=2, iterations=1)
    assert t.n_collisions > 0


def test_majorant_build(benchmark, setup):
    ctx, _, _, _ = setup
    maj = benchmark(MajorantXS, ctx)
    assert np.all(maj.sigma > 0)


def test_same_physics(setup):
    """The two trackers estimate the same k (loose statistical band for a
    single generation)."""
    ctx, majorant, pos, en = setup
    ts, td = GlobalTallies(), GlobalTallies()
    run_generation_event(ctx, pos, en, ts, 1.0, 0)
    run_generation_delta(ctx, pos, en, td, 1.0, 10_000, majorant=majorant)
    assert td.k_collision() == pytest.approx(ts.k_collision(), rel=0.2)


def test_virtual_collision_overhead(setup):
    """Delta tracking's flights exceed its real collisions — the rejection
    overhead that large banks amortize."""
    ctx, majorant, pos, en = setup
    before_f, before_c = ctx.counters.flights, ctx.counters.collisions
    run_generation_delta(
        ctx, pos, en, GlobalTallies(), 1.0, 20_000, majorant=majorant
    )
    flights = ctx.counters.flights - before_f
    collisions = ctx.counters.collisions - before_c
    assert flights > 1.2 * collisions
