#!/usr/bin/env python
"""Import-cycle lint for the stage-kernel layering contract.

Two rules, enforced over the AST (``TYPE_CHECKING``-guarded imports are
annotation-only and exempt):

1. **The kernel layer imports nothing above it.**  ``transport/stages.py``
   holds the physics shared by every transport schedule; it may import
   physics, data, RNG, and its transport siblings, but never the layers
   that *drive* it (``execution``, ``serve``, ``cluster``, ``simd``,
   ``machine``, ``profiling``, ``resilience``).  An upward import here
   would re-create the cycle the stage-kernel refactor removed.

2. **Execution models know no transport.**  The scheduler/cost-model files
   (``execution/native.py``, ``offload.py``, ``symmetric.py``,
   ``trace.py``) receive their backend through an
   ``ExecutionContext``; a direct ``repro.transport`` import would couple
   a model to one schedule.  (``execution/context.py`` is the sanctioned
   adapter and is exempt.)

3. **Supervision is a leaf.**  ``repro.supervise`` is pure bookkeeping
   that the supervised layers call *into*; an import of transport,
   execution, serve, or cluster internals from it would invert that
   direction (and instantly create a cycle, since all four import it).

4. **Resilience stays below execution.**  ``repro.resilience`` primitives
   (fault plans, retry policies, checkpoints) are consumed *by* the
   execution/cluster layers; importing an execution model from resilience
   would let recovery policy reach into scheduling.

5. **Scenarios sit on top.**  ``repro.scenarios`` is the declarative
   front door — it lowers documents *onto* transport and serve, and only
   the CLI may import it.  A core module importing scenarios would turn
   the one-way compilation pipeline (document → Settings/JobSpec) into a
   cycle and couple physics to the document schema.

6. **The gateway is a roof over serve/supervise.**  ``repro.gateway``
   orchestrates node-local services; only the CLI may import it (a serve
   or supervise module importing the tier that drives it would be an
   instant cycle), and the gateway itself may touch only the job/service
   surface — never transport, execution, cluster, simd, or machine
   internals, which it must reach exclusively through ``repro.serve``.

7. **The compiled-kernel tier sits beside the stages.**  Every module of
   ``transport/jit/`` is kernel-layer code like ``stages.py`` — physics,
   data, RNG, and transport siblings only, never the driving layers.  The
   jit tier is swapped in *by* backends; an upward import from it would
   couple the compiled kernels to a scheduler and re-create the cycle
   rule 1 exists to prevent.

8. **Chaos is a roof beside the CLI.**  ``repro.chaos`` kills and
   restarts the tiers below it (gateway, serve, scenarios, resilience,
   supervise) — so it, uniquely, may import the gateway and scenario
   roofs, but only the CLI may import *it*, and like the gateway it
   must never reach the physics or hardware layers (transport,
   execution, cluster, simd, machine) directly.

Run from the repo root::

    python tools/check_layering.py

Exits non-zero listing every violation as ``path:line: message``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

#: Layers above transport: forbidden anywhere in the kernel layer.
UPWARD_LAYERS = (
    "repro.execution",
    "repro.serve",
    "repro.cluster",
    "repro.simd",
    "repro.machine",
    "repro.profiling",
    "repro.resilience",
)

STAGE_FILES = {
    SRC / "repro" / "transport" / "stages.py": "repro.transport",
}

#: Rule 7: the compiled-kernel tier is kernel-layer code — same upward
#: import ban as the stages, applied to every module in the package.
JIT_DIR = SRC / "repro" / "transport" / "jit"

EXECUTION_MODEL_FILES = {
    SRC / "repro" / "execution" / name: "repro.execution"
    for name in (
        "native.py",
        "offload.py",
        "rebalance.py",
        "symmetric.py",
        "trace.py",
    )
}

#: The supervision package may import nothing from the layers it watches.
SUPERVISE_DIR = SRC / "repro" / "supervise"
SUPERVISE_FORBIDDEN = (
    "repro.transport",
    "repro.execution",
    "repro.serve",
    "repro.cluster",
)

#: Resilience primitives sit below the execution models that consume them.
RESILIENCE_DIR = SRC / "repro" / "resilience"
RESILIENCE_FORBIDDEN = ("repro.execution",)

#: The chaos harness (rule 8) is a roof beside the CLI: it may import
#: the other roofs (it kills and recovers them), only the CLI may
#: import it, and it never touches the physics/hardware layers.
CHAOS_DIR = SRC / "repro" / "chaos"
CHAOS_IMPORTERS = (SRC / "repro" / "cli.py",)
CHAOS_FORBIDDEN = (
    "repro.transport",
    "repro.execution",
    "repro.cluster",
    "repro.simd",
    "repro.machine",
)

#: The scenario layer is a roof, not a floor: only the CLI (and the
#: chaos harness, rule 8) imports it.
SCENARIOS_DIR = SRC / "repro" / "scenarios"
SCENARIOS_IMPORTERS = (
    SRC / "repro" / "cli.py",
    *sorted(CHAOS_DIR.glob("*.py")),
)

#: The gateway tier is likewise a roof (rule 6): nothing below it may
#: import it (the CLI and the chaos harness excepted), and it may only
#: reach the layers beneath it through the serve/supervise surface —
#: never the physics or hardware layers.
GATEWAY_DIR = SRC / "repro" / "gateway"
GATEWAY_IMPORTERS = (
    SRC / "repro" / "cli.py",
    *sorted(CHAOS_DIR.glob("*.py")),
)
GATEWAY_FORBIDDEN = (
    "repro.scenarios",
    "repro.transport",
    "repro.execution",
    "repro.cluster",
    "repro.simd",
    "repro.machine",
)


def _rel(path: Path) -> Path:
    """Repo-relative for readable messages; absolute paths from outside
    the repo (the lint's own tests run on tmp fixtures) pass through."""
    try:
        return path.relative_to(REPO)
    except ValueError:
        return path


def _is_type_checking(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def runtime_imports(tree: ast.Module, package: str):
    """Yield ``(lineno, absolute_module)`` for every runtime import.

    Relative imports are resolved against ``package`` (the importing
    module's package); imports inside ``if TYPE_CHECKING:`` bodies are
    skipped — they never execute.
    """
    guarded: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.If) and _is_type_checking(node.test):
            for stmt in node.body:
                for sub in ast.walk(stmt):
                    guarded.add(id(sub))
    for node in ast.walk(tree):
        if id(node) in guarded:
            continue
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node.lineno, alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                parts = package.split(".")
                base = parts[: len(parts) - (node.level - 1)]
                mod = ".".join(base + ([node.module] if node.module else []))
            else:
                mod = node.module or ""
            yield node.lineno, mod


def _in_layer(module: str, layer: str) -> bool:
    return module == layer or module.startswith(layer + ".")


def check() -> list[str]:
    errors: list[str] = []
    for path, package in STAGE_FILES.items():
        tree = ast.parse(path.read_text(), filename=str(path))
        for lineno, mod in runtime_imports(tree, package):
            for layer in UPWARD_LAYERS:
                if _in_layer(mod, layer):
                    errors.append(
                        f"{_rel(path)}:{lineno}: kernel layer "
                        f"imports upward layer {mod!r}"
                    )
    for path, package in EXECUTION_MODEL_FILES.items():
        tree = ast.parse(path.read_text(), filename=str(path))
        for lineno, mod in runtime_imports(tree, package):
            if _in_layer(mod, "repro.transport"):
                errors.append(
                    f"{_rel(path)}:{lineno}: execution model "
                    f"imports {mod!r} directly (route through "
                    f"ExecutionContext)"
                )
    errors.extend(_check_package(
        JIT_DIR, "repro.transport.jit", UPWARD_LAYERS,
        "kernel layer imports upward layer",
    ))
    errors.extend(_check_package(
        SUPERVISE_DIR, "repro.supervise", SUPERVISE_FORBIDDEN,
        "supervision layer imports supervised layer",
    ))
    errors.extend(_check_package(
        RESILIENCE_DIR, "repro.resilience", RESILIENCE_FORBIDDEN,
        "resilience primitive imports execution model",
    ))
    errors.extend(_check_scenarios_roof())
    errors.extend(_check_roof(
        GATEWAY_DIR, "repro.gateway", GATEWAY_IMPORTERS,
        "core module imports the gateway roof layer",
    ))
    errors.extend(_check_package(
        GATEWAY_DIR, "repro.gateway", GATEWAY_FORBIDDEN,
        "gateway tier reaches below the serve surface into",
    ))
    errors.extend(_check_roof(
        CHAOS_DIR, "repro.chaos", CHAOS_IMPORTERS,
        "core module imports the chaos roof layer",
    ))
    errors.extend(_check_package(
        CHAOS_DIR, "repro.chaos", CHAOS_FORBIDDEN,
        "chaos harness reaches below the service surface into",
    ))
    return errors


def _check_scenarios_roof() -> list[str]:
    """Rule 5: no core module imports ``repro.scenarios`` (CLI excepted)."""
    return _check_roof(
        SCENARIOS_DIR, "repro.scenarios", SCENARIOS_IMPORTERS,
        "core module imports the scenario roof layer",
    )


def _check_roof(
    roof_dir: Path,
    roof_package: str,
    allowed_importers: tuple[Path, ...],
    label: str,
    *,
    search_files=None,
    package_of=None,
) -> list[str]:
    """A roof layer may be imported only by its allowed importers.

    ``search_files``/``package_of`` let tests point the checker at a
    synthetic tree; by default it walks the real ``src/repro``.
    """
    if search_files is None:
        search_files = sorted((SRC / "repro").rglob("*.py"))
    if package_of is None:
        def package_of(path):
            return ".".join(
                path.relative_to(SRC).parent.parts
            ) or "repro"
    errors: list[str] = []
    for path in search_files:
        if roof_dir in path.parents or path in allowed_importers:
            continue
        package = package_of(path)
        tree = ast.parse(path.read_text(), filename=str(path))
        for lineno, mod in runtime_imports(tree, package):
            if _in_layer(mod, roof_package):
                errors.append(
                    f"{_rel(path)}:{lineno}: {label} {mod!r} "
                    f"(only the CLI may)"
                )
    return errors


def _check_package(
    directory: Path, package: str, forbidden: tuple[str, ...], label: str
) -> list[str]:
    """Apply a forbidden-layer rule to every module in a package."""
    errors: list[str] = []
    for path in sorted(directory.glob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for lineno, mod in runtime_imports(tree, package):
            for layer in forbidden:
                if _in_layer(mod, layer):
                    errors.append(
                        f"{_rel(path)}:{lineno}: {label} "
                        f"{mod!r}"
                    )
    return errors


def main() -> int:
    missing = [
        p for p in (*STAGE_FILES, *EXECUTION_MODEL_FILES,
                    JIT_DIR, SUPERVISE_DIR, RESILIENCE_DIR, SCENARIOS_DIR,
                    GATEWAY_DIR, CHAOS_DIR)
        if not p.exists()
    ]
    if missing:
        for p in missing:
            print(f"layering lint: missing file {p}", file=sys.stderr)
        return 2
    errors = check()
    for err in errors:
        print(err, file=sys.stderr)
    if errors:
        print(f"layering lint: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    print("layering lint: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
