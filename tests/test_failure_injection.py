"""Failure-injection tests: bad data and dying sources fail loudly."""

import numpy as np
import pytest

from repro.data.library import LibraryConfig, NuclideLibrary
from repro.data.nuclide import Nuclide
from repro.data.unionized import UnionizedGrid
from repro.errors import DataError, ExecutionError, GeometryError
from repro.geometry.hoogenboom import FastCoreGeometry, HMModel, build_pincell_geometry
from repro.geometry.materials import Material
from repro.physics.macroxs import XSCalculator
from repro.transport import Settings, Simulation
from repro.transport.context import TransportContext
from repro.types import N_REACTIONS


class TestBadDataRejected:
    def test_nan_cross_section(self):
        xs = np.ones((N_REACTIONS, 3))
        xs[0, 1] = np.nan
        with pytest.raises(DataError):
            Nuclide(
                name="bad", awr=1.0, energy=np.array([1e-10, 1e-5, 1.0]),
                xs=xs,
            )

    def test_inf_cross_section(self):
        xs = np.ones((N_REACTIONS, 3))
        xs[2, 0] = np.inf
        with pytest.raises(DataError):
            Nuclide(
                name="bad", awr=1.0, energy=np.array([1e-10, 1e-5, 1.0]),
                xs=xs,
            )

    def test_nan_energy_grid(self):
        with pytest.raises(DataError):
            Nuclide(
                name="bad", awr=1.0,
                energy=np.array([1e-10, np.nan, 1.0]),
                xs=np.ones((N_REACTIONS, 3)),
            )

    def test_nan_density(self):
        with pytest.raises(GeometryError):
            Material("bad", {"H1": float("nan")})

    def test_inf_density(self):
        with pytest.raises(GeometryError):
            Material("bad", {"H1": float("inf")})


class TestSourceExtinction:
    def test_nonfissionable_medium_raises(self):
        """A geometry whose every region is a pure absorber/scatterer must
        kill the fission source and raise, not loop forever."""
        energy = np.array([1e-11, 1e-3, 20.0])
        xs = np.zeros((N_REACTIONS, 3))
        xs[0] = 1.0
        xs[1] = 0.5
        xs[2] = 0.5  # capture only, no fission
        nuc = Nuclide(name="DEAD", awr=50.0, energy=energy, xs=xs)
        library = NuclideLibrary([nuc], {}, {}, LibraryConfig.tiny(), "custom")
        material = Material("dead", {"DEAD": 1.0})
        base = build_pincell_geometry()
        model = HMModel(
            geometry=base.geometry, fuel=material, cladding=material,
            water=material, model="custom",
        )
        union = UnionizedGrid(library)
        ctx = TransportContext(
            model=model, library=library, union=union,
            calculator=XSCalculator(library, union),
            fast=FastCoreGeometry(pincell=True), master_seed=1,
        )
        sim = Simulation(
            library,
            Settings(
                n_particles=30, n_inactive=0, n_active=1, pincell=True,
                mode="event", seed=1,
            ),
            context=ctx,
        )
        with pytest.raises(ExecutionError, match="died out"):
            sim.run()


class TestDegenerateWorkloads:
    @pytest.mark.parametrize("mode", ["event", "history"])
    def test_single_particle_simulation(self, small_library, mode):
        """n=1 either completes or dies out cleanly (a lone neutron may
        well be captured before fissioning) — never hangs or crashes."""
        sim = Simulation(
            small_library,
            Settings(
                n_particles=1, n_inactive=0, n_active=1, pincell=True,
                mode=mode, seed=12345,
            ),
        )
        try:
            r = sim.run()
            assert r.n_particles == 1
        except ExecutionError as err:
            assert "died out" in str(err)

    def test_very_cold_source_energy(self, small_library):
        """Source at the energy floor transports without numerical blowups."""
        from repro.transport.events import run_generation_event
        from repro.transport.tally import GlobalTallies

        ctx = TransportContext.create(
            small_library, pincell=True,
            union=UnionizedGrid(small_library), master_seed=2,
        )
        pos = np.zeros((20, 3))
        pos[:, 2] = np.linspace(-100, 100, 20)
        t = GlobalTallies()
        run_generation_event(ctx, pos, np.full(20, 1e-11), t, 1.0, 0)
        assert np.isfinite(t.collision)

    def test_very_hot_source_energy(self, small_library):
        from repro.transport.events import run_generation_event
        from repro.transport.tally import GlobalTallies

        ctx = TransportContext.create(
            small_library, pincell=True,
            union=UnionizedGrid(small_library), master_seed=2,
        )
        pos = np.zeros((20, 3))
        pos[:, 2] = np.linspace(-100, 100, 20)
        t = GlobalTallies()
        run_generation_event(ctx, pos, np.full(20, 19.9), t, 1.0, 0)
        assert np.isfinite(t.collision)
