"""Tests for particle representations and banking (AoS <-> SoA)."""

import numpy as np
import pytest

from repro.rng.lcg import RandomStream
from repro.transport.particle import FissionBank, Particle, ParticleBank


class TestParticle:
    def test_from_source_positions_stream(self):
        p = Particle.from_source(5, np.array([1.0, 2.0, 3.0]), 2.0, master_seed=9)
        # Stream is 2 draws past the start of history 5's stride.
        ref = RandomStream()
        ref.set_particle(9, 5)
        ref.prn(), ref.prn()
        assert p.stream.seed == ref.seed

    def test_direction_is_unit(self):
        p = Particle.from_source(0, np.zeros(3), 1.0)
        assert np.linalg.norm(p.direction) == pytest.approx(1.0)

    def test_position_copied(self):
        pos = np.array([1.0, 1.0, 1.0])
        p = Particle.from_source(0, pos, 1.0)
        pos[0] = 99.0
        assert p.position[0] == 1.0


class TestParticleBank:
    def test_from_source_matches_scalar_births(self):
        """Vectorized birth draws the same direction as scalar birth."""
        positions = np.random.default_rng(1).uniform(-1, 1, (8, 3))
        energies = np.linspace(0.5, 2.0, 8)
        bank = ParticleBank.from_source(positions, energies, first_id=3, master_seed=9)
        for i in range(8):
            p = Particle.from_source(3 + i, positions[i], energies[i], master_seed=9)
            np.testing.assert_allclose(bank.direction[i], p.direction, rtol=1e-12)
            assert bank.rng_state[i] == p.stream.seed

    def test_roundtrip_aos_soa(self):
        positions = np.random.default_rng(2).uniform(-1, 1, (5, 3))
        bank = ParticleBank.from_source(positions, np.ones(5))
        particles = bank.to_particles()
        back = ParticleBank.from_particles(particles)
        np.testing.assert_allclose(back.position, bank.position)
        np.testing.assert_allclose(back.direction, bank.direction)
        np.testing.assert_array_equal(back.rng_state, bank.rng_state)

    def test_n_alive(self):
        bank = ParticleBank(4)
        bank.alive[2] = False
        assert bank.n_alive == 3

    def test_nbytes_positive(self):
        assert ParticleBank(10).nbytes > 0


class TestFissionBank:
    def test_add_and_len(self):
        bank = FissionBank()
        bank.add(np.zeros(3), 1.0)
        bank.add(np.ones(3), 2.0)
        assert len(bank) == 2

    def test_canonical_order_independent_of_insertion(self):
        """The (parent, seq) ordering makes history- and event-style
        insertion orders equivalent."""
        a = FissionBank()
        # history style: per-parent in order
        a.add(np.array([0.0, 0, 0]), 1.0, parent=0, seq=0)
        a.add(np.array([1.0, 0, 0]), 2.0, parent=0, seq=1)
        a.add(np.array([2.0, 0, 0]), 3.0, parent=1, seq=0)
        b = FissionBank()
        # event style: site-peel order (all seq 0 first)
        b.add(np.array([0.0, 0, 0]), 1.0, parent=0, seq=0)
        b.add(np.array([2.0, 0, 0]), 3.0, parent=1, seq=0)
        b.add(np.array([1.0, 0, 0]), 2.0, parent=0, seq=1)
        np.testing.assert_allclose(a.positions, b.positions)
        np.testing.assert_allclose(a.energies, b.energies)

    def test_sample_exact_size(self):
        bank = FissionBank()
        for i in range(10):
            bank.add(np.array([float(i), 0, 0]), float(i))
        rng = np.random.default_rng(0)
        pos, en = bank.sample_source(10, rng)
        # Same size: identity resample, canonical order.
        np.testing.assert_allclose(en, np.arange(10.0))

    def test_sample_upsamples_with_replacement(self):
        bank = FissionBank()
        bank.add(np.zeros(3), 1.0)
        rng = np.random.default_rng(0)
        pos, en = bank.sample_source(5, rng)
        assert pos.shape == (5, 3)
        np.testing.assert_allclose(en, 1.0)

    def test_sample_downsamples_without_replacement(self):
        bank = FissionBank()
        for i in range(20):
            bank.add(np.array([float(i), 0, 0]), float(i))
        rng = np.random.default_rng(0)
        pos, en = bank.sample_source(5, rng)
        assert len(set(en.tolist())) == 5

    def test_empty_bank_raises(self):
        with pytest.raises(ValueError):
            FissionBank().sample_source(3, np.random.default_rng(0))
