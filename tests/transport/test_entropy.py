"""Tests for Shannon entropy of the fission source."""

import numpy as np
import pytest

from repro.transport.entropy import EntropyMesh, shannon_entropy


class TestShannonEntropy:
    def test_uniform_distribution_maximal(self):
        counts = np.ones(8)
        assert shannon_entropy(counts) == pytest.approx(3.0)

    def test_point_distribution_zero(self):
        counts = np.array([0, 10, 0, 0])
        assert shannon_entropy(counts) == 0.0

    def test_empty_is_zero(self):
        assert shannon_entropy(np.zeros(4)) == 0.0

    def test_between_bounds(self):
        counts = np.array([1, 2, 3, 4])
        h = shannon_entropy(counts)
        assert 0.0 < h < 2.0


class TestEntropyMesh:
    def make(self):
        return EntropyMesh(lower=(-1, -1, -1), upper=(1, 1, 1), shape=(2, 2, 2))

    def test_bin_indices_corners(self):
        mesh = self.make()
        idx = mesh.bin_indices(
            np.array([[-0.5, -0.5, -0.5], [0.5, 0.5, 0.5]])
        )
        assert idx[0] == 0
        assert idx[1] == 7

    def test_out_of_mesh_clamps(self):
        mesh = self.make()
        idx = mesh.bin_indices(np.array([[5.0, 5.0, 5.0]]))
        assert idx[0] == 7

    def test_entropy_uniform_sites(self):
        mesh = self.make()
        rng = np.random.default_rng(0)
        sites = rng.uniform(-1, 1, (20000, 3))
        assert mesh.entropy(sites) == pytest.approx(3.0, abs=0.01)

    def test_entropy_concentrated_sites(self):
        mesh = self.make()
        sites = np.full((100, 3), 0.5)
        assert mesh.entropy(sites) == 0.0

    def test_empty_sites(self):
        assert self.make().entropy(np.empty((0, 3))) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            EntropyMesh(lower=(0, 0, 0), upper=(0, 1, 1))
