"""Analytic gold-standard validations of the transport chain.

A reflective box filled with a single flat-cross-section material is an
infinite homogeneous medium, for which the eigenvalue is exact:

.. math:: k_\\infty = \\nu \\Sigma_f / \\Sigma_a

independent of the flux spectrum (the cross sections don't depend on
energy).  Every transport algorithm and every k estimator must converge to
it — a whole-chain validation with no reference code needed.
"""

import numpy as np
import pytest

from repro.data.library import LibraryConfig, NuclideLibrary
from repro.data.nuclide import Nuclide
from repro.data.unionized import UnionizedGrid
from repro.geometry.hoogenboom import FastCoreGeometry, build_pincell_geometry
from repro.geometry.hoogenboom import HMModel
from repro.geometry.materials import Material
from repro.physics.macroxs import XSCalculator
from repro.transport.context import TransportContext
from repro.transport.delta import MajorantXS, run_generation_delta
from repro.transport.events import run_generation_event
from repro.transport.history import run_generation_history
from repro.transport.tally import GlobalTallies
from repro.types import N_REACTIONS


def flat_nuclide(
    name="X1", total=1.0, elastic=0.6, capture=0.25, fission=0.15, nu0=2.0,
    awr=200.0,
):
    energy = np.array([1e-11, 1e-3, 20.0])
    xs = np.zeros((N_REACTIONS, 3))
    xs[0] = total
    xs[1] = elastic
    xs[2] = capture
    xs[3] = fission
    return Nuclide(
        name=name, awr=awr, energy=energy, xs=xs,
        fissionable=fission > 0, nu0=nu0,
    )


def infinite_medium_ctx(nuclide, survival=False, seed=5):
    """A reflective pin-cell geometry whose every region holds the same
    flat-XS material = an infinite homogeneous medium."""
    library = NuclideLibrary(
        [nuclide], {}, {}, LibraryConfig.tiny(), "custom"
    )
    material = Material("medium", {nuclide.name: 1.0})
    base = build_pincell_geometry()
    model = HMModel(
        geometry=base.geometry, fuel=material, cladding=material,
        water=material, model="custom",
    )
    union = UnionizedGrid(library)
    return TransportContext(
        model=model,
        library=library,
        union=union,
        calculator=XSCalculator(library, union),
        fast=FastCoreGeometry(pincell=True),
        master_seed=seed,
        survival_biasing=survival,
    )


def run_batches(ctx, runner, n=600, batches=5, seed=5, **kwargs):
    """Independent fixed-source generations at a controlled low energy.

    The analytic value k = nu Sigma_f / Sigma_a assumes nu is constant; our
    nuclides carry nu(E) = nu0 + 0.1 E, so sourcing every batch at 1 keV
    (where the slope term is 1e-4) keeps the expectation exact.  Iterated
    generations would instead sample Watt birth energies (~2 MeV, nu ~ 2.2)
    and converge to a slightly higher — still physical, but not
    closed-form — eigenvalue.
    """
    rng = np.random.default_rng(seed)
    ks = {"col": [], "abs": [], "trk": []}
    for b in range(batches):
        pos = np.column_stack(
            [rng.uniform(-0.5, 0.5, n), rng.uniform(-0.5, 0.5, n),
             rng.uniform(-100, 100, n)]
        )
        en = np.full(n, 1e-3)
        t = GlobalTallies()
        runner(ctx, pos, en, t, 1.0, b * n, **kwargs)
        ks["col"].append(t.k_collision())
        ks["abs"].append(t.k_absorption())
        ks["trk"].append(t.k_track_length())
    return {k: (np.mean(v), np.std(v, ddof=1) / np.sqrt(len(v))) for k, v in ks.items()}


# nu Sigma_f / Sigma_a for the default flat nuclide (nu(E) ~ nu0 at keV).
K_INF = 2.0 * 0.15 / (0.25 + 0.15)


class TestInfiniteMediumEigenvalue:
    @staticmethod
    def _check(stats, n_total, k_ref=K_INF, estimators=("col", "abs", "trk")):
        """4-sigma band from the exact per-history variance of the
        collision estimator: k per history is (nu Sigma_f / Sigma_t) times
        a geometric collision count, so sigma = 0.3 * sqrt((1-p)/p^2) =
        0.582 per history at the reference parameters."""
        sigma = 0.582 / np.sqrt(n_total)
        for key in estimators:
            mean, _ = stats[key]
            assert mean == pytest.approx(k_ref, abs=4 * sigma + 0.005), key

    def test_event_mode(self):
        ctx = infinite_medium_ctx(flat_nuclide())
        self._check(run_batches(ctx, run_generation_event), 3000)

    def test_history_mode(self):
        ctx = infinite_medium_ctx(flat_nuclide())
        stats = run_batches(ctx, run_generation_history, n=300, batches=5)
        self._check(stats, 1500)

    def test_delta_mode(self):
        ctx = infinite_medium_ctx(flat_nuclide())
        majorant = MajorantXS(ctx)
        stats = run_batches(ctx, run_generation_delta, majorant=majorant)
        self._check(stats, 3000, estimators=("col", "abs"))

    def test_survival_biasing(self):
        ctx = infinite_medium_ctx(flat_nuclide(), survival=True)
        self._check(run_batches(ctx, run_generation_event), 3000)

    def test_different_k_infinity(self):
        """A supercritical flat medium: k_inf = 2*0.3/0.4 = 1.5."""
        nuc = flat_nuclide(total=1.0, elastic=0.6, capture=0.1, fission=0.3)
        ctx = infinite_medium_ctx(nuc)
        stats = run_batches(ctx, run_generation_event, batches=4)
        mean, _ = stats["col"]
        # Per-history sigma here: 0.6 * sqrt(0.6)/0.4 = 1.16.
        assert mean == pytest.approx(1.5, abs=4 * 1.16 / np.sqrt(2400) + 0.005)

    def test_estimators_mutually_consistent(self):
        """With flat XS all three estimators are *identical in expectation*
        and strongly correlated per batch."""
        ctx = infinite_medium_ctx(flat_nuclide())
        stats = run_batches(ctx, run_generation_event)
        assert stats["col"][0] == pytest.approx(stats["abs"][0], abs=0.02)
        assert stats["col"][0] == pytest.approx(stats["trk"][0], abs=0.03)


class TestMeanFreePath:
    def test_first_flight_length(self):
        """In a pure absorber of Sigma_t = 2, the mean chord to collision
        is exactly 1/2 (reflective box = infinite medium)."""
        nuc = flat_nuclide(
            total=2.0, elastic=0.0, capture=1.9, fission=0.1, nu0=1.0
        )
        ctx = infinite_medium_ctx(nuc)
        rng = np.random.default_rng(7)
        n = 4000
        pos = np.column_stack(
            [rng.uniform(-0.5, 0.5, n), rng.uniform(-0.5, 0.5, n),
             rng.uniform(-100, 100, n)]
        )
        t = GlobalTallies()
        run_generation_event(ctx, pos, np.full(n, 1e-3), t, 1.0, 0)
        # Every history is exactly one flight to an absorbing collision;
        # track_length tally = sum(d * nu Sigma_f), so
        # mean d = track / (n * nu Sigma_f).
        nu_sigma_f = 1.0 * 0.1
        mean_d = t.track_length / (n * nu_sigma_f)
        assert mean_d == pytest.approx(0.5, rel=0.05)
        assert t.n_collisions == n  # all absorbed at first collision
