"""The compiled-kernel tier: numba-event backend, proxy, and kernels.

Numba is optional and absent from the test environment by default; the
suite is written to be meaningful either way:

* ``compiled="force"`` runs the kernels regardless — as compiled code when
  numba is installed, as the pure-Python loop twins otherwise — so the
  kernel *logic* (search, gather, interpolation, accumulation order) is
  verified bit-for-bit against the NumPy path in every environment.  CI
  runs this file twice, with and without numba (the optional-dependency
  matrix leg), which is what pins "compiled == fallback == NumPy".
* ``compiled="auto"`` (the backend default) falls back to the banked
  NumPy applies without numba, so the full numba-event transport runs are
  exercised here too — at event speed, with identical results.
"""

import numpy as np
import pytest

from repro.data.unionized import UnionizedGrid
from repro.errors import ExecutionError
from repro.geometry.materials import make_fuel, make_water
from repro.physics.macroxs import XSCalculator
from repro.rng.lcg import particle_seeds
from repro.transport.backends import (
    NumbaEventBackend,
    TransportBackend,
    available_backends,
    get_backend,
)
from repro.transport.context import TransportContext
from repro.transport.jit import (
    HAVE_NUMBA,
    JitXSCalculator,
    jit_status,
    library_view,
    plan_view,
)
from repro.transport.jit.kernels import (
    accumulate_macro,
    xs_gather1,
    xs_gather3,
)
from repro.transport.tally import GlobalTallies
from repro.types import Reaction
from repro.work import WorkCounters


@pytest.fixture(scope="module")
def union(small_library):
    return UnionizedGrid(small_library)


@pytest.fixture(scope="module")
def calc(small_library, union):
    return XSCalculator(small_library, union)


@pytest.fixture(scope="module")
def fuel():
    return make_fuel("hm-small")


def source(n, seed=5):
    rng = np.random.default_rng(seed)
    pos = np.column_stack(
        [
            rng.uniform(-0.3, 0.3, n),
            rng.uniform(-0.3, 0.3, n),
            rng.uniform(-150, 150, n),
        ]
    )
    return pos, np.full(n, 1.0)


def run_backend(small_library, union, backend, n=60):
    ctx = TransportContext.create(
        small_library, pincell=True, union=union, master_seed=7
    )
    pos, en = source(n)
    tallies = GlobalTallies()
    bank = backend.run_generation(ctx, pos, en, tallies, 1.0, 0)
    return ctx, tallies, bank


class TestRegistry:
    def test_numba_event_registered(self):
        assert "numba-event" in available_backends()

    def test_get_backend_defaults(self):
        b = get_backend("numba-event")
        assert isinstance(b, NumbaEventBackend)
        assert b.name == "numba-event"
        assert b.supports_track_length is True
        assert b.sort_policy == "energy"
        assert b.compiled == "auto"

    def test_satisfies_protocol(self):
        assert isinstance(get_backend("numba-event"), TransportBackend)

    def test_unknown_backend_error_names_numba_event(self):
        """The registry error lists the live registry — including the new
        backend — so a CLI typo points at every valid choice."""
        with pytest.raises(ExecutionError, match="numba-event"):
            get_backend("nmba-event")


class TestProxy:
    def test_delegates_attributes(self, calc):
        proxy = JitXSCalculator(calc)
        assert proxy.library is calc.library
        assert proxy.union is calc.union
        assert proxy.soa is calc.soa
        assert proxy.use_sab is calc.use_sab

    def test_no_proxy_stacking(self, calc):
        inner = JitXSCalculator(calc)
        outer = JitXSCalculator(inner)
        assert outer.calc is calc

    def test_invalid_mode_rejected(self, calc):
        with pytest.raises(ValueError, match="compiled"):
            JitXSCalculator(calc, compiled="maybe")

    def test_active_matrix(self, calc, small_library):
        assert JitXSCalculator(calc, compiled="off").active is False
        assert JitXSCalculator(calc, compiled="force").active is True
        assert JitXSCalculator(calc, compiled="auto").active is HAVE_NUMBA
        # Not kernel-capable without a union grid / with the AoS layout.
        no_union = XSCalculator(small_library, None)
        assert JitXSCalculator(no_union, compiled="force").active is False
        aos = XSCalculator(calc.library, calc.union, layout="aos")
        assert JitXSCalculator(aos, compiled="force").active is False

    def test_per_nuclide_total_delegates(self, calc, fuel):
        """per_nuclide_total callers get the NumPy path (same answer)."""
        proxy = JitXSCalculator(calc, compiled="force")
        e = np.geomspace(1e-9, 1.0, 8)
        pnt_p = np.empty((fuel.n_nuclides, 8))
        pnt_n = np.empty((fuel.n_nuclides, 8))
        states = particle_seeds(1, np.arange(8, dtype=np.uint64)).copy()
        rp = proxy.banked(fuel, e, rng_states=states.copy(),
                          per_nuclide_total=pnt_p)
        rn = calc.banked(fuel, e, rng_states=states.copy(),
                         per_nuclide_total=pnt_n)
        np.testing.assert_array_equal(rp["total"], rn["total"])
        np.testing.assert_array_equal(pnt_p, pnt_n)

    @pytest.mark.parametrize("n", [0, 1, 13, 100])
    def test_banked_bit_identical(self, calc, fuel, n):
        proxy = JitXSCalculator(calc, compiled="force")
        rng = np.random.default_rng(9)
        e = np.exp(rng.uniform(np.log(1e-10), np.log(15.0), n))
        states = particle_seeds(1, np.arange(n, dtype=np.uint64)).copy()
        cp, cn = WorkCounters(), WorkCounters()
        rp = proxy.banked(fuel, e, rng_states=states.copy(), counters=cp)
        rn = calc.banked(fuel, e, rng_states=states.copy(), counters=cn)
        for key in ("total", "elastic", "capture", "fission", "nu_fission"):
            np.testing.assert_array_equal(rp[key], rn[key])
        assert cp.as_dict() == cn.as_dict()

    def test_banked_advances_rng_states_identically(self, calc, fuel):
        proxy = JitXSCalculator(calc, compiled="force")
        e = np.geomspace(1e-3, 1e-1, 32)  # URR territory: draws happen
        sp = particle_seeds(1, np.arange(32, dtype=np.uint64)).copy()
        sn = sp.copy()
        proxy.banked(fuel, e, rng_states=sp)
        calc.banked(fuel, e, rng_states=sn)
        np.testing.assert_array_equal(sp, sn)

    @pytest.mark.parametrize(
        "reaction", [Reaction.ELASTIC, Reaction.CAPTURE, Reaction.FISSION]
    )
    def test_attribution_bit_identical(self, calc, fuel, reaction):
        proxy = JitXSCalculator(calc, compiled="force")
        e = np.exp(
            np.random.default_rng(4).uniform(np.log(1e-10), np.log(15.0), 40)
        )
        cp, cn = WorkCounters(), WorkCounters()
        wp = proxy.attribution_weights(fuel, e, reaction, cp)
        wn = calc.attribution_weights(fuel, e, reaction, cn)
        np.testing.assert_array_equal(wp, wn)
        assert cp.as_dict() == cn.as_dict()

    def test_attribution_sab_substitution(self, calc):
        """Thermal elastic attribution (bound hydrogen) matches too."""
        water = make_water()
        proxy = JitXSCalculator(calc, compiled="force")
        e = np.array([1e-9, 5e-9, 1e-8])
        np.testing.assert_array_equal(
            proxy.attribution_weights(water, e, Reaction.ELASTIC),
            calc.attribution_weights(water, e, Reaction.ELASTIC),
        )


class TestKernels:
    """Direct kernel-vs-NumPy checks, below the proxy."""

    def _matrices(self, calc, fuel, energies):
        plan = calc.material_plan(fuel)
        lib = library_view(calc)
        pv = plan_view(calc, plan)
        n_nuc, n = plan.n_nuclides, energies.shape[0]
        mats = [np.empty((n_nuc, n)) for _ in range(3)]
        xs_gather3(
            energies, lib.union_energy, lib.union_indices_flat,
            pv.union_rowoff, pv.offsets, lib.energy,
            lib.elastic, lib.capture, lib.fission, *mats,
        )
        return plan, pv, mats

    def test_gather3_matches_uncorrected_attribution(self, calc, fuel):
        """The raw gather equals attribution_weights with SAB off and the
        density weighting divided back out — same grid points, same
        interpolation arithmetic."""
        bare = XSCalculator(calc.library, calc.union, use_sab=False,
                            use_urr=False)
        e = np.exp(
            np.random.default_rng(8).uniform(np.log(1e-10), np.log(15.0), 25)
        )
        plan, pv, (m_el, m_cap, m_fis) = self._matrices(bare, fuel, e)
        for mat, reaction in (
            (m_el, Reaction.ELASTIC),
            (m_cap, Reaction.CAPTURE),
            (m_fis, Reaction.FISSION),
        ):
            expect = bare.attribution_weights(fuel, e, reaction)
            np.testing.assert_array_equal(mat * plan.rho[:, None], expect)

    def test_accumulate_matches_banked(self, calc, fuel):
        bare = XSCalculator(calc.library, calc.union, use_sab=False,
                            use_urr=False)
        e = np.geomspace(1e-9, 10.0, 30)
        plan, pv, (m_el, m_cap, m_fis) = self._matrices(bare, fuel, e)
        from repro.data.nuclide import NU_THERMAL_SLOPE

        outs = [np.empty(30) for _ in range(5)]
        accumulate_macro(
            m_el, m_cap, m_fis, pv.rho, pv.fissionable, pv.nu0,
            e, NU_THERMAL_SLOPE, *outs,
        )
        res = bare.banked(fuel, e)
        for out, key in zip(
            outs, ("total", "elastic", "capture", "fission", "nu_fission")
        ):
            np.testing.assert_array_equal(out, res[key])

    def test_gather1_matches_gather3_row(self, calc, fuel):
        e = np.geomspace(1e-8, 1.0, 12)
        plan, pv, (m_el, _, _) = self._matrices(calc, fuel, e)
        lib = library_view(calc)
        out = np.empty_like(m_el)
        xs_gather1(
            e, lib.union_energy, lib.union_indices_flat,
            pv.union_rowoff, pv.offsets, lib.energy, lib.elastic, out,
        )
        np.testing.assert_array_equal(out, m_el)

    def test_views_are_cached(self, calc, fuel):
        plan = calc.material_plan(fuel)
        assert library_view(calc) is library_view(calc)
        assert plan_view(calc, plan) is plan_view(calc, plan)

    def test_library_view_requires_union(self, small_library):
        with pytest.raises(ValueError, match="union"):
            library_view(XSCalculator(small_library, None))


class TestJitStatus:
    def test_status_shape(self):
        status = jit_status()
        assert status["numba_available"] is HAVE_NUMBA
        assert isinstance(status["kernels_compiled"], list)
        assert status["compile_s"] >= 0.0
        if not HAVE_NUMBA:
            # Pure-Python twins are not instrumented: no compile cost.
            assert status["compile_s"] == 0.0


class TestNumbaEventTransport:
    """Full numba-event generations against the plain event schedule."""

    def _pair(self, small_library, union, n=60, **bkw):
        _, te, be = run_backend(small_library, union, get_backend("event"), n)
        cj, tj, bj = run_backend(
            small_library, union, NumbaEventBackend(**bkw), n
        )
        return (te, be), (cj, tj, bj)

    @pytest.mark.parametrize("compiled", ["auto", "force", "off"])
    def test_bit_identical_to_event(self, small_library, union, compiled):
        (te, be), (cj, tj, bj) = self._pair(
            small_library, union, compiled=compiled
        )
        assert tj.collision == te.collision
        assert tj.absorption == te.absorption
        assert tj.track_length == te.track_length
        assert len(bj) == len(be)
        np.testing.assert_array_equal(bj.positions, be.positions)
        np.testing.assert_array_equal(bj.energies, be.energies)

    def test_counters_identical_to_event(self, small_library, union):
        ce, _, _ = run_backend(small_library, union, get_backend("event"))
        cj, _, _ = run_backend(
            small_library, union, NumbaEventBackend(compiled="force")
        )
        assert ce.counters.as_dict() == cj.counters.as_dict()

    def test_wrapped_context_cached_per_ctx(self, small_library, union):
        backend = NumbaEventBackend()
        ctx = TransportContext.create(
            small_library, pincell=True, union=union, master_seed=7
        )
        wrapped = backend._wrap(ctx)
        assert backend._wrap(ctx) is wrapped
        assert isinstance(wrapped.calculator, JitXSCalculator)
        assert wrapped.calculator.calc is ctx.calculator
        # Counters flow to the caller's objects: shared by reference.
        assert wrapped.counters is ctx.counters
        ctx2 = TransportContext.create(
            small_library, pincell=True, union=union, master_seed=7
        )
        assert backend._wrap(ctx2) is not wrapped

    def test_simulation_selects_numba_event(self, small_library):
        from repro.transport import Settings, Simulation

        common = dict(
            n_particles=40, n_inactive=1, n_active=1, pincell=True, seed=7
        )
        re = Simulation(small_library, Settings(mode="event", **common)).run()
        rj = Simulation(
            small_library, Settings(mode="numba-event", **common)
        ).run()
        np.testing.assert_array_equal(
            re.statistics.k_collision, rj.statistics.k_collision
        )
        assert re.counters.as_dict() == rj.counters.as_dict()
