"""The transport backend registry: name-based selection, the protocol
contract, and agreement between registry-selected backends and the
underlying generation functions."""

import numpy as np
import pytest

from repro.data.unionized import UnionizedGrid
from repro.errors import ExecutionError
from repro.transport import (
    HistoryBackend,
    Settings,
    TransportBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.transport.backends import _REGISTRY
from repro.transport.context import TransportContext
from repro.transport.events import run_generation_event
from repro.transport.history import run_generation_history
from repro.transport.stats import TransportStats
from repro.transport.tally import GlobalTallies


@pytest.fixture(scope="module")
def union(small_library):
    return UnionizedGrid(small_library)


def make_ctx(small_library, union, **kw):
    return TransportContext.create(
        small_library, pincell=True, union=union, master_seed=7, **kw
    )


def source(n, seed=5):
    rng = np.random.default_rng(seed)
    pos = np.column_stack(
        [
            rng.uniform(-0.3, 0.3, n),
            rng.uniform(-0.3, 0.3, n),
            rng.uniform(-150, 150, n),
        ]
    )
    return pos, np.full(n, 1.0)


class TestRegistry:
    def test_builtins_registered(self):
        names = available_backends()
        assert "history" in names
        assert "event" in names
        assert "delta" in names
        assert names == tuple(sorted(names))

    def test_unknown_name_lists_available(self):
        with pytest.raises(ExecutionError, match="event.*history"):
            get_backend("event-sorted")

    def test_fresh_instance_per_call(self):
        assert get_backend("delta") is not get_backend("delta")

    def test_instances_satisfy_protocol(self):
        for name in available_backends():
            backend = get_backend(name)
            assert isinstance(backend, TransportBackend)
            assert backend.name == name
            assert isinstance(backend.supports_track_length, bool)

    def test_register_shadows_and_restores(self):
        class Instrumented(HistoryBackend):
            name = "history"

        original = _REGISTRY["history"]
        try:
            register_backend("history", Instrumented)
            assert isinstance(get_backend("history"), Instrumented)
        finally:
            register_backend("history", original)
        assert type(get_backend("history")) is HistoryBackend

    def test_settings_mode_validated_against_registry(self):
        with pytest.raises(ExecutionError, match="available"):
            Settings(n_particles=10, mode="no-such-backend")


class TestBackendRuns:
    @pytest.mark.parametrize(
        "name,direct",
        [
            ("history", run_generation_history),
            ("event", run_generation_event),
        ],
    )
    def test_backend_matches_direct_function(
        self, small_library, union, name, direct
    ):
        """Registry dispatch adds nothing: bit-identical to a direct call."""
        pos, en = source(40)
        ctx_a = make_ctx(small_library, union)
        ta = GlobalTallies()
        bank_a = get_backend(name).run_generation(ctx_a, pos, en, ta, 1.0, 0)
        ctx_b = make_ctx(small_library, union)
        tb = GlobalTallies()
        bank_b = direct(ctx_b, pos, en, tb, 1.0, 0)
        assert ta.collision == tb.collision
        assert ta.absorption == tb.absorption
        assert ta.track_length == tb.track_length
        assert ctx_a.counters.as_dict() == ctx_b.counters.as_dict()
        assert len(bank_a) == len(bank_b)
        np.testing.assert_array_equal(bank_a.positions, bank_b.positions)
        np.testing.assert_array_equal(bank_a.energies, bank_b.energies)

    def test_backends_record_stats(self, small_library, union):
        for name in ("history", "event"):
            pos, en = source(25)
            ctx = make_ctx(small_library, union)
            stats = TransportStats()
            get_backend(name).run_generation(
                ctx, pos, en, GlobalTallies(), 1.0, 0, stats=stats
            )
            assert stats.iterations > 0
            assert int(stats.lookup_counts.sum()) == ctx.counters.lookups

    def test_event_backend_is_the_simulation_route(self, small_library):
        """Settings.mode names resolve through the same registry."""
        from repro.transport import Simulation

        sim = Simulation(
            small_library,
            Settings(n_particles=30, n_inactive=1, n_active=1,
                     pincell=True, mode="event"),
        )
        result = sim.run()
        assert result.mode == "event"

    def test_delta_rejects_track_length_tallies(self, small_library, union):
        pos, en = source(10)
        ctx = make_ctx(small_library, union)
        with pytest.raises(ExecutionError, match="track-length"):
            get_backend("delta").run_generation(
                ctx, pos, en, GlobalTallies(), 1.0, 0, power=object()
            )

    def test_delta_majorant_cached_per_context(self, small_library, union):
        pos, en = source(15)
        backend = get_backend("delta")
        ctx = make_ctx(small_library, union)
        backend.run_generation(ctx, pos, en, GlobalTallies(), 1.0, 0)
        majorant = backend._majorant
        assert majorant is not None
        backend.run_generation(ctx, pos, en, GlobalTallies(), 1.0, 100)
        assert backend._majorant is majorant  # same ctx: reused
        ctx2 = make_ctx(small_library, union)
        backend.run_generation(ctx2, pos, en, GlobalTallies(), 1.0, 0)
        assert backend._majorant is not majorant  # new ctx: rebuilt
