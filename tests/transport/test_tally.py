"""Tests for tallies, k estimators, and batch statistics."""

import numpy as np
import pytest

from repro.transport.tally import BatchStatistics, GlobalTallies


class TestGlobalTallies:
    def test_collision_estimator(self):
        t = GlobalTallies()
        t.source_weight = 2.0
        t.score_collision(1.0, nu_sigma_f=0.5, sigma_t=1.0)
        t.score_collision(1.0, nu_sigma_f=0.5, sigma_t=0.5)
        assert t.k_collision() == pytest.approx((0.5 + 1.0) / 2.0)

    def test_absorption_estimator(self):
        t = GlobalTallies()
        t.source_weight = 1.0
        t.score_absorption(1.0, nu_sigma_f=0.3, sigma_a=0.6)
        assert t.k_absorption() == pytest.approx(0.5)

    def test_track_estimator(self):
        t = GlobalTallies()
        t.source_weight = 1.0
        t.score_track(1.0, distance=2.0, nu_sigma_f=0.25)
        assert t.k_track_length() == pytest.approx(0.5)

    def test_vectorized_scores_match_scalar(self):
        rng = np.random.default_rng(0)
        w = rng.random(50)
        nsf = rng.random(50)
        st = rng.random(50) + 0.1
        d = rng.random(50)
        a, b = GlobalTallies(), GlobalTallies()
        for i in range(50):
            a.score_collision(w[i], nsf[i], st[i])
            a.score_absorption(w[i], nsf[i], st[i])
            a.score_track(w[i], d[i], nsf[i])
        b.score_collision_many(w, nsf, st)
        b.score_absorption_many(w, nsf, st)
        b.score_track_many(w, d, nsf)
        assert b.collision == pytest.approx(a.collision)
        assert b.absorption == pytest.approx(a.absorption)
        assert b.track_length == pytest.approx(a.track_length)

    def test_zero_sigma_guarded(self):
        t = GlobalTallies()
        t.source_weight = 1.0
        t.score_collision(1.0, 0.5, 0.0)
        assert t.k_collision() == 0.0

    def test_array_roundtrip(self):
        t = GlobalTallies()
        t.source_weight = 3.0
        t.score_collision(1.0, 0.5, 1.0)
        t.n_leaks = 2
        back = GlobalTallies.from_array(t.as_array())
        assert back.collision == pytest.approx(t.collision)
        assert back.n_leaks == 2

    def test_reset(self):
        t = GlobalTallies()
        t.score_collision(1.0, 0.5, 1.0)
        t.reset()
        assert t.collision == 0.0 and t.n_collisions == 0


class TestBatchStatistics:
    def make(self, ks, n_inactive=2):
        stats = BatchStatistics(n_inactive=n_inactive)
        for k in ks:
            t = GlobalTallies()
            t.source_weight = 1.0
            t.collision = k
            t.absorption = k
            t.track_length = k
            stats.record(t)
        return stats

    def test_inactive_excluded(self):
        stats = self.make([10.0, 10.0, 1.0, 1.2, 0.8])
        r = stats.result_collision()
        assert r.mean == pytest.approx(1.0)
        assert r.n_batches == 3

    def test_std_err(self):
        stats = self.make([0, 0, 1.0, 2.0, 3.0])
        r = stats.result_collision()
        expected = np.std([1, 2, 3], ddof=1) / np.sqrt(3)
        assert r.std_err == pytest.approx(expected)

    def test_single_active_batch_has_inf_err(self):
        stats = self.make([5.0, 5.0, 1.0])
        assert stats.result_collision().std_err == np.inf

    def test_no_active_batches_nan(self):
        stats = self.make([5.0], n_inactive=2)
        assert np.isnan(stats.result_collision().mean)

    def test_combined_k_averages_estimators(self):
        stats = self.make([0, 0, 1.5])
        assert stats.combined_k().mean == pytest.approx(1.5)

    def test_running_k_all_batches(self):
        stats = self.make([2.0, 1.0])
        assert stats.running_k() == pytest.approx(1.5)

    def test_running_k_before_batches(self):
        assert BatchStatistics(n_inactive=0).running_k() == 1.0
