"""Tests for the energy-spectrum flux tally — end-to-end physics validation."""

import numpy as np
import pytest

from repro.data.unionized import UnionizedGrid
from repro.errors import ReproError
from repro.transport.context import TransportContext
from repro.transport.events import run_generation_event
from repro.transport.history import run_generation_history
from repro.transport.spectrum import SpectrumTally
from repro.transport.tally import GlobalTallies


class TestBinning:
    def test_edges_log_uniform(self):
        t = SpectrumTally(n_bins=10, e_min=1e-10, e_max=10.0)
        ratios = t.edges[1:] / t.edges[:-1]
        np.testing.assert_allclose(ratios, ratios[0])

    def test_bin_of_clamps(self):
        t = SpectrumTally(n_bins=10, e_min=1e-6, e_max=1.0)
        assert t.bin_of(1e-12) == 0
        assert t.bin_of(100.0) == 9

    def test_centers_inside_edges(self):
        t = SpectrumTally(n_bins=5)
        assert np.all(t.centers > t.edges[:-1])
        assert np.all(t.centers < t.edges[1:])

    def test_validation(self):
        with pytest.raises(ReproError):
            SpectrumTally(n_bins=0)
        with pytest.raises(ReproError):
            SpectrumTally(e_min=1.0, e_max=0.1)


class TestScoring:
    def test_scalar_vector_agree(self):
        rng = np.random.default_rng(0)
        e = np.exp(rng.uniform(np.log(1e-10), np.log(10), 100))
        w = rng.random(100)
        d = rng.random(100)
        a = SpectrumTally()
        b = SpectrumTally()
        for i in range(100):
            a.score_track(e[i], w[i], d[i])
        b.score_track_many(e, w, d)
        np.testing.assert_allclose(a.flux, b.flux, rtol=1e-12)
        assert a.total_weight == pytest.approx(b.total_weight)

    def test_per_lethargy_normalized(self):
        t = SpectrumTally(n_bins=20)
        rng = np.random.default_rng(1)
        t.score_track_many(
            np.exp(rng.uniform(np.log(1e-9), np.log(1), 500)),
            np.ones(500),
            np.ones(500),
        )
        phi = t.per_lethargy()
        du = np.log(t.edges[1:] / t.edges[:-1])
        assert (phi * du).sum() == pytest.approx(1.0)

    def test_empty_tally(self):
        t = SpectrumTally()
        assert t.per_lethargy().sum() == 0.0
        assert t.fraction_below(1.0) == 0.0

    def test_fraction_below(self):
        t = SpectrumTally(n_bins=10, e_min=1e-8, e_max=1.0)
        t.score_track(2e-8, 1.0, 1.0)  # bin 0
        t.score_track(0.5, 1.0, 3.0)  # top bin
        assert t.fraction_below(1e-4) == pytest.approx(0.25)


class TestReactorSpectrum:
    @pytest.fixture(scope="class")
    def spectrum(self, small_library):
        union = UnionizedGrid(small_library)
        ctx = TransportContext.create(
            small_library, pincell=True, union=union, master_seed=3,
            survival_biasing=True,
        )
        spec = SpectrumTally()
        rng = np.random.default_rng(4)
        pos = np.column_stack(
            [rng.uniform(-0.3, 0.3, 300), rng.uniform(-0.3, 0.3, 300),
             rng.uniform(-150, 150, 300)]
        )
        en = np.full(300, 2.0)
        t = GlobalTallies()
        for g in range(3):
            bank = run_generation_event(
                ctx, pos, en, t, 1.0, g * 300, spectrum=spec
            )
            pos, en = bank.sample_source(300, rng)
        return spec

    def test_thermal_population_exists(self, spectrum):
        """Moderation + S(a,b) upscatter produce a thermal population."""
        assert spectrum.fraction_below(4e-6) > 0.03

    def test_fission_peak_in_mev_range(self, spectrum):
        phi = spectrum.per_lethargy()
        fast = phi[spectrum.bin_of(2.0)]
        epithermal = phi[spectrum.bin_of(1e-5)]
        assert fast > epithermal

    def test_one_over_e_region_flat_in_lethargy(self, spectrum):
        """Slowing-down flux is ~flat per lethargy between 100 eV and
        100 keV."""
        phi = spectrum.per_lethargy()
        lo = phi[spectrum.bin_of(1e-4)]
        hi = phi[spectrum.bin_of(1e-2)]
        assert abs(np.log(hi / lo)) < 1.5

    def test_history_event_spectra_identical(self, small_library):
        union = UnionizedGrid(small_library)
        rng = np.random.default_rng(5)
        pos = np.column_stack(
            [rng.uniform(-0.3, 0.3, 60), rng.uniform(-0.3, 0.3, 60),
             rng.uniform(-100, 100, 60)]
        )
        en = np.full(60, 1.0)
        results = []
        for runner in (run_generation_history, run_generation_event):
            ctx = TransportContext.create(
                small_library, pincell=True, union=union, master_seed=3
            )
            spec = SpectrumTally()
            runner(ctx, pos, en, GlobalTallies(), 1.0, 0, spectrum=spec)
            results.append(spec.flux)
        np.testing.assert_allclose(results[0], results[1], rtol=1e-10)
