"""Tests for survival biasing (implicit capture + Russian roulette)."""

import numpy as np

from repro.transport import Settings, Simulation


def run(small_library, mode, survival, seed=7, n=120):
    return Simulation(
        small_library,
        Settings(
            n_particles=n, n_inactive=1, n_active=4, pincell=True,
            mode=mode, seed=seed, survival_biasing=survival,
        ),
    ).run()


class TestEquivalence:
    def test_history_event_identical_with_survival(self, small_library):
        rh = run(small_library, "history", True)
        re = run(small_library, "event", True)
        np.testing.assert_allclose(
            rh.statistics.k_collision, re.statistics.k_collision, rtol=1e-12
        )
        np.testing.assert_allclose(
            rh.statistics.k_absorption, re.statistics.k_absorption, rtol=1e-12
        )
        assert rh.counters.as_dict() == re.counters.as_dict()


class TestPhysics:
    def test_k_consistent_with_analog(self, small_library):
        """Survival biasing changes variance, not the expected k."""
        k_analog = run(small_library, "event", False, seed=3, n=400).k_effective
        k_surv = run(small_library, "event", True, seed=3, n=400).k_effective
        # Loose statistical band: both estimate the same eigenvalue.
        spread = 3 * np.hypot(k_analog.std_err, k_surv.std_err) + 0.03
        assert abs(k_analog.mean - k_surv.mean) < spread

    def test_longer_histories(self, small_library):
        """Implicit capture keeps particles alive longer: more collisions
        per source particle than analog."""
        c_analog = run(small_library, "event", False, seed=5).counters
        c_surv = run(small_library, "event", True, seed=5).counters
        assert c_surv.collisions > c_analog.collisions

    def test_variance_reduction(self, small_library):
        """The point of the method: a lower k standard error at equal
        particle count (checked with a margin; both are noisy)."""
        errs_analog, errs_surv = [], []
        for seed in (11, 12, 13):
            errs_analog.append(
                run(small_library, "event", False, seed=seed, n=250)
                .statistics.result_collision().std_err
            )
            errs_surv.append(
                run(small_library, "event", True, seed=seed, n=250)
                .statistics.result_collision().std_err
            )
        assert np.mean(errs_surv) < 1.25 * np.mean(errs_analog)

    def test_weights_bounded(self, small_library):
        """Roulette keeps weights out of the deep tail: transported weight
        stays within (0, weight_survival]."""
        from repro.data.unionized import UnionizedGrid
        from repro.transport.context import TransportContext
        from repro.transport.events import run_generation_event
        from repro.transport.tally import GlobalTallies

        union = UnionizedGrid(small_library)
        ctx = TransportContext.create(
            small_library, pincell=True, union=union, master_seed=3,
            survival_biasing=True,
        )
        rng = np.random.default_rng(3)
        pos = np.column_stack(
            [rng.uniform(-0.3, 0.3, 50), rng.uniform(-0.3, 0.3, 50),
             rng.uniform(-100, 100, 50)]
        )
        t = GlobalTallies()
        run_generation_event(ctx, pos, np.ones(50), t, 1.0, 0)
        # All weight either transported to completion or rouletted; total
        # absorbed + leaked accounting happens in the tallies, which must
        # be positive and finite.
        assert np.isfinite(t.absorption)
        assert t.absorption > 0
