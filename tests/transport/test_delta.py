"""Tests for Woodcock delta-tracking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.unionized import UnionizedGrid
from repro.errors import ExecutionError, PhysicsError
from repro.transport import Settings, Simulation
from repro.transport.context import TransportContext
from repro.transport.delta import MajorantXS, fold_reflective, run_generation_delta
from repro.transport.tally import GlobalTallies


@pytest.fixture(scope="module")
def ctx(small_library):
    return TransportContext.create(
        small_library, pincell=True, union=UnionizedGrid(small_library),
        master_seed=3,
    )


@pytest.fixture(scope="module")
def majorant(ctx):
    return MajorantXS(ctx)


class TestFoldReflective:
    def test_inside_unchanged(self):
        x, s = fold_reflective(np.array([0.3, -0.4]), 0.5)
        np.testing.assert_allclose(x, [0.3, -0.4])
        np.testing.assert_allclose(s, [1.0, 1.0])

    def test_single_reflection(self):
        """Crossing the +half wall by delta lands at half - delta with a
        flipped direction."""
        x, s = fold_reflective(np.array([0.7]), 0.5)
        assert x[0] == pytest.approx(0.3)
        assert s[0] == -1.0

    def test_double_reflection(self):
        """Crossing both walls returns with the original direction sign."""
        x, s = fold_reflective(np.array([2.1]), 0.5)  # one full period
        assert -0.5 <= x[0] <= 0.5
        assert s[0] == 1.0
        assert x[0] == pytest.approx(0.1)

    def test_negative_side(self):
        x, s = fold_reflective(np.array([-0.8]), 0.5)
        assert x[0] == pytest.approx(-0.2)
        assert s[0] == -1.0

    @given(u=st.floats(min_value=-50, max_value=50))
    @settings(max_examples=80, deadline=None)
    def test_always_inside(self, u):
        x, s = fold_reflective(np.array([u]), 0.63)
        assert -0.63 - 1e-12 <= x[0] <= 0.63 + 1e-12
        assert s[0] in (1.0, -1.0)

    @given(u=st.floats(min_value=-10, max_value=10))
    @settings(max_examples=50, deadline=None)
    def test_continuous_distance_preserved(self, u):
        """Folding is an isometry of the mirrored line: points separated by
        epsilon stay separated by ~epsilon (up to a sign)."""
        eps = 1e-6
        x1, _ = fold_reflective(np.array([u]), 0.63)
        x2, _ = fold_reflective(np.array([u + eps]), 0.63)
        assert abs(abs(x2[0] - x1[0]) - eps) < 1e-9


class TestMajorant:
    def test_bounds_all_materials(self, ctx, majorant, small_library):
        """The defining property: majorant >= Sigma_t everywhere."""
        energies = np.exp(
            np.random.default_rng(0).uniform(np.log(1e-10), np.log(15), 300)
        )
        maj = majorant(energies)
        calc = ctx.calculator
        saved = calc.use_urr
        calc.use_urr = False
        try:
            for material in ctx.model.materials:
                tot = calc.banked(material, energies)["total"]
                assert np.all(tot <= maj * (1 + 1e-9))
        finally:
            calc.use_urr = saved

    def test_requires_union(self, small_library):
        bare = TransportContext.create(small_library, pincell=True, union=None)
        with pytest.raises(PhysicsError):
            MajorantXS(bare)

    def test_positive_everywhere(self, majorant):
        assert np.all(majorant.sigma > 0)


class TestDeltaTransport:
    def test_reflective_pincell_never_leaks(self, ctx, majorant):
        rng = np.random.default_rng(1)
        pos = np.column_stack(
            [rng.uniform(-0.3, 0.3, 200), rng.uniform(-0.3, 0.3, 200),
             rng.uniform(-150, 150, 200)]
        )
        t = GlobalTallies()
        run_generation_delta(
            ctx, pos, np.full(200, 2.0), t, 1.0, 0, majorant=majorant
        )
        assert t.n_leaks == 0

    def test_virtual_collisions_exist(self, ctx, majorant):
        """Delta tracking's cost: flights exceed real collisions."""
        before_f = ctx.counters.flights
        before_c = ctx.counters.collisions
        rng = np.random.default_rng(2)
        pos = np.column_stack(
            [rng.uniform(-0.3, 0.3, 100), rng.uniform(-0.3, 0.3, 100),
             rng.uniform(-100, 100, 100)]
        )
        t = GlobalTallies()
        run_generation_delta(
            ctx, pos, np.full(100, 2.0), t, 1.0, 5000, majorant=majorant
        )
        flights = ctx.counters.flights - before_f
        collisions = ctx.counters.collisions - before_c
        assert flights > collisions > 0

    def test_statistically_unbiased_vs_surface(self, small_library):
        """Same eigenvalue as surface tracking, within error bars."""
        ks = {}
        for mode in ("event", "delta"):
            r = Simulation(
                small_library,
                Settings(
                    n_particles=350, n_inactive=2, n_active=5,
                    pincell=True, mode=mode, seed=6,
                ),
            ).run()
            ks[mode] = r.statistics.result_collision()
        diff = abs(ks["event"].mean - ks["delta"].mean)
        band = 3 * np.hypot(ks["event"].std_err, ks["delta"].std_err) + 0.02
        assert diff < band

    def test_simulation_mode_delta(self, small_library):
        r = Simulation(
            small_library,
            Settings(
                n_particles=150, n_inactive=1, n_active=2, pincell=True,
                mode="delta", seed=8,
            ),
        ).run()
        assert 0.3 < r.k_effective.mean < 1.5
        # No track-length estimator in delta mode.
        assert all(k == 0.0 for k in r.statistics.k_track)

    def test_delta_with_survival_biasing(self, small_library):
        r = Simulation(
            small_library,
            Settings(
                n_particles=150, n_inactive=1, n_active=2, pincell=True,
                mode="delta", seed=8, survival_biasing=True,
            ),
        ).run()
        assert 0.3 < r.k_effective.mean < 1.5

    def test_power_tally_rejected(self):
        with pytest.raises(ExecutionError):
            Settings(mode="delta", tally_power=True)

    def test_full_core_vacuum_leaks(self, small_library):
        """On the vacuum-bounded full core, delta tracking leaks particles
        through the boundary (outside -> dead)."""
        ctx = TransportContext.create(
            small_library, pincell=False,
            union=UnionizedGrid(small_library), master_seed=3,
        )
        maj = MajorantXS(ctx)
        rng = np.random.default_rng(5)
        # Source 1-4 cm from the vacuum boundary so leakage is common.
        pos = np.column_stack(
            [rng.uniform(199.5, 202.5, 100), rng.uniform(-5, 5, 100),
             rng.uniform(-50, 50, 100)]
        )
        t = GlobalTallies()
        run_generation_delta(
            ctx, pos, np.full(100, 2.0), t, 1.0, 0, majorant=maj
        )
        assert t.n_leaks > 0
