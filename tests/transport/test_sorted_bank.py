"""The energy-sorted event bank: sort/unsort round-trip bit-identity.

The ``"energy"`` sort policy reorders only the lookup/flight super-stage's
*processing* order; every per-particle result is scattered back by
absolute bank index and the flight stage's gathered outputs are restored
via the inverse permutation before any accumulation.  These tests pin the
whole contract: a sorted run reproduces the unsorted run's banks exactly —
tally bits, RNG stream consumption, fission-bank append order — across
bank sizes including the degenerate n=0/1 cases, plus the stability of
the ``group_by_value`` dispatch primitive it leans on.
"""

import numpy as np
import pytest

from repro.data.unionized import UnionizedGrid
from repro.transport.backends import EventBackend, get_backend
from repro.transport.context import TransportContext
from repro.transport.events import SORT_POLICIES, run_generation_event
from repro.transport.stages import group_by_value
from repro.transport.tally import GlobalTallies


@pytest.fixture(scope="module")
def union(small_library):
    return UnionizedGrid(small_library)


def source(n, seed=5):
    rng = np.random.default_rng(seed)
    pos = np.column_stack(
        [
            rng.uniform(-0.3, 0.3, n),
            rng.uniform(-0.3, 0.3, n),
            rng.uniform(-150, 150, n),
        ]
    )
    return pos, np.full(n, 1.0)


def run_policy(small_library, union, sort_policy, n=60, **kw):
    ctx = TransportContext.create(
        small_library, pincell=True, union=union, master_seed=7, **kw
    )
    pos, en = source(n)
    tallies = GlobalTallies()
    bank = run_generation_event(
        ctx, pos, en, tallies, 1.0, 0, sort_policy=sort_policy
    )
    return ctx, tallies, bank


class TestGroupByValueStability:
    """The material-dispatch primitive must be *stable*: positions
    ascending within each group, groups in ascending value order — the
    invariant that makes per-group RNG consumption order-independent of
    how the bank was permuted upstream."""

    def test_positions_ascending_within_groups(self):
        values = np.array([2, 0, 1, 2, 0, 2, 1, 0])
        groups = dict(
            (v, pos.tolist()) for v, pos in group_by_value(values)
        )
        assert groups == {0: [1, 4, 7], 1: [2, 6], 2: [0, 3, 5]}

    def test_group_order_ascending(self):
        values = np.array([5, 3, 9, 3, 5])
        order = [v for v, _ in group_by_value(values)]
        assert order == sorted(order) == [3, 5, 9]

    def test_matches_unique_mask_idiom(self):
        rng = np.random.default_rng(11)
        values = rng.integers(0, 7, size=200)
        via_group = {v: pos for v, pos in group_by_value(values)}
        for v in np.unique(values):
            np.testing.assert_array_equal(
                via_group[int(v)], np.flatnonzero(values == v)
            )

    @pytest.mark.parametrize("n", [0, 1])
    def test_degenerate_sizes(self, n):
        values = np.arange(n)
        groups = list(group_by_value(values))
        assert len(groups) == n
        if n:
            v, pos = groups[0]
            assert v == 0 and pos.tolist() == [0]

    def test_group_sets_invariant_under_permutation(self):
        """Permuting the bank permutes positions, but each group's *set*
        of bank indices — hence its RNG streams — is unchanged once
        mapped back through the permutation (the sorted-bank argument)."""
        rng = np.random.default_rng(3)
        values = rng.integers(0, 5, size=64)
        perm = rng.permutation(64)
        base = {v: set(pos.tolist()) for v, pos in group_by_value(values)}
        permuted = {
            v: set(perm[pos].tolist())
            for v, pos in group_by_value(values[perm])
        }
        assert base == permuted


class TestSortPolicyValidation:
    def test_policies_tuple(self):
        assert SORT_POLICIES == ("none", "energy")

    def test_unknown_policy_rejected(self, small_library, union):
        ctx = TransportContext.create(
            small_library, pincell=True, union=union, master_seed=7
        )
        pos, en = source(4)
        with pytest.raises(ValueError, match="sort_policy"):
            run_generation_event(
                ctx, pos, en, GlobalTallies(), sort_policy="entropy"
            )

    def test_event_backend_accepts_policy(self):
        assert EventBackend().sort_policy == "none"
        assert EventBackend(sort_policy="energy").sort_policy == "energy"
        assert get_backend("event").sort_policy == "none"


class TestSortedRoundTrip:
    """Sorted vs unsorted event runs: everything identical, to the bit."""

    @pytest.mark.parametrize("n", [0, 1, 2, 17, 60, 128])
    def test_tallies_bit_identical_across_bank_sizes(
        self, small_library, union, n
    ):
        _, tn, _ = run_policy(small_library, union, "none", n=n)
        _, te, _ = run_policy(small_library, union, "energy", n=n)
        # Bitwise equality, not approx: the inverse permutation restores
        # the exact float summation order.
        assert te.collision == tn.collision
        assert te.absorption == tn.absorption
        assert te.track_length == tn.track_length
        assert te.n_collisions == tn.n_collisions
        assert te.n_leaks == tn.n_leaks

    @pytest.mark.parametrize("n", [0, 1, 17, 60])
    def test_rng_stream_consumption_identical(self, small_library, union, n):
        """Equal work counters (rn_draws above all) prove each particle's
        private stream was consumed draw-for-draw identically."""
        cn, _, _ = run_policy(small_library, union, "none", n=n)
        ce, _, _ = run_policy(small_library, union, "energy", n=n)
        assert cn.counters.as_dict() == ce.counters.as_dict()

    @pytest.mark.parametrize("n", [1, 17, 60, 128])
    def test_fission_bank_append_order_identical(
        self, small_library, union, n
    ):
        bn = run_policy(small_library, union, "none", n=n)[2]
        be = run_policy(small_library, union, "energy", n=n)[2]
        assert len(bn) == len(be)
        # Raw append order, not just canonical order: the sorted schedule
        # forms its fission sub-bank from the same ascending live indices.
        np.testing.assert_array_equal(bn.positions, be.positions)
        np.testing.assert_array_equal(bn.energies, be.energies)

    def test_round_trip_with_survival_biasing(self, small_library, union):
        cn, tn, bn = run_policy(
            small_library, union, "none", survival_biasing=True
        )
        ce, te, be = run_policy(
            small_library, union, "energy", survival_biasing=True
        )
        assert te.collision == tn.collision
        assert te.track_length == tn.track_length
        assert cn.counters.as_dict() == ce.counters.as_dict()
        np.testing.assert_array_equal(bn.energies, be.energies)

    def test_round_trip_without_union_grid(self, small_library):
        """The policy is grid-agnostic: per-nuclide searches sort too."""
        _, tn, bn = run_policy(small_library, None, "none", n=30)
        _, te, be = run_policy(small_library, None, "energy", n=30)
        assert te.collision == tn.collision
        np.testing.assert_array_equal(bn.energies, be.energies)
