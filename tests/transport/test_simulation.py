"""Tests for the batched eigenvalue driver."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.geometry.hoogenboom import MAT_FUEL
from repro.transport import Settings, Simulation


@pytest.fixture(scope="module")
def quick_result(small_library):
    sim = Simulation(
        small_library,
        Settings(
            n_particles=120, n_inactive=1, n_active=3, pincell=True,
            mode="event", seed=11,
        ),
    )
    return sim.run()


class TestSettings:
    def test_bad_mode_rejected(self):
        with pytest.raises(ExecutionError):
            Settings(mode="quantum")

    def test_bad_counts_rejected(self):
        with pytest.raises(ExecutionError):
            Settings(n_particles=0)


class TestInitialSource:
    def test_source_in_fuel(self, small_library):
        sim = Simulation(
            small_library, Settings(n_particles=50, pincell=True, seed=1)
        )
        pos, en = sim.initial_source(50)
        assert np.all(sim.ctx.fast.locate_many(pos) == MAT_FUEL)
        assert np.all(en > 0)

    def test_source_in_full_core_fuel(self, small_library):
        sim = Simulation(
            small_library, Settings(n_particles=30, pincell=False, seed=1)
        )
        pos, _ = sim.initial_source(30)
        assert np.all(sim.ctx.fast.locate_many(pos) == MAT_FUEL)

    def test_watt_spectrum_shape(self, small_library):
        sim = Simulation(small_library, Settings(n_particles=10, pincell=True))
        _, en = sim.initial_source(2000)
        # Watt spectrum with a=0.988, b=2.249 has mean ~2 MeV.
        assert 1.5 < en.mean() < 2.5
        assert en.min() > 0

    def test_deterministic(self, small_library):
        s = Settings(n_particles=20, pincell=True, seed=3)
        p1, e1 = Simulation(small_library, s).initial_source(20)
        p2, e2 = Simulation(small_library, s).initial_source(20)
        np.testing.assert_allclose(p1, p2)
        np.testing.assert_allclose(e1, e2)


class TestRun:
    def test_batch_count(self, quick_result):
        assert quick_result.n_batches == 4
        assert quick_result.statistics.n_batches == 4

    def test_k_physical(self, quick_result):
        k = quick_result.k_effective
        assert 0.3 < k.mean < 1.5

    def test_entropy_recorded(self, quick_result):
        assert len(quick_result.entropy_trace) == 4
        assert all(e >= 0 for e in quick_result.entropy_trace)

    def test_rate_positive(self, quick_result):
        assert quick_result.calculation_rate > 0

    def test_counters_accumulated(self, quick_result):
        c = quick_result.counters
        assert c.lookups > 0
        assert c.collisions > 0
        assert c.flights >= c.collisions

    def test_reproducible(self, small_library):
        s = Settings(
            n_particles=60, n_inactive=1, n_active=2, pincell=True,
            mode="event", seed=21,
        )
        r1 = Simulation(small_library, s).run()
        r2 = Simulation(small_library, s).run()
        np.testing.assert_allclose(
            r1.statistics.k_collision, r2.statistics.k_collision, rtol=1e-14
        )

    def test_seed_changes_results(self, small_library):
        base = dict(
            n_particles=60, n_inactive=1, n_active=2, pincell=True, mode="event"
        )
        r1 = Simulation(small_library, Settings(seed=1, **base)).run()
        r2 = Simulation(small_library, Settings(seed=2, **base)).run()
        assert not np.allclose(
            r1.statistics.k_collision, r2.statistics.k_collision
        )

    def test_estimators_agree_statistically(self, small_library):
        """Collision, absorption, and track-length estimators of the same
        run agree within a loose statistical band."""
        r = Simulation(
            small_library,
            Settings(
                n_particles=250, n_inactive=1, n_active=4, pincell=True,
                mode="event", seed=31,
            ),
        ).run()
        kc = r.statistics.result_collision().mean
        ka = r.statistics.result_absorption().mean
        kt = r.statistics.result_track().mean
        assert ka == pytest.approx(kc, rel=0.15)
        assert kt == pytest.approx(kc, rel=0.15)
