"""History vs event transport: the bit-equivalence contract.

The event-based (banked) algorithm restructures control flow completely —
per-material grouping, compressed sub-banks, masked retry loops — yet must
compute *the same Monte Carlo game*.  These tests enforce the strongest
version of that claim: identical per-batch tallies, identical fission banks,
and identical work counters, for the same seed.
"""

import numpy as np
import pytest

from repro.data.unionized import UnionizedGrid
from repro.transport import Settings, Simulation
from repro.transport.context import TransportContext
from repro.transport.events import run_generation_event
from repro.transport.history import run_generation_history
from repro.transport.tally import GlobalTallies


@pytest.fixture(scope="module")
def union(small_library):
    return UnionizedGrid(small_library)


def make_ctx(small_library, union, **kw):
    return TransportContext.create(
        small_library, pincell=True, union=union, master_seed=7, **kw
    )


def source(n, seed=5):
    rng = np.random.default_rng(seed)
    pos = np.column_stack(
        [
            rng.uniform(-0.3, 0.3, n),
            rng.uniform(-0.3, 0.3, n),
            rng.uniform(-150, 150, n),
        ]
    )
    return pos, np.full(n, 1.0)


def run_both(small_library, union, n=60, **kw):
    pos, en = source(n)
    ctx_h = make_ctx(small_library, union, **kw)
    th = GlobalTallies()
    bank_h = run_generation_history(ctx_h, pos, en, th, 1.0, 0)
    ctx_e = make_ctx(small_library, union, **kw)
    te = GlobalTallies()
    bank_e = run_generation_event(ctx_e, pos, en, te, 1.0, 0)
    return (ctx_h, th, bank_h), (ctx_e, te, bank_e)


class TestSingleGeneration:
    def test_tallies_identical(self, small_library, union):
        (_, th, _), (_, te, _) = run_both(small_library, union)
        assert te.collision == pytest.approx(th.collision, rel=1e-12)
        assert te.absorption == pytest.approx(th.absorption, rel=1e-12)
        assert te.track_length == pytest.approx(th.track_length, rel=1e-12)
        assert te.n_collisions == th.n_collisions
        assert te.n_leaks == th.n_leaks

    def test_fission_banks_identical(self, small_library, union):
        (_, _, bh), (_, _, be) = run_both(small_library, union)
        assert len(bh) == len(be)
        np.testing.assert_allclose(bh.positions, be.positions, rtol=1e-12)
        np.testing.assert_allclose(bh.energies, be.energies, rtol=1e-12)

    def test_work_counters_identical(self, small_library, union):
        (ch, _, _), (ce, _, _) = run_both(small_library, union)
        assert ch.counters.as_dict() == ce.counters.as_dict()

    def test_equivalence_without_urr(self, small_library, union):
        (_, th, bh), (_, te, be) = run_both(
            small_library, union, use_urr=False
        )
        assert te.collision == pytest.approx(th.collision, rel=1e-12)
        np.testing.assert_allclose(bh.energies, be.energies, rtol=1e-12)

    def test_equivalence_without_sab(self, small_library, union):
        (_, th, bh), (_, te, be) = run_both(
            small_library, union, use_sab=False
        )
        assert te.collision == pytest.approx(th.collision, rel=1e-12)
        np.testing.assert_allclose(bh.energies, be.energies, rtol=1e-12)

    def test_equivalence_without_union_grid(self, small_library):
        (_, th, _), (_, te, _) = run_both(small_library, None, n=30)
        assert te.collision == pytest.approx(th.collision, rel=1e-12)


class TestFullSimulation:
    def test_multibatch_identical(self, small_library):
        common = dict(
            n_particles=80, n_inactive=1, n_active=2, pincell=True, seed=7
        )
        rh = Simulation(small_library, Settings(mode="history", **common)).run()
        re = Simulation(small_library, Settings(mode="event", **common)).run()
        np.testing.assert_allclose(
            rh.statistics.k_collision, re.statistics.k_collision, rtol=1e-12
        )
        np.testing.assert_allclose(
            rh.statistics.k_track, re.statistics.k_track, rtol=1e-12
        )
        np.testing.assert_allclose(
            rh.statistics.k_absorption, re.statistics.k_absorption, rtol=1e-12
        )
        assert rh.counters.as_dict() == re.counters.as_dict()

    def test_full_core_generation_equivalence(self, small_library):
        """One generation on the full H.M. core (vacuum boundaries)."""
        union = UnionizedGrid(small_library)
        pos, en = source(40, seed=9)
        # Scale positions into the central assembly of the core.
        pos[:, 2] = np.random.default_rng(2).uniform(-150, 150, 40)
        ctx_h = TransportContext.create(
            small_library, pincell=False, union=union, master_seed=7
        )
        th = GlobalTallies()
        bh = run_generation_history(ctx_h, pos, en, th, 1.0, 0)
        ctx_e = TransportContext.create(
            small_library, pincell=False, union=union, master_seed=7
        )
        te = GlobalTallies()
        be = run_generation_event(ctx_e, pos, en, te, 1.0, 0)
        assert te.collision == pytest.approx(th.collision, rel=1e-12)
        assert te.n_leaks == th.n_leaks
        assert len(bh) == len(be)


class TestSurvivalBiasingEquivalence:
    """Implicit capture restructures every collision (weight reduction,
    expected fission sites, conditional roulette) — the compacted/sorted
    event loop must still mirror the history protocol draw for draw."""

    def test_tallies_identical(self, small_library, union):
        (_, th, _), (_, te, _) = run_both(
            small_library, union, survival_biasing=True
        )
        assert te.collision == pytest.approx(th.collision, rel=1e-12)
        assert te.absorption == pytest.approx(th.absorption, rel=1e-12)
        assert te.track_length == pytest.approx(th.track_length, rel=1e-12)
        assert te.n_leaks == th.n_leaks

    def test_fission_banks_identical(self, small_library, union):
        (_, _, bh), (_, _, be) = run_both(
            small_library, union, survival_biasing=True
        )
        assert len(bh) == len(be)
        # Surviving particles accumulate many more flights than analog ones,
        # so last-ulp scalar-vs-vector libm differences can reach ~1e-14 cm
        # on near-zero coordinates; atol covers those (domain is ~±200 cm).
        np.testing.assert_allclose(
            bh.positions, be.positions, rtol=1e-12, atol=1e-12
        )
        np.testing.assert_allclose(bh.energies, be.energies, rtol=1e-12)

    def test_work_counters_identical(self, small_library, union):
        (ch, _, _), (ce, _, _) = run_both(
            small_library, union, survival_biasing=True
        )
        assert ch.counters.as_dict() == ce.counters.as_dict()


class TestSabUrrOnEquivalence:
    """Both branchy physics treatments explicitly enabled, across bank
    sizes that exercise full lanes, partial lanes, and single particles."""

    @pytest.mark.parametrize("n", [1, 17, 60, 128])
    def test_tallies_identical_across_bank_sizes(
        self, small_library, union, n
    ):
        (_, th, _), (_, te, _) = run_both(
            small_library, union, n=n, use_sab=True, use_urr=True
        )
        assert te.collision == pytest.approx(th.collision, rel=1e-12)
        assert te.absorption == pytest.approx(th.absorption, rel=1e-12)
        assert te.track_length == pytest.approx(th.track_length, rel=1e-12)

    @pytest.mark.parametrize("n", [1, 17, 60])
    def test_counters_and_banks_identical(self, small_library, union, n):
        (ch, _, bh), (ce, _, be) = run_both(
            small_library, union, n=n, use_sab=True, use_urr=True
        )
        assert ch.counters.as_dict() == ce.counters.as_dict()
        assert ch.counters.sab_samples > 0 or n == 1
        assert len(bh) == len(be)
        np.testing.assert_allclose(bh.positions, be.positions, rtol=1e-12)
        np.testing.assert_allclose(bh.energies, be.energies, rtol=1e-12)
