"""Tests for the assembly power tally."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.transport import Settings, Simulation
from repro.transport.meshtally import PowerTally


class TestMeshIndexing:
    def make(self):
        return PowerTally(shape=(4, 4), half_width=2.0)

    def test_corner_cells(self):
        t = self.make()
        iy, ix = t.cell_indices(np.array([[-1.9, -1.9, 0.0], [1.9, 1.9, 0.0]]))
        assert (iy[0], ix[0]) == (0, 0)
        assert (iy[1], ix[1]) == (3, 3)

    def test_out_of_mesh_clamps(self):
        t = self.make()
        iy, ix = t.cell_indices(np.array([[10.0, -10.0, 0.0]]))
        assert (iy[0], ix[0]) == (0, 3)

    def test_validation(self):
        with pytest.raises(ReproError):
            PowerTally(shape=(0, 4))


class TestScoring:
    def test_scalar_and_vector_agree(self):
        rng = np.random.default_rng(0)
        pos = rng.uniform(-2, 2, (50, 3))
        w = rng.random(50)
        d = rng.random(50)
        sf = rng.random(50)
        a = PowerTally(shape=(4, 4), half_width=2.0)
        b = PowerTally(shape=(4, 4), half_width=2.0)
        for i in range(50):
            a.score_track(pos[i], w[i], d[i], sf[i])
        b.score_track_many(pos, w, d, sf)
        a.end_batch(50.0)
        b.end_batch(50.0)
        np.testing.assert_allclose(a.mean, b.mean, rtol=1e-12)

    def test_zero_sigma_f_ignored(self):
        t = PowerTally(shape=(2, 2), half_width=1.0)
        t.score_track(np.zeros(3), 1.0, 1.0, 0.0)
        t.end_batch(1.0)
        assert t.mean.sum() == 0.0

    def test_batch_statistics(self):
        t = PowerTally(shape=(1, 1), half_width=1.0)
        for score in (2.0, 4.0, 6.0):
            t.score_track(np.zeros(3), score, 1.0, 1.0)
            t.end_batch(1.0)
        assert t.n_batches == 3
        assert t.mean[0, 0] == pytest.approx(4.0)
        # Relative standard error of the batch mean.
        expected_err = np.std([2, 4, 6], ddof=1) / np.sqrt(3) / 4.0
        assert t.rel_err[0, 0] == pytest.approx(expected_err)

    def test_rel_err_inf_before_two_batches(self):
        t = PowerTally(shape=(1, 1), half_width=1.0)
        t.score_track(np.zeros(3), 1.0, 1.0, 1.0)
        t.end_batch(1.0)
        assert np.isinf(t.rel_err[0, 0])

    def test_end_batch_requires_weight(self):
        t = PowerTally(shape=(1, 1), half_width=1.0)
        with pytest.raises(ReproError):
            t.end_batch(0.0)

    def test_normalized_power_mean_one(self):
        t = PowerTally(shape=(2, 2), half_width=1.0)
        t.score_track(np.array([-0.5, -0.5, 0.0]), 3.0, 1.0, 1.0)
        t.score_track(np.array([0.5, 0.5, 0.0]), 1.0, 1.0, 1.0)
        t.end_batch(1.0)
        norm = t.normalized_power()
        fueled = norm > 0
        assert norm[fueled].mean() == pytest.approx(1.0)


class TestFullCorePower:
    @pytest.fixture(scope="class")
    def result(self, small_library):
        sim = Simulation(
            small_library,
            Settings(
                n_particles=150, n_inactive=1, n_active=3, pincell=False,
                mode="event", seed=9, tally_power=True,
            ),
        )
        return sim.run()

    def test_power_confined_to_core_footprint(self, result):
        assert result.power.footprint_matches_core()

    def test_active_batches_only(self, result):
        assert result.power.n_batches == 3

    def test_symmetryish(self, result):
        """With few particles the map is noisy, but total power is
        positive and spread over many assemblies."""
        mean = result.power.mean
        assert (mean > 0).sum() > 20

    def test_history_and_event_power_identical(self, small_library):
        common = dict(
            n_particles=80, n_inactive=1, n_active=2, pincell=False,
            seed=9, tally_power=True,
        )
        ph = Simulation(small_library, Settings(mode="history", **common)).run()
        pe = Simulation(small_library, Settings(mode="event", **common)).run()
        np.testing.assert_allclose(ph.power.mean, pe.power.mean, rtol=1e-10)

    def test_footprint_check_requires_default_mesh(self):
        t = PowerTally(shape=(4, 4), half_width=2.0)
        with pytest.raises(ReproError):
            t.footprint_matches_core()
