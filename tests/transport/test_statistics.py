"""Tests for figure-of-merit statistics."""

import pytest

from repro.errors import ReproError
from repro.transport import Settings, Simulation
from repro.transport.statistics import (
    EfficiencyComparison,
    figure_of_merit,
    fom_of_result,
)


class TestFigureOfMerit:
    def test_formula(self):
        assert figure_of_merit(0.1, 10.0) == pytest.approx(10.0)

    def test_invariant_under_longer_runs(self):
        """Quadrupling the time halves the error: FOM unchanged."""
        assert figure_of_merit(0.05, 40.0) == pytest.approx(
            figure_of_merit(0.1, 10.0)
        )

    def test_validation(self):
        with pytest.raises(ReproError):
            figure_of_merit(0.0, 1.0)
        with pytest.raises(ReproError):
            figure_of_merit(0.1, 0.0)


class TestFOMOfResult:
    @pytest.fixture(scope="class")
    def results(self, small_library):
        out = {}
        for label, survival in (("analog", False), ("survival", True)):
            out[label] = Simulation(
                small_library,
                Settings(
                    n_particles=200, n_inactive=1, n_active=4,
                    pincell=True, mode="event", seed=33,
                    survival_biasing=survival,
                ),
            ).run()
        return out

    def test_fom_positive(self, results):
        for r in results.values():
            assert fom_of_result(r) > 0

    def test_comparison(self, results):
        cmp = EfficiencyComparison.of(
            "analog", results["analog"], "survival", results["survival"]
        )
        assert cmp.ratio > 0
        assert cmp.fom_a == pytest.approx(fom_of_result(results["analog"]))

    def test_single_batch_rejected(self, small_library):
        r = Simulation(
            small_library,
            Settings(
                n_particles=60, n_inactive=0, n_active=1, pincell=True,
                mode="event", seed=3,
            ),
        ).run()
        with pytest.raises(ReproError):
            fom_of_result(r)
