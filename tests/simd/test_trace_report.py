"""Lane-utilization reports on *real* queue traces from both backends.

The unified :class:`~repro.transport.stats.TransportStats` means the SIMD
analysis no longer cares which schedule produced the trace: an event trace
shows the large, shrinking banks of the banked schedule; a history trace
shows per-history stage counts — what vectorizing those histories as-is
would waste."""

import numpy as np
import pytest

from repro.data.unionized import UnionizedGrid
from repro.simd.analysis import lane_utilization_report
from repro.transport.backends import get_backend
from repro.transport.context import TransportContext
from repro.transport.stats import TransportStats
from repro.transport.tally import GlobalTallies


@pytest.fixture(scope="module")
def traces(small_library):
    union = UnionizedGrid(small_library)
    out = {}
    for name in ("history", "event"):
        ctx = TransportContext.create(
            small_library, pincell=True, union=union, master_seed=7
        )
        rng = np.random.default_rng(5)
        n = 80
        pos = np.column_stack(
            [rng.uniform(-0.3, 0.3, n), rng.uniform(-0.3, 0.3, n),
             rng.uniform(-150, 150, n)]
        )
        stats = TransportStats()
        get_backend(name).run_generation(
            ctx, pos, np.ones(n), GlobalTallies(), 1.0, 0, stats=stats
        )
        out[name] = (ctx, stats)
    return out


def test_report_works_on_either_backend(traces):
    for name, (_, stats) in traces.items():
        report = lane_utilization_report(stats, width=16)
        assert report["iterations"] == stats.iterations
        assert set(report["stages"]) == {"lookup", "collision", "crossing"}
        for occ in report["stages"].values():
            assert 0.0 < occ["lane_efficiency"] <= 1.0


def test_column_totals_backend_invariant(traces):
    (ch, sh), (ce, se) = traces["history"], traces["event"]
    assert int(sh.lookup_counts.sum()) == int(se.lookup_counts.sum())
    assert int(sh.collision_counts.sum()) == int(se.collision_counts.sum())
    assert int(sh.crossing_counts.sum()) == int(se.crossing_counts.sum())
    # And the trace totals are the context's own work counters.
    assert int(sh.lookup_counts.sum()) == ch.counters.lookups
    assert int(se.lookup_counts.sum()) == ce.counters.lookups


def test_trace_granularity_per_backend(traces):
    """History records one row per source history (its totals); event
    records one row per event cycle (the shrinking bank)."""
    _, sh = traces["history"]
    _, se = traces["event"]
    assert sh.iterations == 80  # one row per source history
    assert se.iterations > 0
    # The event loop's first cycles process the full live bank; no single
    # history performs that many lookups in one row's worth of work.
    assert int(se.lookup_counts[0]) == 80
    assert int(se.lookup_counts[-1]) < 80  # the bank drains


def test_gather_metric_absent_on_history_trace(traces):
    """The history schedule records no gather stream: the report says so
    explicitly rather than inventing a locality number."""
    _, sh = traces["history"]
    report = lane_utilization_report(sh, width=16)
    assert report["gather"]["mean_stride"] is None
    assert report["gather"]["strides"] == 0


def test_gather_metric_present_on_event_trace(traces):
    _, se = traces["event"]
    report = lane_utilization_report(se, width=16)
    assert report["gather"]["strides"] > 0
    assert report["gather"]["mean_stride"] >= 0.0


def test_energy_sorting_shrinks_gather_stride(small_library):
    """The point of the energy-sorted bank: consecutive union-grid gathers
    become near-sequential, so the mean index stride collapses versus the
    unsorted schedule's random walk across the grid."""
    union = UnionizedGrid(small_library)
    strides = {}
    for policy in ("none", "energy"):
        ctx = TransportContext.create(
            small_library, pincell=True, union=union, master_seed=7
        )
        rng = np.random.default_rng(5)
        n = 80
        pos = np.column_stack(
            [rng.uniform(-0.3, 0.3, n), rng.uniform(-0.3, 0.3, n),
             rng.uniform(-150, 150, n)]
        )
        stats = TransportStats()
        backend = get_backend("event")
        backend.sort_policy = policy
        backend.run_generation(
            ctx, pos, np.ones(n), GlobalTallies(), 1.0, 0, stats=stats
        )
        strides[policy] = lane_utilization_report(stats)["gather"][
            "mean_stride"
        ]
    assert strides["energy"] < strides["none"] / 10


def test_record_gather_indices_degenerate():
    """Streams shorter than two indices contribute no strides."""
    stats = TransportStats()
    stats.record_gather_indices(np.array([], dtype=np.int64))
    stats.record_gather_indices(np.array([42]))
    assert stats.gather_mean_stride is None
    stats.record_gather_indices(np.array([5, 8, 2]))
    assert stats.gather_mean_stride == pytest.approx((3 + 6) / 2)


def test_wider_lanes_hurt_the_drained_event_tail(traces):
    """Fig. 3's mechanism in miniature: the event trace's lane efficiency
    falls as the vector width grows, because the late-generation tail
    can no longer fill the lanes."""
    _, se = traces["event"]
    eff = [
        lane_utilization_report(se, width=w)["stages"]["lookup"][
            "lane_efficiency"
        ]
        for w in (4, 16, 64)
    ]
    assert eff[0] > eff[1] > eff[2]
