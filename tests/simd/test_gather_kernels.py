"""Tests for compress/expand primitives and intrinsics-style kernels."""

import numpy as np
import pytest

from repro.simd.analysis import divergence_loss, queue_lane_efficiency
from repro.simd.gather import compress, expand, partition_by_key
from repro.simd.kernels import (
    distance_kernel_intrinsics,
    distance_kernel_scalar,
    instruction_ratio,
    masked_lookup_kernel,
)
from repro.simd.lanes import VectorUnit


class TestCompressExpand:
    def test_compress_packs_masked(self):
        vu = VectorUnit(width=4)
        a = np.arange(10.0)
        (packed,) = compress(vu, a % 2 == 0, a)
        np.testing.assert_allclose(packed, [0, 2, 4, 6, 8])

    def test_compress_multiple_arrays(self):
        vu = VectorUnit(width=4)
        a = np.arange(6.0)
        b = a * 10
        pa, pb = compress(vu, a >= 3, a, b)
        np.testing.assert_allclose(pa, [3, 4, 5])
        np.testing.assert_allclose(pb, [30, 40, 50])

    def test_expand_inverts_compress(self):
        vu = VectorUnit(width=4)
        a = np.arange(10.0)
        mask = a % 3 == 0
        (packed,) = compress(vu, mask, a)
        out = np.full(10, -1.0)
        expand(vu, mask, packed * 2, out)
        np.testing.assert_allclose(out[mask], a[mask] * 2)
        assert np.all(out[~mask] == -1.0)

    def test_expand_length_check(self):
        vu = VectorUnit()
        with pytest.raises(ValueError):
            expand(vu, np.array([True, False]), np.zeros(2), np.zeros(2))

    def test_partition_by_key(self):
        vu = VectorUnit(width=4)
        keys = np.array([0, 1, 0, 2, 1])
        vals = np.arange(5.0)
        parts = partition_by_key(vu, keys, vals)
        np.testing.assert_allclose(parts[0][0], [0, 2])
        np.testing.assert_allclose(parts[1][0], [1, 4])
        np.testing.assert_allclose(parts[2][0], [3])


class TestDistanceKernels:
    def test_vector_matches_scalar(self):
        rng = np.random.default_rng(1)
        r = rng.random(100) * 0.9 + 0.05
        x = rng.random(100) + 0.5
        d_vec = distance_kernel_intrinsics(VectorUnit(16), r, x)
        d_scal = distance_kernel_scalar(VectorUnit(16), r, x)
        np.testing.assert_allclose(d_vec, d_scal, rtol=1e-12)

    def test_matches_reference_formula(self):
        r = np.array([0.5, 0.25])
        x = np.array([2.0, 1.0])
        d = distance_kernel_intrinsics(VectorUnit(16), r, x)
        np.testing.assert_allclose(d, -np.log(r) / x)

    def test_instruction_ratio_near_width(self):
        """For N >> width, scalar issues ~width/3 x more instructions than
        the 3-instruction vector pipeline (1 scalar op = fused -log/div)."""
        stats = instruction_ratio(16 * 100, width=16)
        # vector: 3 ops x 100 chunks = 300; scalar: 1600.
        assert stats["vector_instructions"] == 300
        assert stats["scalar_instructions"] == 1600

    def test_masked_lookup_efficiency(self):
        vu = VectorUnit(width=8)
        sigma = np.ones(64)
        mask = np.zeros(64, dtype=bool)
        mask[:8] = True  # only 1/8 of lanes take the URR branch
        out = masked_lookup_kernel(vu, sigma, mask, np.full(64, 2.0))
        assert np.all(out[:8] == 2.0) and np.all(out[8:] == 1.0)
        assert vu.counters.lane_efficiency == pytest.approx(1 / 8)


class TestAnalysis:
    def test_full_queues_full_efficiency(self):
        assert queue_lane_efficiency([160, 320], width=16) == 1.0

    def test_tiny_queues_waste_lanes(self):
        # Queue of 1 on a 16-lane machine: 1/16.
        assert queue_lane_efficiency([1], width=16) == pytest.approx(1 / 16)

    def test_draining_generation(self):
        """Efficiency of a draining event loop falls between the extremes."""
        sizes = [1000, 600, 300, 100, 30, 9, 3, 1]
        eff = queue_lane_efficiency(sizes, width=16)
        assert 0.5 < eff < 1.0

    def test_zero_queues_skipped(self):
        assert queue_lane_efficiency([0, 0, 16], width=16) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            queue_lane_efficiency([-1])

    def test_divergence_loss_single_branch(self):
        assert divergence_loss([1.0]) == 1.0

    def test_divergence_loss_three_branches(self):
        """Three executed branches under masking: 1/3 efficiency."""
        assert divergence_loss([0.5, 0.3, 0.2]) == pytest.approx(1 / 3)

    def test_divergence_validates(self):
        with pytest.raises(ValueError):
            divergence_loss([0.9, 0.9])
