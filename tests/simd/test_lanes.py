"""Tests for the counting vector-lane machine."""

import numpy as np
import pytest

from repro.errors import MachineModelError
from repro.simd.lanes import VectorUnit


class TestElementwise:
    def test_result_matches_numpy(self):
        vu = VectorUnit(width=16)
        a = np.linspace(1.0, 2.0, 50)
        b = np.linspace(0.5, 1.5, 50)
        np.testing.assert_allclose(vu.elementwise(np.add, a, b), a + b)

    def test_instruction_count_is_chunks(self):
        vu = VectorUnit(width=16)
        vu.elementwise(np.negative, np.ones(50))
        assert vu.counters.vector_instructions == 4  # ceil(50/16)

    def test_exact_multiple(self):
        vu = VectorUnit(width=8)
        vu.elementwise(np.negative, np.ones(64))
        assert vu.counters.vector_instructions == 8
        assert vu.counters.lane_efficiency == 1.0

    def test_partial_tail_costs_full_chunk(self):
        vu = VectorUnit(width=16)
        vu.elementwise(np.negative, np.ones(17))
        assert vu.counters.vector_instructions == 2
        assert vu.counters.lane_slots_total == 32
        assert vu.counters.lane_slots_active == 17

    def test_masked_merge_semantics(self):
        vu = VectorUnit(width=4)
        a = np.arange(8.0)
        mask = a >= 4
        out = vu.elementwise(np.negative, a, mask=mask)
        np.testing.assert_allclose(out[:4], a[:4])  # preserved
        np.testing.assert_allclose(out[4:], -a[4:])  # computed

    def test_masked_lane_efficiency(self):
        vu = VectorUnit(width=4)
        a = np.arange(8.0)
        vu.elementwise(np.negative, a, mask=a < 2)
        assert vu.counters.lane_efficiency == pytest.approx(2 / 8)

    def test_length_mismatch(self):
        vu = VectorUnit()
        with pytest.raises(MachineModelError):
            vu.elementwise(np.add, np.ones(4), np.ones(5))

    def test_invalid_width(self):
        with pytest.raises(MachineModelError):
            VectorUnit(width=0)


class TestScalarLoop:
    def test_counts_per_element(self):
        vu = VectorUnit(width=16)
        out = vu.scalar_loop(lambda x: -x, np.arange(10.0))
        np.testing.assert_allclose(out, -np.arange(10.0))
        assert vu.counters.scalar_instructions == 10


class TestGatherScatter:
    def test_gather(self):
        vu = VectorUnit(width=4)
        table = np.arange(100.0)
        idx = np.array([5, 50, 99, 0, 1])
        np.testing.assert_allclose(vu.gather(table, idx), table[idx])
        assert vu.counters.gather_instructions == 2

    def test_scatter(self):
        vu = VectorUnit(width=4)
        out = np.zeros(10)
        vu.scatter(out, np.array([1, 3]), np.array([7.0, 8.0]))
        assert out[1] == 7.0 and out[3] == 8.0
        assert vu.counters.gather_instructions == 1

    def test_reset(self):
        vu = VectorUnit()
        vu.elementwise(np.negative, np.ones(5))
        vu.reset()
        assert vu.counters.vector_instructions == 0
        assert vu.counters.lane_efficiency == 1.0
