"""Tests for collision-distance sampling (Algorithms 3 and 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PhysicsError
from repro.physics.distance import (
    sample_distance_from_uniforms,
    sample_distance_naive,
    sample_distance_optimized1,
    sample_distance_optimized2,
)
from repro.work import WorkCounters


@pytest.fixture()
def sigma():
    return np.random.default_rng(0).uniform(0.2, 3.0, 64)


class TestReference:
    def test_formula(self):
        xi = np.array([np.exp(-1.0)])
        st_ = np.array([2.0])
        d = sample_distance_from_uniforms(xi, st_)
        assert d[0] == pytest.approx(0.5)

    @given(xi=st.floats(min_value=1e-10, max_value=1 - 1e-12),
           sig=st.floats(min_value=0.01, max_value=100.0))
    @settings(max_examples=50, deadline=None)
    def test_positive(self, xi, sig):
        d = sample_distance_from_uniforms(np.array([xi]), np.array([sig]))
        assert d[0] >= 0


class TestImplementationsAgree:
    """All three implementations draw from the same master sequence, so a
    single iteration produces identical distances."""

    def test_naive_vs_opt1_single_stream(self, sigma):
        d_naive = sample_distance_naive(sigma, 1, seed=9)
        d_opt1 = sample_distance_optimized1(sigma, 1, nstreams=1, seed=9)
        np.testing.assert_allclose(d_naive, d_opt1, rtol=1e-12)

    def test_opt1_vs_opt2(self, sigma):
        d1 = sample_distance_optimized1(sigma, 4, nstreams=4, seed=9)
        d2 = sample_distance_optimized2(sigma, 4, nstreams=4, seed=9)
        np.testing.assert_allclose(d1, d2, rtol=1e-12)

    def test_opt2_f32_close(self, sigma):
        d1 = sample_distance_optimized1(sigma, 2, nstreams=4, seed=9)
        d2 = sample_distance_optimized2(sigma, 2, nstreams=4, seed=9, use_f32=True)
        np.testing.assert_allclose(d1, d2, rtol=1e-5)

    def test_blocking_does_not_change_results(self, sigma):
        a = sample_distance_optimized2(sigma, 2, nstreams=4, seed=9, block=8)
        b = sample_distance_optimized2(sigma, 2, nstreams=4, seed=9, block=10_000)
        np.testing.assert_allclose(a, b, rtol=1e-14)


class TestStatistics:
    def test_exponential_mean(self):
        """d ~ Exp(sigma): mean = 1/sigma."""
        sigma = np.full(20_000, 2.0)
        d = sample_distance_optimized1(sigma, 1, nstreams=4, seed=3)
        assert d.mean() == pytest.approx(0.5, rel=0.05)

    def test_all_positive(self, sigma):
        d = sample_distance_optimized2(sigma, 3, nstreams=4, seed=1)
        assert np.all(d > 0)


class TestValidationAndCounters:
    def test_divisibility_check(self, sigma):
        with pytest.raises(PhysicsError):
            sample_distance_optimized1(sigma[:10], 1, nstreams=3)
        with pytest.raises(PhysicsError):
            sample_distance_optimized2(sigma[:10], 1, nstreams=3)

    def test_counters(self, sigma):
        c = WorkCounters()
        sample_distance_optimized1(sigma, 5, nstreams=4, seed=1, counters=c)
        assert c.rn_draws == sigma.size * 5
        assert c.flights == sigma.size * 5

    def test_naive_counters(self, sigma):
        c = WorkCounters()
        sample_distance_naive(sigma[:8], 2, counters=c)
        assert c.rn_draws == 16
