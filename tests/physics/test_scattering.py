"""Tests for elastic kinematics and direction sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.physics.scattering import (
    elastic_scatter,
    elastic_scatter_many,
    isotropic_direction,
    isotropic_direction_many,
    rotate_direction,
    rotate_direction_many,
)


class TestElasticScatter:
    def test_energy_bounds(self):
        """alpha E <= E' <= E with alpha = ((A-1)/(A+1))^2."""
        a = 238.0
        alpha = ((a - 1) / (a + 1)) ** 2
        for xi in (0.0, 0.3, 0.9, 1.0):
            e_out, _ = elastic_scatter(1.0, a, xi)
            assert alpha - 1e-12 <= e_out <= 1.0 + 1e-12

    def test_hydrogen_full_moderation(self):
        """Off A=1, backscatter (mu_c=-1) stops the neutron."""
        e_out, _ = elastic_scatter(1.0, 1.0, 0.0)
        assert e_out == pytest.approx(0.0, abs=1e-12)

    def test_forward_scatter_no_loss(self):
        e_out, mu = elastic_scatter(1.0, 12.0, 1.0)  # mu_c = +1
        assert e_out == pytest.approx(1.0)
        assert mu == pytest.approx(1.0)

    def test_heavy_target_small_loss(self):
        e_out, _ = elastic_scatter(1.0, 238.0, 0.0)
        assert e_out > 0.98

    def test_lab_cosine_valid(self):
        for a in (1.0, 16.0, 238.0):
            for xi in np.linspace(0, 1, 11):
                _, mu = elastic_scatter(1.0, a, xi)
                assert -1.0 - 1e-12 <= mu <= 1.0 + 1e-12

    def test_vectorized_matches_scalar(self):
        rng = np.random.default_rng(2)
        e = rng.uniform(0.01, 10, 50)
        awr = rng.uniform(1, 240, 50)
        xi = rng.random(50)
        e_v, mu_v = elastic_scatter_many(e, awr, xi)
        for j in range(50):
            e_s, mu_s = elastic_scatter(e[j], awr[j], xi[j])
            assert e_v[j] == pytest.approx(e_s)
            assert mu_v[j] == pytest.approx(mu_s)

    def test_mean_energy_loss_hydrogen(self):
        """<E'/E> = (1 + alpha)/2 = 0.5 for hydrogen."""
        xi = np.random.default_rng(3).random(20_000)
        e_out, _ = elastic_scatter_many(np.ones(20_000), 1.0, xi)
        assert e_out.mean() == pytest.approx(0.5, abs=0.01)


class TestIsotropicDirection:
    def test_unit_norm(self):
        u = isotropic_direction(0.3, 0.7)
        assert np.linalg.norm(u) == pytest.approx(1.0)

    def test_vectorized_matches_scalar(self):
        rng = np.random.default_rng(4)
        xi1, xi2 = rng.random(20), rng.random(20)
        many = isotropic_direction_many(xi1, xi2)
        for j in range(20):
            np.testing.assert_allclose(
                many[j], isotropic_direction(xi1[j], xi2[j]), rtol=1e-12
            )

    def test_uniform_on_sphere(self):
        rng = np.random.default_rng(5)
        u = isotropic_direction_many(rng.random(50_000), rng.random(50_000))
        # Each component has zero mean and variance 1/3.
        assert np.allclose(u.mean(axis=0), 0.0, atol=0.02)
        assert np.allclose(u.var(axis=0), 1 / 3, atol=0.02)


class TestRotateDirection:
    def test_preserves_norm(self):
        u = np.array([0.6, 0.8, 0.0])
        v = rotate_direction(u, 0.3, 1.2)
        assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_achieves_requested_cosine(self):
        u = np.array([0.0, 0.0, 1.0])
        for mu in (-0.9, -0.2, 0.5, 0.99):
            v = rotate_direction(u, mu, 2.0)
            assert np.dot(u, v) == pytest.approx(mu, abs=1e-10)

    @given(
        mu=st.floats(min_value=-1.0, max_value=1.0),
        phi=st.floats(min_value=0.0, max_value=2 * np.pi),
        theta=st.floats(min_value=0.01, max_value=np.pi - 0.01),
        az=st.floats(min_value=0.0, max_value=2 * np.pi),
    )
    @settings(max_examples=60, deadline=None)
    def test_cosine_property(self, mu, phi, theta, az):
        u = np.array(
            [np.sin(theta) * np.cos(az), np.sin(theta) * np.sin(az), np.cos(theta)]
        )
        v = rotate_direction(u, mu, phi)
        assert np.dot(u, v) == pytest.approx(mu, abs=1e-9)
        assert np.linalg.norm(v) == pytest.approx(1.0, abs=1e-12)

    def test_polar_direction_handled(self):
        u = np.array([0.0, 0.0, 1.0])
        v = rotate_direction(u, 0.5, 0.3)
        assert np.linalg.norm(v) == pytest.approx(1.0)
        assert v[2] == pytest.approx(0.5)

    def test_vectorized_matches_scalar(self):
        rng = np.random.default_rng(6)
        dirs = rng.standard_normal((40, 3))
        dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
        mu = rng.uniform(-1, 1, 40)
        phi = rng.uniform(0, 2 * np.pi, 40)
        many = rotate_direction_many(dirs, mu, phi)
        for j in range(40):
            np.testing.assert_allclose(
                many[j], rotate_direction(dirs[j], mu[j], phi[j]), atol=1e-10
            )

    def test_vectorized_polar(self):
        dirs = np.array([[0.0, 0.0, 1.0], [0.0, 0.0, -1.0]])
        out = rotate_direction_many(dirs, np.array([0.5, 0.5]), np.array([0.1, 0.1]))
        np.testing.assert_allclose(np.linalg.norm(out, axis=1), 1.0)
        assert out[0, 2] == pytest.approx(0.5)
        assert out[1, 2] == pytest.approx(-0.5)
