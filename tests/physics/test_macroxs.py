"""Tests for the macroscopic cross-section kernel (Algorithm 1 variants)."""

import numpy as np
import pytest

from repro.errors import PhysicsError
from repro.geometry.materials import make_fuel, make_water
from repro.physics.macroxs import XSCalculator
from repro.rng.lcg import RandomStream, particle_seeds
from repro.types import Reaction
from repro.work import WorkCounters


@pytest.fixture(scope="module")
def calc(small_library, small_union):
    return XSCalculator(small_library, small_union)


@pytest.fixture(scope="module")
def fuel():
    return make_fuel("hm-small")


@pytest.fixture(scope="module")
def water():
    return make_water()


class TestScalar:
    def test_components_sum(self, calc, fuel):
        xs = calc.scalar(fuel, 1e-3, RandomStream(seed=1))
        assert xs.total == pytest.approx(
            xs.elastic + xs.capture + xs.fission, rel=1e-12
        )
        assert xs.absorption == pytest.approx(xs.capture + xs.fission)

    def test_positive(self, calc, fuel, water):
        for mat in (fuel, water):
            for e in (1e-9, 1e-6, 1e-3, 1.0, 10.0):
                xs = calc.scalar(mat, e, RandomStream(seed=1))
                assert xs.total > 0

    def test_water_has_no_fission(self, calc, water):
        xs = calc.scalar(water, 1e-6, RandomStream(seed=1))
        assert xs.fission == 0.0
        assert xs.nu_fission == 0.0

    def test_fuel_nu_fission(self, calc, fuel):
        xs = calc.scalar(fuel, 2.53e-8, RandomStream(seed=1))
        assert xs.nu_fission > 2.0 * xs.fission  # nu ~ 2.4

    def test_counters(self, calc, fuel):
        c = WorkCounters()
        calc.scalar(fuel, 1e-3, RandomStream(seed=1), c)
        assert c.lookups == 1
        assert c.nuclide_iterations == fuel.n_nuclides
        assert c.grid_searches == 1  # unionized
        assert c.bytes_read > 0

    def test_counters_without_union(self, small_library, fuel):
        calc = XSCalculator(small_library, None)
        c = WorkCounters()
        calc.scalar(fuel, 1e-3, RandomStream(seed=1), c)
        assert c.grid_searches == fuel.n_nuclides  # per-nuclide searches

    def test_per_nuclide_output(self, calc, fuel):
        out = np.empty(fuel.n_nuclides)
        xs = calc.scalar(fuel, 1e-3, RandomStream(seed=1), per_nuclide_total=out)
        assert out.sum() == pytest.approx(xs.total, rel=1e-12)

    def test_urr_sampling_randomizes(self, small_library, small_union, fuel):
        """Inside the URR, different stream states give different totals."""
        calc = XSCalculator(small_library, small_union, use_urr=True)
        e_urr = 0.5 * (
            small_library["U238"].urr_emin + small_library["U238"].urr_emax
        )
        a = calc.scalar(fuel, e_urr, RandomStream(seed=1)).total
        b = calc.scalar(fuel, e_urr, RandomStream(seed=999)).total
        assert a != b

    def test_urr_off_deterministic(self, small_library, small_union, fuel):
        calc = XSCalculator(small_library, small_union, use_urr=False)
        e_urr = 1e-2
        a = calc.scalar(fuel, e_urr, RandomStream(seed=1)).total
        b = calc.scalar(fuel, e_urr, RandomStream(seed=999)).total
        assert a == b

    def test_sab_raises_thermal_scatter(self, small_library, small_union, water):
        with_sab = XSCalculator(small_library, small_union, use_sab=True)
        without = XSCalculator(small_library, small_union, use_sab=False)
        e = 1e-9
        a = with_sab.scalar(water, e, RandomStream(seed=1)).elastic
        b = without.scalar(water, e, RandomStream(seed=1)).elastic
        assert a > b


class TestBanked:
    def test_matches_scalar_with_urr_streams(self, calc, fuel):
        n = 100
        rng = np.random.default_rng(5)
        energies = np.exp(rng.uniform(np.log(1e-10), np.log(15.0), n))
        states = particle_seeds(1, np.arange(n, dtype=np.uint64)).copy()
        res = calc.banked(fuel, energies, rng_states=states)
        for j in range(0, n, 7):
            st = RandomStream(
                seed=int(particle_seeds(1, np.array([j], dtype=np.uint64))[0])
            )
            xs = calc.scalar(fuel, float(energies[j]), st)
            assert res["total"][j] == pytest.approx(xs.total, rel=1e-12)
            assert res["nu_fission"][j] == pytest.approx(xs.nu_fission, rel=1e-12)

    def test_requires_states_for_urr(self, calc, fuel, small_library):
        e_urr = np.array([1e-2])
        with pytest.raises(PhysicsError):
            calc.banked(fuel, e_urr, rng_states=None)

    def test_no_states_needed_without_urr(self, small_library, small_union, fuel):
        calc = XSCalculator(small_library, small_union, use_urr=False)
        res = calc.banked(fuel, np.array([1e-2, 1e-3]))
        assert res["total"].shape == (2,)

    def test_counters_scale(self, small_library, small_union, fuel):
        calc = XSCalculator(small_library, small_union, use_urr=False)
        c = WorkCounters()
        calc.banked(fuel, np.geomspace(1e-9, 1.0, 50), counters=c)
        assert c.lookups == 50
        assert c.nuclide_iterations == 50 * fuel.n_nuclides

    def test_aos_layout_matches_soa(self, small_library, small_union, fuel):
        soa = XSCalculator(small_library, small_union, use_urr=False)
        aos = XSCalculator(small_library, small_union, use_urr=False, layout="aos")
        energies = np.geomspace(1e-9, 1.0, 30)
        np.testing.assert_allclose(
            soa.banked(fuel, energies)["total"],
            aos.banked(fuel, energies)["total"],
            rtol=1e-13,
        )

    def test_invalid_layout(self, small_library):
        with pytest.raises(PhysicsError):
            XSCalculator(small_library, layout="csr")


class TestBankedOuter:
    def test_matches_inner(self, small_library, small_union, fuel):
        calc = XSCalculator(
            small_library, small_union, use_sab=False, use_urr=False
        )
        energies = np.geomspace(1e-9, 1.0, 25)
        outer = calc.banked_outer(fuel, energies)
        inner = calc.banked(fuel, energies)["total"]
        np.testing.assert_allclose(outer, inner, rtol=1e-12)

    def test_requires_union(self, small_library, fuel):
        calc = XSCalculator(small_library, None)
        with pytest.raises(PhysicsError):
            calc.banked_outer(fuel, np.array([1e-3]))


class TestAttribution:
    def test_weights_shape_and_sign(self, calc, fuel):
        energies = np.geomspace(1e-9, 1.0, 10)
        w = calc.attribution_weights(fuel, energies, Reaction.ELASTIC)
        assert w.shape == (fuel.n_nuclides, 10)
        assert np.all(w >= 0)

    def test_fission_weights_only_actinides(self, calc, fuel, small_library):
        ids, _ = fuel.resolve(small_library)
        w = calc.attribution_weights(fuel, np.array([2.53e-8]), Reaction.FISSION)
        for k in range(len(ids)):
            if w[k, 0] > 0:
                assert small_library[int(ids[k])].fissionable

    def test_sab_in_elastic_attribution(self, calc, water, small_library):
        """Below the S(a,b) cutoff, hydrogen's weight uses the bound XS."""
        ids, rho = water.resolve(small_library)
        h_pos = [k for k in range(len(ids)) if small_library[int(ids[k])].name == "H1"][0]
        w = calc.attribution_weights(water, np.array([1e-9]), Reaction.ELASTIC)
        sab = small_library.sab["H1"]
        expected = rho[h_pos] * sab.thermal_xs(1e-9)
        assert w[h_pos, 0] == pytest.approx(float(expected), rel=1e-12)


class TestBankedEdgeCases:
    """Degenerate bank sizes and full-physics parity for the fused kernels."""

    def test_empty_bank(self, calc, fuel):
        states = np.empty(0, dtype=np.uint64)
        res = calc.banked(fuel, np.empty(0), rng_states=states)
        for key in ("total", "elastic", "capture", "fission", "nu_fission"):
            assert res[key].shape == (0,)

    def test_empty_bank_counters_and_attribution(self, calc, fuel):
        c = WorkCounters()
        calc.banked(fuel, np.empty(0), rng_states=np.empty(0, dtype=np.uint64),
                    counters=c)
        assert c.lookups == 0
        w = calc.attribution_weights(fuel, np.empty(0), Reaction.ELASTIC)
        assert w.shape == (fuel.n_nuclides, 0)

    def test_single_particle_matches_scalar(self, calc, fuel, water):
        for mat in (fuel, water):
            for e in (1e-9, 1e-6, 2e-2, 1.0, 10.0):
                states = particle_seeds(1, np.array([3], dtype=np.uint64)).copy()
                res = calc.banked(mat, np.array([e]), rng_states=states)
                st = RandomStream(
                    seed=int(particle_seeds(1, np.array([3], dtype=np.uint64))[0])
                )
                xs = calc.scalar(mat, e, st)
                assert res["total"][0] == pytest.approx(xs.total, rel=1e-12)
                assert res["elastic"][0] == pytest.approx(xs.elastic, rel=1e-12)
                assert res["capture"][0] == pytest.approx(xs.capture, rel=1e-12)
                assert res["fission"][0] == pytest.approx(xs.fission, rel=1e-12)
                # The banked path must advance the lone stream exactly as
                # the scalar path did (URR draws only inside table ranges).
                assert int(states[0]) == st.seed

    @pytest.mark.parametrize("n", [1, 2, 7, 33, 256])
    def test_parity_with_sab_and_urr_across_bank_sizes(
        self, small_library, small_union, fuel, water, n
    ):
        calc = XSCalculator(
            small_library, small_union, use_sab=True, use_urr=True
        )
        rng = np.random.default_rng(n)
        energies = np.exp(rng.uniform(np.log(1e-10), np.log(15.0), n))
        for mat in (fuel, water):
            states = particle_seeds(9, np.arange(n, dtype=np.uint64)).copy()
            res = calc.banked(mat, energies, rng_states=states)
            for j in range(n):
                st = RandomStream(
                    seed=int(
                        particle_seeds(9, np.array([j], dtype=np.uint64))[0]
                    )
                )
                xs = calc.scalar(mat, float(energies[j]), st)
                assert res["total"][j] == pytest.approx(xs.total, rel=1e-12)
                assert res["nu_fission"][j] == pytest.approx(
                    xs.nu_fission, rel=1e-12
                )
                assert int(states[j]) == st.seed

    def test_per_nuclide_total_matches_total(self, calc, fuel):
        n = 40
        energies = np.geomspace(1e-9, 10.0, n)
        states = particle_seeds(2, np.arange(n, dtype=np.uint64)).copy()
        per = np.empty((fuel.n_nuclides, n))
        res = calc.banked(
            fuel, energies, rng_states=states, per_nuclide_total=per
        )
        np.testing.assert_allclose(per.sum(axis=0), res["total"], rtol=1e-12)
        assert (per >= 0).all()

    def test_plan_cached_per_material(self, calc, fuel):
        plan_a = calc.material_plan(fuel)
        plan_b = calc.material_plan(fuel)
        assert plan_a is plan_b
        assert plan_a.n_nuclides == fuel.n_nuclides
