"""Tests for fission sampling, collision channel selection, free-gas thermal."""

import numpy as np
import pytest

from repro.constants import K_BOLTZMANN
from repro.physics.collision import (
    sample_nuclide,
    sample_nuclide_many,
    select_channel,
    select_channel_many,
)
from repro.physics.fission import (
    sample_nu,
    sample_nu_many,
    watt_spectrum,
    watt_spectrum_many,
)
from repro.physics.macroxs import MacroXS
from repro.physics.thermal import free_gas_scatter, free_gas_scatter_many
from repro.rng.lcg import RandomStream, particle_seeds
from repro.types import CollisionChannel


class TestSampleNu:
    def test_integer_part_always_banked(self):
        assert sample_nu(2.0, 1.0, 0.999) == 2
        assert sample_nu(2.0, 1.0, 0.0) == 2

    def test_fractional_bernoulli(self):
        assert sample_nu(2.4, 1.0, 0.3) == 3  # 0.3 < 0.4
        assert sample_nu(2.4, 1.0, 0.5) == 2

    def test_k_normalization(self):
        # nu/k = 2.4/1.2 = 2.0
        assert sample_nu(2.4, 1.2, 0.9) == 2

    def test_expectation(self):
        rng = np.random.default_rng(0)
        xi = rng.random(50_000)
        n = sample_nu_many(np.full(50_000, 2.43), 1.0, xi)
        assert n.mean() == pytest.approx(2.43, abs=0.01)

    def test_vectorized_matches_scalar(self):
        rng = np.random.default_rng(1)
        nus = rng.uniform(1.5, 3.5, 100)
        xi = rng.random(100)
        many = sample_nu_many(nus, 1.1, xi)
        for j in range(100):
            assert many[j] == sample_nu(nus[j], 1.1, xi[j])


class TestWattSpectrum:
    def test_scalar_positive(self):
        s = RandomStream(seed=3)
        for _ in range(100):
            assert watt_spectrum(0.988, 2.249, s) > 0

    def test_mean_about_2mev(self):
        """Watt(a=0.988, b=2.249) has mean a(3/2 + a b/4) ~ 2.03 MeV."""
        s = RandomStream(seed=3)
        samples = np.array([watt_spectrum(0.988, 2.249, s) for _ in range(20_000)])
        expected = 0.988 * (1.5 + 0.988 * 2.249 / 4.0)
        assert samples.mean() == pytest.approx(expected, rel=0.03)

    def test_vectorized_matches_scalar_streams(self):
        """Per-particle streams advance identically in both samplers."""
        ids = np.arange(50, dtype=np.uint64)
        states = particle_seeds(11, ids)
        energies, new_states = watt_spectrum_many(0.988, 2.249, states)
        for j in range(50):
            s = RandomStream(seed=int(states[j]))
            e = watt_spectrum(0.988, 2.249, s)
            assert energies[j] == pytest.approx(e, rel=1e-12)
            assert new_states[j] == s.seed

    def test_input_states_not_modified(self):
        states = particle_seeds(1, np.arange(5, dtype=np.uint64))
        before = states.copy()
        watt_spectrum_many(0.988, 2.249, states)
        np.testing.assert_array_equal(states, before)


class TestChannelSelection:
    def make_xs(self):
        return MacroXS(total=1.0, elastic=0.5, capture=0.3, fission=0.2)

    def test_regions(self):
        xs = self.make_xs()
        assert select_channel(xs, 0.1) == CollisionChannel.FISSION
        assert select_channel(xs, 0.3) == CollisionChannel.CAPTURE
        assert select_channel(xs, 0.7) == CollisionChannel.SCATTER

    def test_boundaries(self):
        xs = self.make_xs()
        assert select_channel(xs, 0.2) == CollisionChannel.CAPTURE
        assert select_channel(xs, 0.5) == CollisionChannel.SCATTER

    def test_vectorized_matches_scalar(self):
        xs = self.make_xs()
        xi = np.linspace(0, 0.999, 101)
        many = select_channel_many(
            np.full(101, xs.total),
            np.full(101, xs.capture),
            np.full(101, xs.fission),
            xi,
        )
        for j in range(101):
            assert many[j] == int(select_channel(xs, xi[j]))

    def test_probabilities(self):
        rng = np.random.default_rng(2)
        xi = rng.random(100_000)
        many = select_channel_many(
            np.ones(100_000), np.full(100_000, 0.3), np.full(100_000, 0.2), xi
        )
        assert np.mean(many == int(CollisionChannel.FISSION)) == pytest.approx(
            0.2, abs=0.01
        )
        assert np.mean(many == int(CollisionChannel.CAPTURE)) == pytest.approx(
            0.3, abs=0.01
        )


class TestNuclideSampling:
    def test_scalar_regions(self):
        w = np.array([1.0, 3.0, 6.0])
        assert sample_nuclide(w, 0.05) == 0
        assert sample_nuclide(w, 0.2) == 1
        assert sample_nuclide(w, 0.9) == 2

    def test_vectorized_statistics(self):
        w = np.tile(np.array([[1.0], [3.0], [6.0]]), (1, 50_000))
        states = particle_seeds(5, np.arange(50_000, dtype=np.uint64))
        idx, new_states = sample_nuclide_many(w, states)
        assert np.mean(idx == 2) == pytest.approx(0.6, abs=0.01)
        assert np.mean(idx == 0) == pytest.approx(0.1, abs=0.01)
        assert not np.array_equal(new_states, states)


class TestFreeGas:
    def test_scalar_output_valid(self):
        s = RandomStream(seed=7)
        e, d = free_gas_scatter(1e-8, np.array([1.0, 0, 0]), 16.0, 293.6, s)
        assert e > 0
        assert np.linalg.norm(d) == pytest.approx(1.0)

    def test_vectorized_matches_scalar_draws(self):
        """With the same seven uniforms, both paths compute the same
        kinematics."""
        ids = np.arange(20, dtype=np.uint64)
        states = particle_seeds(3, ids)
        from repro.rng.lcg import prn_array

        xi = np.empty((20, 7))
        s = states.copy()
        for c in range(7):
            s, xi[:, c] = prn_array(s)
        dirs = np.tile(np.array([0.0, 0.0, 1.0]), (20, 1))
        e_many, d_many = free_gas_scatter_many(
            np.full(20, 1e-8), dirs, 16.0, 293.6, xi
        )
        for j in range(5):
            stream = RandomStream(seed=int(states[j]))
            e_s, d_s = free_gas_scatter(
                1e-8, np.array([0.0, 0.0, 1.0]), 16.0, 293.6, stream
            )
            assert e_many[j] == pytest.approx(e_s, rel=1e-10)
            np.testing.assert_allclose(d_many[j], d_s, rtol=1e-8)

    def test_upscatter_at_cold_energies(self):
        """A neutron far below kT gains energy on average (detailed
        balance drives it toward the Maxwellian)."""
        rng = np.random.default_rng(8)
        xi = rng.random((20_000, 7))
        dirs = np.tile(np.array([0.0, 0.0, 1.0]), (20_000, 1))
        kt = K_BOLTZMANN * 293.6
        e_in = kt / 100.0
        e_out, _ = free_gas_scatter_many(np.full(20_000, e_in), dirs, 1.0, 293.6, xi)
        assert e_out.mean() > e_in

    def test_downscatter_at_hot_energies(self):
        rng = np.random.default_rng(9)
        xi = rng.random((20_000, 7))
        dirs = np.tile(np.array([0.0, 0.0, 1.0]), (20_000, 1))
        kt = K_BOLTZMANN * 293.6
        e_in = 100.0 * kt
        e_out, _ = free_gas_scatter_many(np.full(20_000, e_in), dirs, 1.0, 293.6, xi)
        assert e_out.mean() < e_in

    def test_equilibrium_spectrum(self):
        """Iterated free-gas scattering relaxes toward <E> = 3/2 kT."""
        rng = np.random.default_rng(10)
        kt = K_BOLTZMANN * 293.6
        n = 5_000
        e = np.full(n, 50 * kt)
        dirs = np.tile(np.array([0.0, 0.0, 1.0]), (n, 1))
        for _ in range(25):
            xi = rng.random((n, 7))
            e, dirs = free_gas_scatter_many(e, dirs, 1.0, 293.6, xi)
        assert e.mean() == pytest.approx(1.5 * kt, rel=0.15)
