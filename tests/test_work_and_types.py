"""Tests for work counters, shared types, and the transport context."""

import numpy as np
import pytest

from repro.data.unionized import UnionizedGrid
from repro.transport.context import FREE_GAS_CUTOFF, TransportContext
from repro.transport.events import EventLoopStats, run_generation_event
from repro.transport.tally import GlobalTallies
from repro.types import N_REACTIONS, CollisionChannel, EventKind, Reaction
from repro.work import WorkCounters


class TestWorkCounters:
    def test_defaults_zero(self):
        c = WorkCounters()
        assert all(v == 0 for v in c.as_dict().values())

    def test_iadd(self):
        a = WorkCounters(lookups=2, flights=3)
        a += WorkCounters(lookups=5, collisions=1)
        assert a.lookups == 7 and a.flights == 3 and a.collisions == 1

    def test_add_returns_new(self):
        a = WorkCounters(lookups=1)
        b = WorkCounters(lookups=2)
        c = a + b
        assert c.lookups == 3
        assert a.lookups == 1

    def test_reset(self):
        c = WorkCounters(lookups=5, bytes_read=100)
        c.reset()
        assert c.lookups == 0 and c.bytes_read == 0

    def test_as_dict_keys(self):
        keys = set(WorkCounters().as_dict())
        assert {"lookups", "flights", "collisions", "rn_draws"} <= keys


class TestTypes:
    def test_reactions_dense_from_zero(self):
        values = sorted(int(r) for r in Reaction)
        assert values == list(range(N_REACTIONS))
        assert Reaction.TOTAL == 0

    def test_collision_channels(self):
        assert {c.name for c in CollisionChannel} == {
            "SCATTER", "CAPTURE", "FISSION",
        }

    def test_event_kinds(self):
        assert EventKind.XS_LOOKUP == 0
        assert EventKind.DEAD == max(EventKind)


class TestTransportContext:
    @pytest.fixture(scope="class")
    def ctx(self, small_library):
        return TransportContext.create(
            small_library, pincell=True, union=UnionizedGrid(small_library)
        )

    def test_free_gas_cutoff_is_400kt(self):
        from repro.constants import KT_ROOM

        assert FREE_GAS_CUTOFF == pytest.approx(400 * KT_ROOM)

    def test_material_lookup(self, ctx):
        assert ctx.material_id_at(np.array([0.0, 0.0, 0.0])) == 0  # fuel
        assert ctx.material_id_at(np.array([0.6, 0.0, 0.0])) == 2  # water

    def test_material_accessor(self, ctx):
        assert ctx.material(0) is ctx.model.fuel
        assert ctx.material(2) is ctx.model.water

    def test_temperature_from_library(self, ctx, small_library):
        assert ctx.temperature == small_library.config.temperature

    def test_csg_path(self, small_library):
        ctx = TransportContext.create(
            small_library, pincell=True, use_fast_geometry=False
        )
        assert ctx.material_id_at(np.array([0.0, 0.0, 0.0])) == 0
        d = ctx.boundary_distance(
            np.array([0.0, 0.0, 0.0]), np.array([1.0, 0.0, 0.0])
        )
        assert d == pytest.approx(0.41)

    def test_nudge(self, ctx):
        p = ctx.nudge(np.zeros(3), np.array([1.0, 0.0, 0.0]))
        assert p[0] > 0


class TestEventLoopStats:
    def test_queue_trace_recorded(self, small_library):
        union = UnionizedGrid(small_library)
        ctx = TransportContext.create(
            small_library, pincell=True, union=union, master_seed=2
        )
        stats = EventLoopStats()
        rng = np.random.default_rng(2)
        pos = np.column_stack(
            [rng.uniform(-0.3, 0.3, 40), rng.uniform(-0.3, 0.3, 40),
             rng.uniform(-100, 100, 40)]
        )
        run_generation_event(
            ctx, pos, np.ones(40), GlobalTallies(), 1.0, 0, stats=stats
        )
        assert stats.iterations > 0
        assert stats.lookup_counts[0] == 40  # first cycle: everyone queued
        # Queues drain (weakly) as the generation dies out.
        assert stats.lookup_counts[-1] <= stats.lookup_counts[0]
        assert all(
            look == coll + cross
            for look, coll, cross in zip(
                stats.lookup_counts,
                stats.collision_counts,
                stats.crossing_counts,
            )
        )

    def test_lane_efficiency_from_stats(self, small_library):
        from repro.simd.analysis import queue_lane_efficiency

        union = UnionizedGrid(small_library)
        ctx = TransportContext.create(
            small_library, pincell=True, union=union, master_seed=2
        )
        stats = EventLoopStats()
        rng = np.random.default_rng(2)
        pos = np.column_stack(
            [rng.uniform(-0.3, 0.3, 64), rng.uniform(-0.3, 0.3, 64),
             rng.uniform(-100, 100, 64)]
        )
        run_generation_event(
            ctx, pos, np.ones(64), GlobalTallies(), 1.0, 0, stats=stats
        )
        eff = queue_lane_efficiency(stats.lookup_counts, width=16)
        assert 0.0 < eff <= 1.0


class TestEventLoopStatsArrays:
    """Array-backed storage: growth, views, and the summary() contract."""

    def test_array_backed_growth(self):
        stats = EventLoopStats()
        for i in range(100):  # forces several capacity doublings
            stats.record(100 - i, (100 - i) // 2, (100 - i) - (100 - i) // 2)
        assert stats.iterations == 100
        assert isinstance(stats.lookup_counts, np.ndarray)
        assert stats.lookup_counts.dtype == np.int64
        assert stats.lookup_counts.shape == (100,)
        assert stats.lookup_counts[0] == 100
        assert stats.lookup_counts[-1] == 1

    def test_summary_statistics(self):
        stats = EventLoopStats()
        stats.record(10, 6, 4)
        stats.record(4, 1, 3)
        s = stats.summary()
        assert s["iterations"] == 2
        assert s["stages"]["lookup"] == {
            "mean": 7.0, "min": 4, "max": 10, "total": 14,
        }
        assert s["stages"]["collision"]["total"] == 7
        assert s["stages"]["crossing"]["max"] == 4

    def test_summary_empty(self):
        s = EventLoopStats().summary()
        assert s["iterations"] == 0
        assert s["stages"]["lookup"]["total"] == 0

    def test_lane_utilization_report(self):
        from repro.simd.analysis import lane_utilization_report

        stats = EventLoopStats()
        stats.record(32, 20, 12)
        stats.record(16, 10, 6)
        stats.record(3, 2, 1)
        report = lane_utilization_report(stats, width=16)
        assert report["iterations"] == 3
        assert report["width"] == 16
        look = report["stages"]["lookup"]
        # 32 + 16 + 3 active over 32 + 16 + 16 issued slots.
        assert look["lane_efficiency"] == pytest.approx(51 / 64)
        assert look["total"] == 51
        for stage in report["stages"].values():
            assert 0.0 < stage["lane_efficiency"] <= 1.0

    def test_lane_utilization_report_rejects_bad_width(self):
        from repro.simd.analysis import lane_utilization_report

        with pytest.raises(ValueError):
            lane_utilization_report(EventLoopStats(), width=0)
