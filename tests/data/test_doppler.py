"""Tests for the psi-chi Doppler broadening profiles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.doppler import chi, doppler_zeta, faddeeva, psi, psi_chi


class TestColdLimit:
    def test_psi_cold_is_lorentzian(self):
        x = np.linspace(-10, 10, 41)
        np.testing.assert_allclose(psi(np.inf, x), 1.0 / (1.0 + x**2))

    def test_chi_cold_is_dispersion(self):
        x = np.linspace(-10, 10, 41)
        np.testing.assert_allclose(chi(np.inf, x), 2.0 * x / (1.0 + x**2))

    def test_large_zeta_approaches_cold(self):
        x = np.array([-3.0, 0.0, 0.5, 4.0])
        warm = psi(1e4, x)
        cold = psi(np.inf, x)
        np.testing.assert_allclose(warm, cold, rtol=1e-4)


class TestShapes:
    def test_psi_peak_at_center(self):
        x = np.linspace(-5, 5, 101)
        p = psi(2.0, x)
        assert np.argmax(p) == 50

    def test_psi_positive(self):
        x = np.linspace(-50, 50, 201)
        assert np.all(psi(0.5, x) > 0)

    def test_chi_antisymmetric(self):
        x = np.linspace(0.1, 20, 50)
        np.testing.assert_allclose(chi(1.5, x), -chi(1.5, -x), atol=1e-14)

    def test_psi_symmetric(self):
        x = np.linspace(0.1, 20, 50)
        np.testing.assert_allclose(psi(1.5, x), psi(1.5, -x), atol=1e-14)

    def test_broadening_lowers_peak(self):
        """Doppler broadening reduces the peak height (and widens the line)."""
        assert psi(0.5, 0.0) < psi(5.0, 0.0) < psi(np.inf, 0.0)

    def test_area_preserved(self):
        """The psi profile integrates to pi independent of zeta
        (Doppler broadening conserves the resonance integral)."""
        x = np.linspace(-4000, 4000, 400001)
        for zeta in (0.3, 1.0, 3.0, np.inf):
            area = np.trapezoid(psi(zeta, x), x)
            assert area == pytest.approx(np.pi, rel=5e-3)


class TestScalarAndBroadcast:
    def test_scalar_inputs_give_floats(self):
        p, c = psi_chi(1.0, 0.5)
        assert isinstance(p, float) and isinstance(c, float)

    def test_broadcasting(self):
        zeta = np.array([[0.5], [2.0]])
        x = np.array([0.0, 1.0, 2.0])
        p, c = psi_chi(zeta, x)
        assert p.shape == (2, 3) and c.shape == (2, 3)

    @given(
        zeta=st.floats(min_value=0.05, max_value=50.0),
        x=st.floats(min_value=-100.0, max_value=100.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_psi_bounded(self, zeta, x):
        p = psi(zeta, x)
        assert 0.0 <= p <= 1.0 + 1e-12


class TestZeta:
    def test_zero_temperature_is_infinite(self):
        assert doppler_zeta(1e-8, 1e-5, 238.0, 0.0) == np.inf

    def test_scales_with_width(self):
        z1 = doppler_zeta(1e-8, 1e-5, 238.0, 300.0)
        z2 = doppler_zeta(2e-8, 1e-5, 238.0, 300.0)
        assert z2 == pytest.approx(2 * z1)

    def test_hotter_is_smaller(self):
        z_cold = doppler_zeta(1e-8, 1e-5, 238.0, 300.0)
        z_hot = doppler_zeta(1e-8, 1e-5, 238.0, 1200.0)
        assert z_hot == pytest.approx(z_cold / 2)  # sqrt(300/1200) = 1/2


class TestFaddeeva:
    def test_at_origin(self):
        assert faddeeva(0.0) == pytest.approx(1.0)

    def test_known_asymptote(self):
        """w(z) ~ i/(sqrt(pi) z) for large |z|."""
        z = 1000.0 + 0j
        assert faddeeva(z) == pytest.approx(1j / (np.sqrt(np.pi) * z), rel=1e-4)
