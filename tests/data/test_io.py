"""Tests for library serialization round-trips."""

import numpy as np
import pytest

from repro.data.io import load_library, save_library
from repro.errors import DataError


@pytest.fixture()
def path(tmp_path):
    return tmp_path / "library.npz"


class TestRoundTrip:
    def test_exact_arrays(self, small_library, path):
        save_library(small_library, path)
        loaded = load_library(path)
        assert loaded.names == small_library.names
        for name in small_library.names:
            np.testing.assert_array_equal(
                loaded[name].energy, small_library[name].energy
            )
            np.testing.assert_array_equal(
                loaded[name].xs, small_library[name].xs
            )

    def test_scalar_attributes(self, small_library, path):
        save_library(small_library, path)
        loaded = load_library(path)
        for name in ("U235", "U238", "H1"):
            a, b = small_library[name], loaded[name]
            assert a.awr == b.awr
            assert a.fissionable == b.fissionable
            assert a.nu0 == b.nu0
            assert a.has_urr == b.has_urr
            assert a.urr_emin == b.urr_emin

    def test_urr_tables(self, small_library, path):
        save_library(small_library, path)
        loaded = load_library(path)
        assert set(loaded.urr) == set(small_library.urr)
        np.testing.assert_array_equal(
            loaded.urr["U238"].factors, small_library.urr["U238"].factors
        )

    def test_sab_tables(self, small_library, path):
        save_library(small_library, path)
        loaded = load_library(path)
        np.testing.assert_array_equal(
            loaded.sab["H1"].e_out, small_library.sab["H1"].e_out
        )

    def test_config_and_model(self, small_library, path):
        save_library(small_library, path)
        loaded = load_library(path)
        assert loaded.model == small_library.model
        assert loaded.config == small_library.config

    def test_loaded_library_transports(self, small_library, path):
        """A loaded library runs a simulation identically to the original."""
        from repro.transport import Settings, Simulation

        save_library(small_library, path)
        loaded = load_library(path)
        settings = Settings(
            n_particles=50, n_inactive=0, n_active=2, pincell=True,
            mode="event", seed=5,
        )
        r1 = Simulation(small_library, settings).run()
        r2 = Simulation(loaded, settings).run()
        np.testing.assert_allclose(
            r1.statistics.k_collision, r2.statistics.k_collision, rtol=1e-14
        )


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError):
            load_library(tmp_path / "nope.npz")

    def test_not_a_library_file(self, tmp_path):
        bogus = tmp_path / "x.npz"
        np.savez(bogus, a=np.ones(3))
        with pytest.raises(DataError):
            load_library(bogus)
