"""Tests for the SoA and AoS library layouts."""

import numpy as np
import pytest

from repro.data.soa import AOS_DTYPE, AoSLibrary, SoALibrary
from repro.types import Reaction


@pytest.fixture(scope="module")
def soa(small_library):
    return SoALibrary(small_library)


@pytest.fixture(scope="module")
def aos(small_library):
    return AoSLibrary(small_library)


class TestSoAStructure:
    def test_offsets_partition(self, small_library, soa):
        assert soa.offsets[0] == 0
        assert soa.offsets[-1] == sum(n.n_points for n in small_library)
        assert np.all(np.diff(soa.offsets) > 0)

    def test_flat_arrays_match_nuclides(self, small_library, soa):
        for i, nuc in enumerate(small_library):
            sl = slice(soa.offsets[i], soa.offsets[i + 1])
            np.testing.assert_array_equal(soa.energy[sl], nuc.energy)
            np.testing.assert_array_equal(soa.xs[:, sl], nuc.xs)

    def test_per_nuclide_scalars(self, small_library, soa):
        i = small_library.index("U235")
        assert soa.awr[i] == small_library["U235"].awr
        assert soa.fissionable[i]
        assert not soa.fissionable[small_library.index("H1")]

    def test_nbytes_positive(self, soa):
        assert soa.nbytes > 0


class TestGatherEquivalence:
    def test_soa_gather_matches_nuclide(self, small_library, soa):
        nuc = small_library["U238"]
        nid = small_library.index("U238")
        energies = np.geomspace(1e-9, 10.0, 40)
        idx = nuc.find_index_many(energies)
        got = soa.micro_xs_gather(nid, energies, idx)
        expected = nuc.micro_xs_many(energies)
        np.testing.assert_allclose(got, expected, rtol=1e-13)

    def test_aos_gather_matches_soa(self, small_library, soa, aos):
        nuc = small_library["U235"]
        nid = small_library.index("U235")
        energies = np.geomspace(1e-9, 10.0, 40)
        idx = nuc.find_index_many(energies)
        np.testing.assert_allclose(
            aos.micro_xs_gather(nid, energies, idx),
            soa.micro_xs_gather(nid, energies, idx),
            rtol=1e-13,
        )

    def test_micro_total_across_nuclides(self, small_library, soa):
        e = 1e-3
        idx = np.array([n.find_index(e) for n in small_library])
        totals = soa.micro_total_across_nuclides(e, idx)
        for i, nuc in enumerate(small_library):
            assert totals[i] == pytest.approx(
                nuc.micro_xs(e)[Reaction.TOTAL], rel=1e-12
            )


class TestAoSLayout:
    def test_record_interleaving(self, small_library, aos):
        """The AoS records really are interleaved: one record spans energy
        plus all reactions (40 bytes)."""
        assert AOS_DTYPE.itemsize == 40
        rec = aos.records[0]
        nuc = small_library[0]
        np.testing.assert_array_equal(rec["energy"], nuc.energy)
        np.testing.assert_array_equal(rec["total"], nuc.xs[Reaction.TOTAL])

    def test_field_access_is_strided(self, aos):
        """AoS field views are strided by the record size (the layout
        property that defeats unit-stride vector loads)."""
        view = aos.records[0]["total"]
        assert view.strides[0] == AOS_DTYPE.itemsize

    def test_counts(self, small_library, aos):
        assert aos.n_nuclides == len(small_library)
        assert aos.nbytes > 0
