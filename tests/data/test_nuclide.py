"""Tests for per-nuclide tables and lookup paths."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.nuclide import Nuclide
from repro.errors import DataError
from repro.types import N_REACTIONS, Reaction


def make_nuclide(n_points=10):
    energy = np.geomspace(1e-10, 10.0, n_points)
    xs = np.ones((N_REACTIONS, n_points))
    xs[Reaction.TOTAL] = 3.0
    xs[Reaction.ELASTIC] = np.linspace(1.0, 2.0, n_points)
    return Nuclide(name="X1", awr=1.0, energy=energy, xs=xs)


class TestValidation:
    def test_rejects_decreasing_grid(self):
        with pytest.raises(DataError):
            Nuclide(
                name="bad",
                awr=1.0,
                energy=np.array([2.0, 1.0]),
                xs=np.ones((N_REACTIONS, 2)),
            )

    def test_rejects_wrong_xs_shape(self):
        with pytest.raises(DataError):
            Nuclide(
                name="bad",
                awr=1.0,
                energy=np.array([1.0, 2.0]),
                xs=np.ones((N_REACTIONS, 3)),
            )

    def test_rejects_negative_xs(self):
        xs = np.ones((N_REACTIONS, 2))
        xs[0, 0] = -1.0
        with pytest.raises(DataError):
            Nuclide(name="bad", awr=1.0, energy=np.array([1.0, 2.0]), xs=xs)

    def test_rejects_single_point(self):
        with pytest.raises(DataError):
            Nuclide(
                name="bad",
                awr=1.0,
                energy=np.array([1.0]),
                xs=np.ones((N_REACTIONS, 1)),
            )


class TestFindIndex:
    def test_interior(self):
        nuc = make_nuclide()
        e = nuc.energy[4] * 1.0001
        assert nuc.find_index(e) == 4

    def test_exact_grid_point(self):
        nuc = make_nuclide()
        assert nuc.find_index(nuc.energy[3]) == 3

    def test_below_grid_clamps(self):
        nuc = make_nuclide()
        assert nuc.find_index(1e-12) == 0

    def test_above_grid_clamps(self):
        nuc = make_nuclide()
        assert nuc.find_index(100.0) == nuc.n_points - 2

    def test_vectorized_matches_scalar(self):
        nuc = make_nuclide(50)
        energies = np.geomspace(1e-11, 20.0, 200)
        vec = nuc.find_index_many(energies)
        scal = np.array([nuc.find_index(e) for e in energies])
        np.testing.assert_array_equal(vec, scal)

    @given(e=st.floats(min_value=1e-12, max_value=100.0))
    @settings(max_examples=50, deadline=None)
    def test_index_brackets_energy(self, e):
        nuc = make_nuclide(30)
        i = nuc.find_index(e)
        assert 0 <= i <= nuc.n_points - 2
        if nuc.energy[0] <= e <= nuc.energy[-1]:
            assert nuc.energy[i] <= e * (1 + 1e-12)
            assert e <= nuc.energy[i + 1] * (1 + 1e-12)


class TestMicroXS:
    def test_interpolates_linearly(self):
        nuc = make_nuclide()
        e0, e1 = nuc.energy[2], nuc.energy[3]
        mid = 0.5 * (e0 + e1)
        v = nuc.micro_xs(mid)[Reaction.ELASTIC]
        expected = 0.5 * (nuc.xs[Reaction.ELASTIC, 2] + nuc.xs[Reaction.ELASTIC, 3])
        assert v == pytest.approx(expected)

    def test_at_grid_points(self):
        nuc = make_nuclide()
        for i in [0, 3, 9]:
            np.testing.assert_allclose(nuc.micro_xs(nuc.energy[i]), nuc.xs[:, i])

    def test_precomputed_index_used(self):
        nuc = make_nuclide()
        e = 0.5 * (nuc.energy[4] + nuc.energy[5])
        np.testing.assert_allclose(nuc.micro_xs(e), nuc.micro_xs(e, index=4))

    def test_vectorized_matches_scalar(self):
        nuc = make_nuclide(40)
        energies = np.geomspace(1e-10, 10, 64)
        mat = nuc.micro_xs_many(energies)
        assert mat.shape == (N_REACTIONS, 64)
        for j, e in enumerate(energies):
            np.testing.assert_allclose(mat[:, j], nuc.micro_xs(e))

    def test_reaction_subset(self):
        nuc = make_nuclide(40)
        energies = np.geomspace(1e-10, 10, 16)
        sub = nuc.micro_xs_many(energies, reactions=(Reaction.TOTAL,))
        full = nuc.micro_xs_many(energies)
        np.testing.assert_allclose(sub[0], full[Reaction.TOTAL])

    def test_interpolation_bounded(self):
        """Lin-lin interpolation never exceeds the bracketing values."""
        nuc = make_nuclide(30)
        energies = np.geomspace(1e-10, 10, 500)
        mat = nuc.micro_xs_many(energies)
        assert mat.min() >= nuc.xs.min() - 1e-12
        assert mat.max() <= nuc.xs.max() + 1e-12

    def test_total_xs_helper(self):
        nuc = make_nuclide()
        assert nuc.total_xs(nuc.energy[0]) == pytest.approx(3.0)


class TestMisc:
    def test_nu_linear_in_energy(self):
        nuc = make_nuclide()
        assert nuc.nu(0.0) == pytest.approx(nuc.nu0)
        assert nuc.nu(2.0) > nuc.nu(0.0)

    def test_nbytes_counts_grid_and_xs(self):
        nuc = make_nuclide(10)
        assert nuc.nbytes == nuc.energy.nbytes + nuc.xs.nbytes
