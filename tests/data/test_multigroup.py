"""Tests for multigroup condensation and the infinite-medium solver."""

import numpy as np
import pytest

from repro.data.library import LibraryConfig, NuclideLibrary
from repro.data.multigroup import GroupStructure, condense
from repro.data.nuclide import Nuclide
from repro.errors import DataError
from repro.geometry.materials import Material
from repro.types import N_REACTIONS


class ConstNuNuclide(Nuclide):
    """Flat-XS nuclide with energy-independent nu (exact-anchor helper)."""

    def nu(self, energy):
        e = np.asarray(energy, dtype=float)
        return self.nu0 if e.ndim == 0 else np.full(e.shape, self.nu0)


def flat_library(total=1.0, elastic=0.6, capture=0.25, fission=0.15, nu0=2.0):
    energy = np.array([1e-11, 1e-3, 20.0])
    xs = np.zeros((N_REACTIONS, 3))
    xs[0], xs[1], xs[2], xs[3] = total, elastic, capture, fission
    nuc = ConstNuNuclide(
        name="X1", awr=200.0, energy=energy, xs=xs,
        fissionable=fission > 0, nu0=nu0,
    )
    lib = NuclideLibrary([nuc], {}, {}, LibraryConfig.tiny(), "custom")
    return lib, Material("m", {"X1": 1.0})


class TestGroupStructure:
    def test_two_group(self):
        gs = GroupStructure.two_group()
        assert gs.n_groups == 2
        lo_fast, hi_fast = gs.bounds(0)
        assert hi_fast == pytest.approx(20.0)
        assert lo_fast == pytest.approx(6.25e-7)

    def test_group_of_convention(self):
        """Group 0 is the fastest."""
        gs = GroupStructure.two_group()
        assert gs.group_of(1.0) == 0
        assert gs.group_of(1e-8) == 1

    def test_equal_lethargy(self):
        gs = GroupStructure.equal_lethargy(8)
        widths = np.diff(np.log(gs.edges))
        np.testing.assert_allclose(widths, widths[0])

    def test_validation(self):
        with pytest.raises(DataError):
            GroupStructure(np.array([1.0]))
        with pytest.raises(DataError):
            GroupStructure(np.array([1.0, 0.5]))


class TestFlatXSAnchors:
    """With flat cross sections condensation is exact for any structure."""

    @pytest.mark.parametrize("n_groups", [1, 2, 6])
    def test_group_constants_flat(self, n_groups):
        lib, mat = flat_library()
        mg = condense(lib, mat, GroupStructure.equal_lethargy(n_groups))
        np.testing.assert_allclose(mg.sigma_t, 1.0, rtol=1e-10)
        np.testing.assert_allclose(mg.sigma_a, 0.4, rtol=1e-10)
        np.testing.assert_allclose(mg.nu_sigma_f, 0.3, rtol=1e-10)

    def test_scatter_rows_sum_to_elastic(self):
        lib, mat = flat_library()
        mg = condense(lib, mat, GroupStructure.equal_lethargy(4))
        np.testing.assert_allclose(mg.scatter.sum(axis=1), 0.6, rtol=1e-9)
        np.testing.assert_allclose(mg.balance_residual(), 0.0, atol=1e-9)

    def test_k_infinity_flat(self):
        """k_inf = nu sigma_f / sigma_a for flat data, any group count."""
        lib, mat = flat_library()
        for n_groups in (1, 2, 5):
            mg = condense(lib, mat, GroupStructure.equal_lethargy(n_groups))
            assert mg.k_infinity() == pytest.approx(
                2.0 * 0.15 / 0.4, rel=1e-8
            )

    def test_downscatter_only(self):
        """Target-at-rest kinematics never up-scatters: the transfer matrix
        is lower-triangular-with-diagonal in reactor ordering (fast ->
        slower groups only)."""
        lib, mat = flat_library()
        mg = condense(lib, mat, GroupStructure.equal_lethargy(5))
        upper = np.triu(mg.scatter, k=-0)  # g' <= g region is allowed
        for g in range(5):
            for gp in range(5):
                if gp < g:  # would be up-scatter (to a faster group)
                    assert mg.scatter[g, gp] == pytest.approx(0.0, abs=1e-12)

    def test_nonfissionable_k_zero(self):
        lib, mat = flat_library(fission=0.0, capture=0.4)
        mg = condense(lib, mat, GroupStructure.two_group())
        assert mg.k_infinity() == 0.0

    def test_flux_normalized(self):
        lib, mat = flat_library()
        mg = condense(lib, mat, GroupStructure.equal_lethargy(3))
        assert mg.flux().sum() == pytest.approx(1.0)


class TestRealFuel:
    def test_two_group_fuel(self, small_library):
        from repro.geometry.materials import make_fuel

        mg = condense(
            small_library, make_fuel("hm-small"), GroupStructure.two_group()
        )
        # Thermal group has far larger absorption and fission production.
        assert mg.sigma_a[1] > mg.sigma_a[0]
        assert mg.nu_sigma_f[1] > mg.nu_sigma_f[0]
        # chi is essentially all fast.
        assert mg.chi[0] > 0.99

    def test_moderator_scatters_down(self, small_library):
        from repro.geometry.materials import make_water

        mg = condense(
            small_library, make_water(), GroupStructure.two_group()
        )
        # Hydrogenous moderator: substantial fast -> thermal transfer.
        assert mg.scatter[0, 1] > 0.01
        assert mg.nu_sigma_f.max() == 0.0

    def test_mc_consistency_infinite_fuel_medium(self, small_library):
        """Multigroup k_inf of pure fuel vs the Monte Carlo k_inf of the
        same infinite medium — the textbook resonance self-shielding story:

        * condensing resonance cross sections with a *smooth* weighting
          spectrum overestimates resonance absorption (the true flux dips
          inside resonances, the smooth weight does not), so the multigroup
          k_inf is biased LOW;
        * refining the group structure recovers part of the gap.

        Both behaviours are asserted (the consistency is structural, not
        numerical — exact agreement needs self-shielded condensation,
        which is future work for any real lattice code too)."""
        from repro.data.unionized import UnionizedGrid
        from repro.geometry.hoogenboom import (
            FastCoreGeometry,
            HMModel,
            build_pincell_geometry,
        )
        from repro.geometry.materials import make_fuel
        from repro.physics.macroxs import XSCalculator
        from repro.transport.context import TransportContext
        from repro.transport.events import run_generation_event
        from repro.transport.spectrum import SpectrumTally
        from repro.transport.tally import GlobalTallies

        fuel = make_fuel("hm-small")
        base = build_pincell_geometry()
        model = HMModel(
            geometry=base.geometry, fuel=fuel, cladding=fuel, water=fuel,
            model="custom",
        )
        union = UnionizedGrid(small_library)
        ctx = TransportContext(
            model=model, library=small_library, union=union,
            calculator=XSCalculator(small_library, union),
            fast=FastCoreGeometry(pincell=True), master_seed=9,
        )
        spec = SpectrumTally(n_bins=80)
        rng = np.random.default_rng(9)
        n = 250
        pos = np.column_stack(
            [rng.uniform(-0.5, 0.5, n), rng.uniform(-0.5, 0.5, n),
             rng.uniform(-100, 100, n)]
        )
        # Source in the resonance region: shorter slowing-down chains keep
        # the test fast; the MG comparison uses the same measured spectrum,
        # so it remains self-consistent.
        en = np.full(n, 1e-3)
        ks = []
        offset = 0
        for _ in range(3):
            t = GlobalTallies()
            bank = run_generation_event(
                ctx, pos, en, t, 1.0, offset, spectrum=spec
            )
            offset += n
            ks.append(t.k_collision())
            pos, en = bank.sample_source(n, rng)
        k_mc = float(np.mean(ks[1:]))

        # Condense with the measured spectrum.
        phi = spec.per_lethargy()
        centers = spec.centers

        def weight(e):
            vals = np.interp(
                np.log(e), np.log(centers), phi, left=phi[0], right=phi[-1]
            )
            return np.clip(vals, 1e-12, None) / e

        k_coarse = condense(
            small_library, fuel, GroupStructure.equal_lethargy(2),
            weighting=weight,
        ).k_infinity()
        k_fine = condense(
            small_library, fuel, GroupStructure.equal_lethargy(24),
            weighting=weight,
        ).k_infinity()
        # Self-shielding bias: multigroup under-predicts, finer groups
        # close the gap, and the fine structure lands within ~30%.
        assert k_coarse < k_mc
        assert abs(k_fine - k_mc) < abs(k_coarse - k_mc)
        assert k_fine == pytest.approx(k_mc, rel=0.35)
