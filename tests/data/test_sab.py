"""Tests for S(alpha, beta) thermal scattering tables."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.constants import K_BOLTZMANN, THERMAL_CUTOFF
from repro.data.sab import SabTable, build_sab_table
from repro.errors import DataError


@pytest.fixture()
def table(rng):
    return build_sab_table(rng, temperature=293.6, n_in=10, n_out=8, n_mu=4)


class TestConstruction:
    def test_shapes(self, table):
        assert table.e_in.shape == (10,)
        assert table.e_out.shape == (10, 8)
        assert table.mu.shape == (10, 8, 4)

    def test_cutoff(self, table):
        assert table.cutoff == pytest.approx(THERMAL_CUTOFF)

    def test_bound_enhancement_at_low_energy(self, table):
        """Bound scattering exceeds the free value at thermal energies and
        relaxes toward it at the cutoff."""
        assert table.xs[0] > 1.5 * 20.4
        assert table.xs[-1] < 1.5 * 20.4

    def test_outgoing_energies_positive(self, table):
        assert np.all(table.e_out > 0)

    def test_cosines_in_range(self, table):
        assert np.all(np.abs(table.mu) <= 1.0)

    def test_cosines_sorted_per_cell(self, table):
        assert np.all(np.diff(table.mu, axis=2) >= 0)

    def test_validation_bad_mu(self):
        with pytest.raises(DataError):
            SabTable(
                e_in=np.array([1e-9, 1e-6]),
                xs=np.array([10.0, 10.0]),
                e_out=np.ones((2, 3)) * 1e-8,
                mu=np.full((2, 3, 2), 2.0),
            )

    def test_validation_negative_eout(self):
        with pytest.raises(DataError):
            SabTable(
                e_in=np.array([1e-9, 1e-6]),
                xs=np.array([10.0, 10.0]),
                e_out=-np.ones((2, 3)),
                mu=np.zeros((2, 3, 2)),
            )


class TestXS:
    def test_thermal_xs_interpolates(self, table):
        mid = np.sqrt(table.e_in[2] * table.e_in[3])
        v = table.thermal_xs(mid)
        lo, hi = sorted([table.xs[2], table.xs[3]])
        assert lo <= v <= hi

    def test_vectorized_xs(self, table):
        e = np.geomspace(1e-10, 1e-6, 20)
        out = table.thermal_xs(e)
        assert out.shape == (20,)
        assert np.all(out > 0)


class TestSampling:
    def test_scalar_sample_valid(self, table):
        e_out, mu = table.sample(1e-8, 0.3, 0.7)
        assert e_out > 0
        assert -1 <= mu <= 1

    def test_vectorized_matches_scalar(self, table, rng):
        energies = rng.uniform(1e-10, table.cutoff, 50)
        xi1 = rng.random(50)
        xi2 = rng.random(50)
        e_vec, mu_vec = table.sample_many(energies, xi1, xi2)
        for j in range(50):
            e_s, mu_s = table.sample(energies[j], xi1[j], xi2[j])
            assert e_vec[j] == pytest.approx(e_s)
            assert mu_vec[j] == pytest.approx(mu_s)

    @given(
        xi1=st.floats(min_value=0, max_value=1 - 1e-9),
        xi2=st.floats(min_value=0, max_value=1 - 1e-9),
    )
    @settings(
        max_examples=50,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_sample_always_valid(self, table, xi1, xi2):
        e_out, mu = table.sample(5e-7, xi1, xi2)
        assert e_out > 0 and -1 <= mu <= 1

    def test_upscatter_possible_at_cold_energies(self, table, rng):
        """A very cold neutron should gain energy on average (thermal
        equilibrium drives it toward kT)."""
        e_in = 1e-10
        xi1, xi2 = rng.random(2000), rng.random(2000)
        e_out, _ = table.sample_many(np.full(2000, e_in), xi1, xi2)
        assert e_out.mean() > e_in

    def test_hot_neutron_downscatters(self, table, rng):
        """A neutron near the cutoff should lose energy on average."""
        e_in = table.cutoff * 0.9
        xi1, xi2 = rng.random(2000), rng.random(2000)
        e_out, _ = table.sample_many(np.full(2000, e_in), xi1, xi2)
        assert e_out.mean() < e_in

    def test_equilibrium_near_kt(self, table, rng):
        """Repeated scattering relaxes the spectrum to ~kT scale."""
        kt = K_BOLTZMANN * 293.6
        e = np.full(4000, 1e-9)
        for _ in range(8):
            xi1, xi2 = rng.random(4000), rng.random(4000)
            e, _ = table.sample_many(e, xi1, xi2)
        assert 0.2 * kt < np.median(e) < 8.0 * kt


class TestTemperatureDependence:
    def test_hotter_table_has_higher_mean_outgoing(self, rng):
        cold = build_sab_table(np.random.default_rng(5), temperature=293.6)
        hot = build_sab_table(np.random.default_rng(5), temperature=900.0)
        assert hot.e_out.mean() > cold.e_out.mean()
