"""Tests for the windowed multipole representation."""

import numpy as np
import pytest

from repro.data.multipole import build_multipole
from repro.data.resonance import reconstruct_xs, sample_ladder
from repro.errors import DataError
from repro.types import N_REACTIONS, Reaction


@pytest.fixture(scope="module")
def ladder():
    rng = np.random.default_rng(42)
    return sample_ladder(rng, fissionable=True, n_resonances=15)


@pytest.fixture(scope="module")
def mp(ladder):
    return build_multipole("U235x", ladder, awr=233.0, n_windows=16)


class TestConstruction:
    def test_pole_count(self, mp, ladder):
        assert mp.n_poles == ladder.n_resonances

    def test_poles_in_lower_half_plane(self, mp):
        """Physical resonance poles have negative imaginary part
        (decaying states)."""
        assert np.all(mp.poles.imag < 0)

    def test_windows_cover_all_poles(self, mp):
        """Every pole is evaluated by the window that owns it (windows also
        reach into neighbours, so coverage — not partition — is the invariant)."""
        covered = np.zeros(mp.n_poles, dtype=bool)
        for w in range(mp.n_windows):
            s, c = int(mp.window_start[w]), int(mp.window_count[w])
            covered[s : s + c] = True
        assert covered.all()

    def test_residues_shape(self, mp):
        assert mp.residues.shape == (N_REACTIONS, mp.n_poles)

    def test_memory_compression(self, ladder, mp):
        """The multipole form is far smaller than pointwise data — the
        method's raison d'être."""
        from repro.data.resonance import build_energy_grid

        grid = build_energy_grid(ladder, n_base=600, points_per_resonance=12)
        pointwise_bytes = grid.nbytes * (1 + N_REACTIONS)
        assert mp.nbytes < 0.5 * pointwise_bytes

    def test_invalid_range(self, ladder):
        with pytest.raises(DataError):
            build_multipole("x", ladder, awr=233.0, emin=1.0, emax=0.5)


class TestAccuracy:
    def test_matches_pointwise_at_peaks(self, ladder, mp):
        """At resonance peaks the multipole evaluation reproduces the
        pointwise reconstruction."""
        peaks = ladder.e0[2:12]
        truth = reconstruct_xs(ladder, peaks, awr=233.0, temperature=293.6)
        for j, e in enumerate(peaks):
            got = mp.evaluate(float(e), 293.6)
            assert got[Reaction.TOTAL] == pytest.approx(
                truth["total"][j], rel=0.05
            )

    def test_matches_pointwise_median(self, ladder, mp):
        es = np.geomspace(ladder.e0[0] * 0.9, ladder.e0[-1], 300)
        truth = reconstruct_xs(ladder, es, awr=233.0, temperature=293.6)
        got = mp.evaluate_many(es, 293.6)
        rel = np.abs(got[Reaction.TOTAL] - truth["total"]) / truth["total"]
        assert np.median(rel) < 0.05

    def test_temperature_effect(self, ladder, mp):
        """Doppler broadening lowers peaks, multipole-side too."""
        e = float(ladder.e0[5])
        cold = mp.evaluate(e, 100.0)[Reaction.TOTAL]
        hot = mp.evaluate(e, 2000.0)[Reaction.TOTAL]
        assert hot < cold

    def test_zero_temperature_branch(self, ladder, mp):
        e = float(ladder.e0[5])
        v0 = mp.evaluate(e, 0.0)
        assert np.all(np.isfinite(v0))
        # 0 K peak is the tallest.
        assert v0[Reaction.TOTAL] >= mp.evaluate(e, 293.6)[Reaction.TOTAL]


class TestVectorizedEquivalence:
    def test_many_matches_scalar(self, ladder, mp):
        es = np.geomspace(ladder.e0[0], ladder.e0[-1], 40)
        vec = mp.evaluate_many(es, 293.6)
        for j, e in enumerate(es):
            scal = mp.evaluate(float(e), 293.6)
            np.testing.assert_allclose(vec[:, j], scal, rtol=1e-10, atol=1e-12)

    def test_many_matches_scalar_cold(self, ladder, mp):
        es = np.geomspace(ladder.e0[0], ladder.e0[-1], 20)
        vec = mp.evaluate_many(es, 0.0)
        for j, e in enumerate(es):
            np.testing.assert_allclose(
                vec[:, j], mp.evaluate(float(e), 0.0), rtol=1e-10, atol=1e-12
            )

    def test_padded_tables_shapes(self, mp):
        poles_rect, res_rect = mp.padded_tables()
        p = mp.max_poles_per_window
        assert poles_rect.shape == (mp.n_windows, p)
        assert res_rect.shape == (mp.n_windows, N_REACTIONS, p)

    def test_precomputed_tables_reused(self, ladder, mp):
        es = np.geomspace(ladder.e0[0], ladder.e0[-1], 10)
        tables = mp.padded_tables()
        a = mp.evaluate_many(es, 293.6, tables=tables)
        b = mp.evaluate_many(es, 293.6)
        np.testing.assert_allclose(a, b)


class TestWindows:
    def test_window_of_clamps(self, mp):
        assert mp.window_of(1e-12) == 0
        assert mp.window_of(100.0) == mp.n_windows - 1

    def test_window_of_vectorized(self, mp):
        es = np.geomspace(mp.emin, mp.emax * 0.999, 30)
        wins = mp.window_of(es)
        for j, e in enumerate(es):
            assert wins[j] == mp.window_of(float(e))

    def test_negative_temperature_rejected(self, mp):
        with pytest.raises(DataError):
            mp.doppler_width(-1.0)
