"""Tests for the unionized energy grid (Leppänen double indexing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import UnionizedGrid
from repro.errors import DataError


class TestConstruction:
    def test_union_contains_all_nuclide_points(self, small_library, small_union):
        union_set = small_union.energy
        for nuc in small_library:
            # Every nuclide grid point appears in the (unthinned) union.
            idx = np.searchsorted(union_set, nuc.energy)
            np.testing.assert_allclose(union_set[np.clip(idx, 0, union_set.size - 1)],
                                       nuc.energy)

    def test_union_strictly_increasing(self, small_union):
        assert np.all(np.diff(small_union.energy) > 0)

    def test_index_matrix_shape(self, small_library, small_union):
        assert small_union.indices.shape == (
            len(small_library),
            small_union.n_union,
        )

    def test_thinning(self, small_library):
        thin = UnionizedGrid(small_library, max_points=100)
        assert thin.n_union <= 100
        # End points survive thinning.
        full = UnionizedGrid(small_library)
        assert thin.energy[0] == full.energy[0]
        assert thin.energy[-1] == full.energy[-1]

    def test_thinning_validation(self, small_library):
        with pytest.raises(DataError):
            UnionizedGrid(small_library, max_points=1)

    def test_nbytes(self, small_union):
        assert small_union.nbytes == (
            small_union.energy.nbytes + small_union.indices.nbytes
        )


class TestIndices:
    def test_indices_bracket_union_points(self, small_library, small_union):
        """For every nuclide and union point, the stored interval brackets
        the union energy (the core double-indexing invariant)."""
        for i, nuc in enumerate(small_library):
            idx = small_union.indices[i]
            e = small_union.energy
            lo = nuc.energy[idx]
            hi = nuc.energy[idx + 1]
            inside = (e >= nuc.energy[0]) & (e <= nuc.energy[-1])
            assert np.all(lo[inside] <= e[inside] * (1 + 1e-12))
            assert np.all(e[inside] <= hi[inside] * (1 + 1e-12))

    def test_indices_match_direct_search(self, small_library, small_union):
        for i, nuc in enumerate(small_library):
            direct = nuc.find_index_many(small_union.energy)
            np.testing.assert_array_equal(small_union.indices[i], direct)

    def test_nuclide_indices_gather(self, small_union):
        u = np.array([0, 5, 10])
        got = small_union.nuclide_indices(2, u)
        np.testing.assert_array_equal(got, small_union.indices[2, u])


class TestSearch:
    def test_search_brackets(self, small_union):
        e = small_union.energy
        mid = 0.5 * (e[7] + e[8])
        assert small_union.search(mid) == 7

    def test_search_many_matches_scalar(self, small_union):
        energies = np.geomspace(1e-11, 19.9, 100)
        vec = small_union.search_many(energies)
        scal = np.array([small_union.search(x) for x in energies])
        np.testing.assert_array_equal(vec, scal)

    @given(e=st.floats(min_value=1e-11, max_value=20.0))
    @settings(max_examples=50, deadline=None)
    def test_search_property(self, small_union, e):
        u = small_union.search(e)
        assert 0 <= u <= small_union.n_union - 2
        assert small_union.energy[u] <= e * (1 + 1e-12)


class TestEquivalence:
    def test_union_lookup_equals_direct_lookup(self, small_library, small_union):
        """Looking up micro XS via the union index matrix gives the same
        result as each nuclide's own binary search — the whole point of
        the unionized grid (same answer, one search)."""
        energies = np.geomspace(1e-10, 15.0, 50)
        u = small_union.search_many(energies)
        for i, nuc in enumerate(small_library):
            via_union = nuc.micro_xs_many(
                energies, indices=small_union.indices[i, u]
            )
            direct = nuc.micro_xs_many(energies)
            np.testing.assert_allclose(via_union, direct, rtol=1e-12)
