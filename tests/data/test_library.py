"""Tests for the Hoogenboom-Martin library builder."""

import numpy as np
import pytest

from repro.data import LibraryConfig, build_library, build_nuclide, fuel_nuclide_names
from repro.data.library import CLAD_NUCLIDES, HM_SMALL_FUEL, WATER_NUCLIDES
from repro.errors import DataError
from repro.types import Reaction


class TestFuelNames:
    def test_small_has_34(self):
        assert len(fuel_nuclide_names("hm-small")) == 34

    def test_large_has_320(self):
        names = fuel_nuclide_names("hm-large")
        assert len(names) == 320
        assert len(set(names)) == 320

    def test_large_extends_small(self):
        assert fuel_nuclide_names("hm-large")[:34] == HM_SMALL_FUEL

    def test_unknown_model_rejected(self):
        with pytest.raises(DataError):
            fuel_nuclide_names("hm-medium")


class TestLibraryStructure:
    def test_small_size(self, small_library):
        expected = 34 + len(CLAD_NUCLIDES) + len(WATER_NUCLIDES)
        assert len(small_library) == expected

    def test_large_size(self, large_library):
        expected = 320 + len(CLAD_NUCLIDES) + len(WATER_NUCLIDES)
        assert len(large_library) == expected

    def test_lookup_by_name_and_index(self, small_library):
        u238 = small_library["U238"]
        i = small_library.index("U238")
        assert small_library[i] is u238

    def test_contains(self, small_library):
        assert "H1" in small_library
        assert "Unobtainium" not in small_library

    def test_names_ordered_and_stable(self, small_library):
        names = small_library.names
        assert names[: len(HM_SMALL_FUEL)] == HM_SMALL_FUEL

    def test_deterministic_across_builds(self, tiny_config):
        a = build_library("hm-small", tiny_config)
        b = build_library("hm-small", tiny_config)
        np.testing.assert_array_equal(a["U235"].xs, b["U235"].xs)

    def test_seed_changes_data(self, tiny_config):
        a = build_library("hm-small", tiny_config)
        b = build_library("hm-small", tiny_config.with_seed(1))
        assert not np.array_equal(a["U235"].xs, b["U235"].xs)

    def test_nbytes_positive(self, small_library):
        assert small_library.nbytes > 0


class TestNuclidePhysics:
    def test_fissile_nuclides_have_thermal_fission(self, small_library):
        u235 = small_library["U235"]
        xs = u235.micro_xs(2.53e-8)
        assert xs[Reaction.FISSION] > 100.0

    def test_u238_not_thermally_fissile(self, small_library):
        u238 = small_library["U238"]
        xs = u238.micro_xs(2.53e-8)
        assert xs[Reaction.FISSION] < 0.1 * xs[Reaction.CAPTURE]

    def test_b10_is_one_over_v_absorber(self, small_library):
        b10 = small_library["B10"]
        thermal = b10.micro_xs(2.53e-8)[Reaction.CAPTURE]
        fast = b10.micro_xs(1.0)[Reaction.CAPTURE]
        assert thermal > 1000.0
        assert fast < 10.0

    def test_h1_scatterer(self, small_library):
        h1 = small_library["H1"]
        xs = h1.micro_xs(1e-3)
        assert xs[Reaction.ELASTIC] == pytest.approx(20.4, rel=0.05)
        assert xs[Reaction.FISSION] == 0.0

    def test_xe135_strong_absorber(self, small_library):
        xe = small_library["Xe135"]
        assert xe.micro_xs(2.53e-8)[Reaction.CAPTURE] > 1e4

    def test_actinides_have_urr(self, small_library):
        for name in ("U235", "U238", "Pu239"):
            nuc = small_library[name]
            assert nuc.has_urr
            assert name in small_library.urr
            assert nuc.urr_emax > nuc.urr_emin > 0

    def test_fission_products_lack_urr(self, small_library):
        assert not small_library["Xe135"].has_urr

    def test_h1_has_sab(self, small_library):
        assert small_library["H1"].has_sab
        assert "H1" in small_library.sab

    def test_only_h1_has_sab(self, small_library):
        assert set(small_library.sab) == {"H1"}

    def test_awr_tracks_mass(self, small_library):
        assert small_library["U238"].awr == pytest.approx(238.0, rel=0.01)
        assert small_library["H1"].awr == pytest.approx(1.0, rel=0.01)

    def test_synthetic_fp_masses_in_range(self, large_library):
        fp = large_library["FP000"]
        assert 60 <= fp.awr <= 180
        assert not fp.fissionable


class TestConfigs:
    def test_tiny_smaller_than_default(self):
        tiny = LibraryConfig.tiny()
        default = LibraryConfig()
        assert tiny.heavy_resonances < default.heavy_resonances
        assert tiny.n_base_points < default.n_base_points

    def test_build_nuclide_standalone(self, tiny_config):
        nuc, urr, sab = build_nuclide("U238", tiny_config)
        assert nuc.name == "U238"
        assert urr is not None
        assert sab is None

    def test_fission_q(self, small_library):
        assert small_library.fission_q("U235") == pytest.approx(200.0)
