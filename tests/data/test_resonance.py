"""Tests for resonance ladder sampling and pointwise reconstruction."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.resonance import (
    ResonanceLadder,
    build_energy_grid,
    reconstruct_xs,
    sample_ladder,
)
from repro.errors import DataError


@pytest.fixture()
def ladder(rng):
    return sample_ladder(rng, fissionable=True, n_resonances=12)


class TestSampleLadder:
    def test_energies_increasing(self, ladder):
        assert np.all(np.diff(ladder.e0) > 0)

    def test_counts(self, ladder):
        assert ladder.n_resonances == 12
        assert ladder.gamma_n.shape == (12,)

    def test_widths_positive(self, ladder):
        assert np.all(ladder.gamma_n > 0)
        assert np.all(ladder.gamma_g > 0)
        assert np.all(ladder.gamma_f >= 0)

    def test_nonfissionable_has_zero_fission(self, rng):
        lad = sample_ladder(rng, fissionable=False, n_resonances=5)
        assert np.all(lad.gamma_f == 0)

    def test_empty_ladder(self, rng):
        lad = sample_ladder(rng, fissionable=False, n_resonances=0)
        assert lad.n_resonances == 0

    def test_negative_count_rejected(self, rng):
        with pytest.raises(DataError):
            sample_ladder(rng, fissionable=False, n_resonances=-1)

    def test_deterministic(self):
        a = sample_ladder(np.random.default_rng(3), fissionable=True, n_resonances=6)
        b = sample_ladder(np.random.default_rng(3), fissionable=True, n_resonances=6)
        np.testing.assert_array_equal(a.e0, b.e0)
        np.testing.assert_array_equal(a.gamma_n, b.gamma_n)

    def test_mean_spacing_respected(self, rng):
        lad = sample_ladder(
            rng, fissionable=False, n_resonances=400, mean_spacing=50e-6
        )
        spacing = np.diff(lad.e0).mean()
        assert spacing == pytest.approx(50e-6, rel=0.15)

    def test_wigner_repulsion(self, rng):
        """Wigner spacings avoid near-degeneracy: tiny gaps are rare."""
        lad = sample_ladder(
            rng, fissionable=False, n_resonances=2000, mean_spacing=1.0e-5
        )
        s = np.diff(lad.e0) / 1.0e-5
        assert (s < 0.05).mean() < 0.01


class TestLadderValidation:
    def test_mismatched_lengths(self):
        with pytest.raises(DataError):
            ResonanceLadder(
                e0=np.array([1e-5, 2e-5]),
                gamma_n=np.array([1e-9]),
                gamma_g=np.array([1e-9, 1e-9]),
                gamma_f=np.array([0.0, 0.0]),
                sigma_pot=10.0,
                sigma_thermal_capture=1.0,
            )

    def test_decreasing_energies_rejected(self):
        with pytest.raises(DataError):
            ResonanceLadder(
                e0=np.array([2e-5, 1e-5]),
                gamma_n=np.ones(2) * 1e-9,
                gamma_g=np.ones(2) * 1e-9,
                gamma_f=np.zeros(2),
                sigma_pot=10.0,
                sigma_thermal_capture=1.0,
            )


class TestEnergyGrid:
    def test_grid_increasing_unique(self, ladder):
        grid = build_energy_grid(ladder, n_base=100, points_per_resonance=8)
        assert np.all(np.diff(grid) > 0)

    def test_resonances_covered(self, ladder):
        grid = build_energy_grid(ladder, n_base=100, points_per_resonance=8)
        # Each resonance peak should have a grid point within one half-width.
        for e0, g in zip(ladder.e0, ladder.gamma_total):
            nearest = np.min(np.abs(grid - e0))
            assert nearest < g

    def test_no_resonances_gives_base_grid(self, rng):
        lad = sample_ladder(rng, fissionable=False, n_resonances=0)
        grid = build_energy_grid(lad, n_base=50)
        assert grid.size == 50

    def test_denser_near_resonances(self, ladder):
        grid = build_energy_grid(ladder, n_base=100, points_per_resonance=10)
        base = build_energy_grid(ladder, n_base=100, points_per_resonance=0)
        assert grid.size > base.size


class TestReconstruct:
    def test_all_nonnegative(self, ladder):
        grid = build_energy_grid(ladder, n_base=200)
        parts = reconstruct_xs(ladder, grid, awr=238.0, temperature=293.6)
        for key, arr in parts.items():
            assert np.all(arr >= 0), key

    def test_total_is_sum(self, ladder):
        grid = build_energy_grid(ladder, n_base=150)
        parts = reconstruct_xs(ladder, grid, awr=238.0, temperature=293.6)
        np.testing.assert_allclose(
            parts["total"],
            parts["elastic"] + parts["capture"] + parts["fission"],
            rtol=1e-12,
        )

    def test_resonance_peaks_visible(self, ladder):
        """Total XS at a resonance peak far exceeds the between-resonance level."""
        e_peak = ladder.e0[5]
        e_valley = 0.5 * (ladder.e0[5] + ladder.e0[6])
        parts = reconstruct_xs(
            ladder, np.array([e_peak, e_valley]), awr=238.0, temperature=293.6
        )
        assert parts["total"][0] > 3.0 * parts["total"][1]

    def test_one_over_v_capture_at_thermal(self, rng):
        lad = sample_ladder(
            rng, fissionable=False, n_resonances=0, sigma_thermal_capture=10.0
        )
        e = np.array([2.53e-8, 4 * 2.53e-8])
        parts = reconstruct_xs(lad, e, awr=10.0, temperature=293.6)
        # 1/v: doubling velocity (4x energy) halves capture.
        assert parts["capture"][1] == pytest.approx(parts["capture"][0] / 2, rel=1e-6)
        assert parts["capture"][0] == pytest.approx(10.0, rel=1e-6)

    def test_doppler_broadening_lowers_peaks(self, ladder):
        peak = np.array([ladder.e0[3]])
        cold = reconstruct_xs(ladder, peak, awr=238.0, temperature=0.0)
        hot = reconstruct_xs(ladder, peak, awr=238.0, temperature=1200.0)
        assert hot["capture"][0] < cold["capture"][0]

    def test_doppler_preserves_integral(self, ladder):
        """Broadening conserves the resonance integral (within wings error)."""
        e0, g = ladder.e0[4], ladder.gamma_total[4]
        grid = np.linspace(e0 - 300 * g, e0 + 300 * g, 20001)
        cold = reconstruct_xs(ladder, grid, awr=238.0, temperature=0.0)
        hot = reconstruct_xs(ladder, grid, awr=238.0, temperature=600.0)
        area_cold = np.trapezoid(cold["capture"], grid)
        area_hot = np.trapezoid(hot["capture"], grid)
        assert area_hot == pytest.approx(area_cold, rel=2e-2)

    def test_wofz_window_accuracy(self, ladder):
        """The far-wing Lorentzian shortcut matches the full evaluation."""
        grid = build_energy_grid(ladder, n_base=150)
        fast = reconstruct_xs(ladder, grid, awr=238.0, temperature=293.6)
        exact = reconstruct_xs(
            ladder, grid, awr=238.0, temperature=293.6, wofz_window=1e9
        )
        np.testing.assert_allclose(fast["total"], exact["total"], rtol=2e-2)

    def test_rejects_nonpositive_energy(self, ladder):
        with pytest.raises(DataError):
            reconstruct_xs(ladder, np.array([0.0]), awr=238.0, temperature=300.0)

    @given(temp=st.floats(min_value=100.0, max_value=3000.0))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_positive_at_any_temperature(self, ladder, temp):
        grid = np.geomspace(1e-11, 20.0, 200)
        parts = reconstruct_xs(ladder, grid, awr=238.0, temperature=temp)
        assert np.all(parts["total"] > 0)
