"""Tests for URR probability tables."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.urr import URRTable, build_urr_table
from repro.errors import DataError
from repro.types import N_REACTIONS, Reaction


@pytest.fixture()
def table(rng):
    return build_urr_table(rng, emin=3e-3, emax=3e-2, n_bands=6, n_cols=8)


class TestConstruction:
    def test_shapes(self, table):
        assert table.n_bands == 6
        assert table.n_cols == 8
        assert table.factors.shape == (N_REACTIONS, 6, 8)

    def test_cdf_valid(self, table):
        assert np.allclose(table.cdf[:, -1], 1.0)
        assert np.all(np.diff(table.cdf, axis=1) >= 0)

    def test_factors_positive(self, table):
        assert np.all(table.factors > 0)

    def test_unbiased_mean(self, table):
        """Probability-weighted mean factor is 1 in every band: URR sampling
        must not bias the smooth cross section."""
        pdf = np.diff(
            np.concatenate([np.zeros((table.n_bands, 1)), table.cdf], axis=1), axis=1
        )
        mean = np.sum(table.factors * pdf[None], axis=2)
        np.testing.assert_allclose(mean, 1.0, rtol=1e-10)

    def test_nonfissionable_fission_factor_is_one(self, rng):
        t = build_urr_table(rng, emin=1e-3, emax=1e-2, fissionable=False)
        assert np.all(t.factors[Reaction.FISSION] == 1.0)

    def test_invalid_range_rejected(self, rng):
        with pytest.raises(DataError):
            build_urr_table(rng, emin=1e-2, emax=1e-3)

    def test_validation_cdf_end(self):
        with pytest.raises(DataError):
            URRTable(
                band_edges=np.array([1e-3, 1e-2]),
                cdf=np.array([[0.5, 0.9]]),  # does not end at 1
                factors=np.ones((N_REACTIONS, 1, 2)),
            )


class TestRangeQueries:
    def test_contains(self, table):
        assert table.contains(1e-2)
        assert not table.contains(1e-4)
        assert not table.contains(0.5)

    def test_contains_vectorized(self, table):
        e = np.array([1e-4, 5e-3, 2e-2, 1.0])
        np.testing.assert_array_equal(
            table.contains(e), [False, True, True, False]
        )

    def test_band_index_clamps(self, table):
        assert table.band_index(1e-6) == 0
        assert table.band_index(1.0) == table.n_bands - 1

    def test_band_index_interior(self, table):
        for b in range(table.n_bands):
            mid = np.sqrt(table.band_edges[b] * table.band_edges[b + 1])
            assert table.band_index(mid) == b


class TestSampling:
    def test_scalar_returns_all_reactions(self, table):
        f = table.sample_factors(5e-3, 0.4)
        assert f.shape == (N_REACTIONS,)
        assert np.all(f > 0)

    def test_xi_zero_takes_first_column(self, table):
        f = table.sample_factors(5e-3, 0.0)
        band = table.band_index(5e-3)
        np.testing.assert_allclose(f, table.factors[:, band, 0])

    def test_xi_near_one_takes_last_column(self, table):
        f = table.sample_factors(5e-3, 0.999999)
        band = table.band_index(5e-3)
        np.testing.assert_allclose(f, table.factors[:, band, -1])

    def test_vectorized_matches_scalar(self, table, rng):
        energies = rng.uniform(table.emin, table.emax, 100)
        xis = rng.random(100)
        vec = table.sample_factors_many(energies, xis)
        assert vec.shape == (N_REACTIONS, 100)
        for j in range(100):
            np.testing.assert_allclose(
                vec[:, j], table.sample_factors(energies[j], xis[j])
            )

    @given(xi=st.floats(min_value=0.0, max_value=1.0 - 1e-12))
    @settings(
        max_examples=50,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_any_xi_valid(self, table, xi):
        f = table.sample_factors(1e-2, xi)
        assert np.all(np.isfinite(f)) and np.all(f > 0)

    def test_sampled_mean_converges_to_one(self, table, rng):
        """Monte Carlo check of unbiasedness."""
        xis = rng.random(20000)
        energies = np.full(20000, 5e-3)
        f = table.sample_factors_many(energies, xis)
        np.testing.assert_allclose(f.mean(axis=1), 1.0, atol=0.05)
