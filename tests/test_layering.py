"""The layering lint itself must pass, and must actually catch violations."""

import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

import check_layering  # noqa: E402


def test_repo_layering_clean():
    assert check_layering.check() == []


def test_cli_exit_code_zero():
    assert check_layering.main() == 0


def test_detects_upward_import():
    tree = ast.parse("from ..execution.native import NativeModel\n")
    mods = [m for _, m in check_layering.runtime_imports(
        tree, "repro.transport")]
    assert mods == ["repro.execution.native"]
    assert check_layering._in_layer(mods[0], "repro.execution")


def test_type_checking_imports_exempt():
    src = (
        "from typing import TYPE_CHECKING\n"
        "if TYPE_CHECKING:\n"
        "    from ..transport.stats import TransportStats\n"
        "from ..errors import ExecutionError\n"
    )
    tree = ast.parse(src)
    mods = [m for _, m in check_layering.runtime_imports(
        tree, "repro.execution")]
    assert "repro.transport.stats" not in mods
    assert "repro.errors" in mods
    assert "typing" in mods


def test_relative_import_resolution():
    tree = ast.parse("from . import context\nfrom .stats import T\n")
    mods = sorted(m for _, m in check_layering.runtime_imports(
        tree, "repro.transport"))
    assert mods == ["repro.transport", "repro.transport.stats"]


def test_jit_rule_flags_upward_import(tmp_path):
    """Rule 7: a transport/jit module importing a driving layer is a
    violation, detected by the same package checker as the stages rule."""
    pkg = tmp_path / "jit"
    pkg.mkdir()
    (pkg / "bad.py").write_text(
        "from ...simd.analysis import lane_utilization_report\n"
    )
    errors = check_layering._check_package(
        pkg, "repro.transport.jit", check_layering.UPWARD_LAYERS,
        "kernel layer imports upward layer",
    )
    assert len(errors) == 1
    assert "repro.simd.analysis" in errors[0]


def test_jit_package_is_kernel_layer():
    """The real transport/jit package imports nothing upward — and its
    runtime imports stay within physics/data/rng/types/transport."""
    allowed_prefixes = (
        "repro.transport", "repro.physics", "repro.data", "repro.rng",
        "repro.types", "repro.errors", "repro.work",
    )
    for path in sorted(check_layering.JIT_DIR.glob("*.py")):
        tree = ast.parse(path.read_text())
        for _, mod in check_layering.runtime_imports(
            tree, "repro.transport.jit"
        ):
            if mod.startswith("repro."):
                assert mod.startswith(allowed_prefixes), (
                    f"{path.name} imports {mod}"
                )


def test_supervise_rule_flags_transport_import(tmp_path):
    """A supervise module importing transport internals is a violation."""
    pkg = tmp_path / "supervise"
    pkg.mkdir()
    (pkg / "bad.py").write_text(
        "from ..transport.stats import TransportStats\n"
    )
    errors = check_layering._check_package(
        pkg, "repro.supervise", check_layering.SUPERVISE_FORBIDDEN,
        "supervision layer imports supervised layer",
    )
    assert len(errors) == 1
    assert "repro.transport.stats" in errors[0]


def test_resilience_rule_flags_execution_import(tmp_path):
    pkg = tmp_path / "resilience"
    pkg.mkdir()
    (pkg / "bad.py").write_text(
        "from ..execution.native import NativeModel\n"
    )
    errors = check_layering._check_package(
        pkg, "repro.resilience", check_layering.RESILIENCE_FORBIDDEN,
        "resilience primitive imports execution model",
    )
    assert len(errors) == 1
    assert "repro.execution.native" in errors[0]


def test_supervise_package_is_a_leaf():
    """The real supervise package imports none of the supervised layers
    (and, transitively stricter: nothing outside errors + stdlib)."""
    for path in sorted(check_layering.SUPERVISE_DIR.glob("*.py")):
        tree = ast.parse(path.read_text())
        for _, mod in check_layering.runtime_imports(
            tree, "repro.supervise"
        ):
            if mod.startswith("repro.") and not mod.startswith(
                "repro.supervise"
            ):
                assert mod == "repro.errors", (
                    f"{path.name} imports {mod}"
                )


def test_scenarios_roof_rule_flags_core_import(tmp_path):
    """Rule 5 machinery: a core-module import of repro.scenarios is a
    violation, and the CLI's own import is exempt."""
    # The real tree is clean...
    assert check_layering._check_scenarios_roof() == []
    # ...and the detector recognizes the forbidden import shape.
    tree = ast.parse("from .scenarios import load_scenario\n")
    mods = [m for _, m in check_layering.runtime_imports(tree, "repro")]
    assert mods == ["repro.scenarios"]
    assert check_layering._in_layer(mods[0], "repro.scenarios")


def test_gateway_roof_rule_flags_core_import(tmp_path):
    """Rule 6 machinery: the gateway tier is a roof — only the CLI may
    import it, and the generic roof checker catches everything else."""
    # The real tree is clean...
    assert check_layering._check_roof(
        check_layering.GATEWAY_DIR, "repro.gateway",
        check_layering.GATEWAY_IMPORTERS,
        "core module imports the gateway roof layer",
    ) == []
    # ...and the detector recognizes the forbidden import shape.
    core = tmp_path / "core.py"
    core.write_text("from .gateway import Gateway\n")
    errors = check_layering._check_roof(
        check_layering.GATEWAY_DIR, "repro.gateway",
        check_layering.GATEWAY_IMPORTERS,
        "core module imports the gateway roof layer",
        search_files=[core], package_of=lambda p: "repro",
    )
    assert len(errors) == 1
    assert "repro.gateway" in errors[0]


def test_gateway_package_imports_nothing_below_serve():
    """The gateway composes serve + supervise surfaces only: it must not
    reach into scenarios, transport, execution, cluster, simd, or
    machine — placement and caching sit strictly above the service."""
    for path in sorted(check_layering.GATEWAY_DIR.glob("*.py")):
        tree = ast.parse(path.read_text())
        for _, mod in check_layering.runtime_imports(
            tree, "repro.gateway"
        ):
            for layer in check_layering.GATEWAY_FORBIDDEN:
                assert not check_layering._in_layer(mod, layer), (
                    f"{path.name} imports {mod}"
                )


def test_scenarios_package_imports_no_roof_peers():
    """Scenarios may import downward (transport, serve, data, geometry)
    but never execution/cluster/simd/machine — it lowers documents onto
    the run path, it does not schedule."""
    forbidden = ("repro.execution", "repro.cluster", "repro.simd",
                 "repro.machine")
    for path in sorted(check_layering.SCENARIOS_DIR.glob("*.py")):
        tree = ast.parse(path.read_text())
        for _, mod in check_layering.runtime_imports(
            tree, "repro.scenarios"
        ):
            for layer in forbidden:
                assert not check_layering._in_layer(mod, layer), (
                    f"{path.name} imports {mod}"
                )
