"""The layering lint itself must pass, and must actually catch violations."""

import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

import check_layering  # noqa: E402


def test_repo_layering_clean():
    assert check_layering.check() == []


def test_cli_exit_code_zero():
    assert check_layering.main() == 0


def test_detects_upward_import():
    tree = ast.parse("from ..execution.native import NativeModel\n")
    mods = [m for _, m in check_layering.runtime_imports(
        tree, "repro.transport")]
    assert mods == ["repro.execution.native"]
    assert check_layering._in_layer(mods[0], "repro.execution")


def test_type_checking_imports_exempt():
    src = (
        "from typing import TYPE_CHECKING\n"
        "if TYPE_CHECKING:\n"
        "    from ..transport.stats import TransportStats\n"
        "from ..errors import ExecutionError\n"
    )
    tree = ast.parse(src)
    mods = [m for _, m in check_layering.runtime_imports(
        tree, "repro.execution")]
    assert "repro.transport.stats" not in mods
    assert "repro.errors" in mods
    assert "typing" in mods


def test_relative_import_resolution():
    tree = ast.parse("from . import context\nfrom .stats import T\n")
    mods = sorted(m for _, m in check_layering.runtime_imports(
        tree, "repro.transport"))
    assert mods == ["repro.transport", "repro.transport.stats"]
