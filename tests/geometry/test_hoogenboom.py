"""Tests for the Hoogenboom-Martin model and the fast analytic tracker."""

import numpy as np
import pytest

from repro.geometry.hoogenboom import (
    ACTIVE_HALF_HEIGHT,
    ASSEMBLY_PITCH,
    CLAD_RADIUS,
    CORE_SIZE,
    FUEL_RADIUS,
    GUIDE_TUBE_POSITIONS,
    INSTRUMENT_TUBE,
    MAT_CLAD,
    MAT_FUEL,
    MAT_OUTSIDE,
    MAT_WATER,
    N_PINS,
    PIN_PITCH,
    FastCoreGeometry,
    build_hm_geometry,
    build_pincell_geometry,
    hm_core_pattern,
)


@pytest.fixture(scope="module")
def hm():
    return build_hm_geometry("hm-small")


@pytest.fixture(scope="module")
def fast():
    return FastCoreGeometry()


class TestBenchmarkSpec:
    def test_241_assemblies(self):
        assert int(hm_core_pattern().sum()) == 241

    def test_pattern_symmetric(self):
        pat = hm_core_pattern()
        np.testing.assert_array_equal(pat, pat[::-1])
        np.testing.assert_array_equal(pat, pat[:, ::-1])
        np.testing.assert_array_equal(pat, pat.T)

    def test_24_guide_tubes(self):
        assert len(GUIDE_TUBE_POSITIONS) == 24
        assert INSTRUMENT_TUBE not in GUIDE_TUBE_POSITIONS

    def test_assembly_pitch_consistent(self):
        assert N_PINS * PIN_PITCH == pytest.approx(ASSEMBLY_PITCH)

    def test_active_height(self):
        assert 2 * ACTIVE_HALF_HEIGHT == pytest.approx(366.0)


class TestCSGModel:
    def test_center_pin_is_guide_tube(self, hm):
        """The exact core center is the instrumentation tube (water)."""
        loc = hm.geometry.locate(np.array([0.0, 0.0, 0.0]))
        assert loc.material is hm.water

    def test_fuel_found_at_offcenter_pin(self, hm):
        # One pin over from the center of the central assembly.
        p = np.array([PIN_PITCH, 0.0, 0.0])
        loc = hm.geometry.locate(p)
        assert loc.material is hm.fuel

    def test_clad_ring(self, hm):
        r = 0.5 * (FUEL_RADIUS + CLAD_RADIUS)
        p = np.array([PIN_PITCH + r, 0.0, 0.0])
        loc = hm.geometry.locate(p)
        assert loc.material is hm.cladding

    def test_axial_reflector_is_water(self, hm):
        p = np.array([0.0, PIN_PITCH, ACTIVE_HALF_HEIGHT + 5.0])
        loc = hm.geometry.locate(p)
        assert loc.material is hm.water

    def test_radial_reflector_is_water(self, hm):
        edge = 0.5 * CORE_SIZE * ASSEMBLY_PITCH - 1.0
        loc = hm.geometry.locate(np.array([edge, 0.0, 0.0]))
        assert loc.material is hm.water

    def test_corner_assemblies_absent(self, hm):
        """The stepped corners of the 241 pattern are water."""
        # Assembly (0,0) of the 17x17 map is cut; its center:
        c = -0.5 * 17 * ASSEMBLY_PITCH + 0.5 * ASSEMBLY_PITCH
        loc = hm.geometry.locate(np.array([c, c, 0.0]))
        assert loc.material is hm.water

    def test_outside_box(self, hm):
        assert hm.geometry.locate(np.array([500.0, 0.0, 0.0])) is None

    def test_materials_tuple_order(self, hm):
        assert hm.materials == (hm.fuel, hm.cladding, hm.water)


class TestFastMatchesCSG:
    N = 1500

    def _ids_via_csg(self, hm, pts):
        name_to_id = {
            hm.fuel.name: MAT_FUEL,
            hm.cladding.name: MAT_CLAD,
            hm.water.name: MAT_WATER,
        }
        out = np.empty(pts.shape[0], dtype=np.int64)
        for i in range(pts.shape[0]):
            loc = hm.geometry.locate(pts[i])
            out[i] = MAT_OUTSIDE if loc is None else name_to_id[loc.material.name]
        return out

    def test_locate_agreement(self, hm, fast):
        rng = np.random.default_rng(11)
        pts = np.column_stack(
            [
                rng.uniform(-210, 210, self.N),
                rng.uniform(-210, 210, self.N),
                rng.uniform(-210, 210, self.N),
            ]
        )
        np.testing.assert_array_equal(
            fast.locate_many(pts), self._ids_via_csg(hm, pts)
        )

    def test_locate_agreement_inside_fuel_assembly(self, hm, fast):
        """Dense sampling inside the central assembly (fine structure)."""
        rng = np.random.default_rng(13)
        pts = np.column_stack(
            [
                rng.uniform(-10, 10, self.N),
                rng.uniform(-10, 10, self.N),
                rng.uniform(-150, 150, self.N),
            ]
        )
        np.testing.assert_array_equal(
            fast.locate_many(pts), self._ids_via_csg(hm, pts)
        )

    def test_distance_never_longer_than_csg(self, hm, fast):
        """The fast path may add candidate crossings (harmless) but must
        never miss one the CSG engine finds."""
        rng = np.random.default_rng(17)
        n = 300
        pts = np.column_stack(
            [
                rng.uniform(-180, 180, n),
                rng.uniform(-180, 180, n),
                rng.uniform(-180, 180, n),
            ]
        )
        dirs = rng.standard_normal((n, 3))
        dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
        fd = fast.distance_many(pts, dirs)
        for i in range(n):
            dd = hm.geometry.distance_to_boundary(pts[i], dirs[i])
            assert fd[i] <= dd * (1 + 1e-9) + 1e-9

    def test_distance_lands_on_material_change_or_surface(self, fast):
        """Moving the returned distance (plus a nudge) never skips a
        material: material at midpoint of the step equals the start
        material."""
        rng = np.random.default_rng(19)
        n = 500
        pts = np.column_stack(
            [
                rng.uniform(-150, 150, n),
                rng.uniform(-150, 150, n),
                rng.uniform(-150, 150, n),
            ]
        )
        dirs = rng.standard_normal((n, 3))
        dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
        start = fast.locate_many(pts)
        d = fast.distance_many(pts, dirs)
        ok = np.isfinite(d) & (d < 1e25)
        mid = pts[ok] + 0.5 * d[ok, None] * dirs[ok]
        mid_ids = fast.locate_many(mid)
        np.testing.assert_array_equal(mid_ids, start[ok])

    def test_scalar_wrappers(self, fast):
        p = np.array([PIN_PITCH, 0.0, 0.0])
        assert fast.locate(p) == MAT_FUEL
        d = fast.distance(p, np.array([1.0, 0.0, 0.0]))
        assert d == pytest.approx(FUEL_RADIUS)


class TestPincell:
    def test_all_reflective(self):
        m = build_pincell_geometry()
        assert all(v == "reflective" for v in m.geometry.boundary.bc.values())

    def test_regions(self):
        m = build_pincell_geometry()
        g = m.geometry
        assert g.locate(np.array([0.0, 0.0, 0.0])).material is m.fuel
        r = 0.5 * (FUEL_RADIUS + CLAD_RADIUS)
        assert g.locate(np.array([r, 0.0, 0.0])).material is m.cladding
        assert g.locate(np.array([0.6, 0.0, 0.0])).material is m.water

    def test_fast_pincell_agreement(self):
        m = build_pincell_geometry()
        fast = FastCoreGeometry(pincell=True)
        rng = np.random.default_rng(23)
        half = 0.5 * PIN_PITCH
        pts = np.column_stack(
            [
                rng.uniform(-half, half, 500),
                rng.uniform(-half, half, 500),
                rng.uniform(-150, 150, 500),
            ]
        )
        name_to_id = {
            m.fuel.name: MAT_FUEL,
            m.cladding.name: MAT_CLAD,
            m.water.name: MAT_WATER,
        }
        expected = np.array(
            [name_to_id[m.geometry.locate(p).material.name] for p in pts]
        )
        np.testing.assert_array_equal(fast.locate_many(pts), expected)

    def test_fast_pincell_distance(self):
        fast = FastCoreGeometry(pincell=True)
        d = fast.distance(np.array([0.0, 0.0, 0.0]), np.array([1.0, 0.0, 0.0]))
        assert d == pytest.approx(FUEL_RADIUS)
