"""Tests for the CSG engine (cells, universes, lattices, boundary box)."""

import numpy as np
import pytest

from repro.constants import INFINITY
from repro.errors import GeometryError
from repro.geometry.csg import (
    BoundaryBox,
    Cell,
    Geometry,
    Halfspace,
    RectLattice,
    Universe,
)
from repro.geometry.materials import Material
from repro.geometry.surfaces import XPlane, ZCylinder

A = Material("A", {"H1": 1.0})
B = Material("B", {"O16": 1.0})


def two_region_universe():
    cyl = ZCylinder(r=1.0)
    return Universe(
        "u",
        [
            Cell("in", [Halfspace(cyl, -1)], A),
            Cell("out", [Halfspace(cyl, +1)], B),
        ],
    )


class TestHalfspaceAndCell:
    def test_halfspace_sides(self):
        cyl = ZCylinder(r=1.0)
        inside = Halfspace(cyl, -1)
        assert inside.contains(np.array([0.0, 0, 0]))
        assert not inside.contains(np.array([2.0, 0, 0]))

    def test_cell_intersection(self):
        c = Cell(
            "slab",
            [Halfspace(XPlane(0.0), +1), Halfspace(XPlane(1.0), -1)],
            A,
        )
        assert c.contains(np.array([0.5, 0, 0]))
        assert not c.contains(np.array([1.5, 0, 0]))
        assert not c.contains(np.array([-0.5, 0, 0]))

    def test_empty_region_contains_everything(self):
        c = Cell("all", [], A)
        assert c.contains(np.array([1e6, -1e6, 42.0]))

    def test_boundary_distance_min_over_surfaces(self):
        c = Cell(
            "slab",
            [Halfspace(XPlane(0.0), +1), Halfspace(XPlane(1.0), -1)],
            A,
        )
        d = c.boundary_distance(np.array([0.25, 0, 0]), np.array([1.0, 0, 0]))
        assert d == pytest.approx(0.75)

    def test_boundary_distance_empty_region(self):
        c = Cell("all", [], A)
        assert (
            c.boundary_distance(np.array([0.0, 0, 0]), np.array([1.0, 0, 0]))
            == INFINITY
        )


class TestUniverse:
    def test_find_first_match(self):
        u = two_region_universe()
        assert u.find(np.array([0.0, 0, 0])).name == "in"
        assert u.find(np.array([5.0, 0, 0])).name == "out"

    def test_find_none_when_uncovered(self):
        cyl = ZCylinder(r=1.0)
        u = Universe("u", [Cell("in", [Halfspace(cyl, -1)], A)])
        assert u.find(np.array([5.0, 0, 0])) is None


class TestRectLattice:
    def make(self):
        u = two_region_universe()
        return RectLattice(
            "lat",
            lower_left=(-2.0, -2.0),
            pitch=(2.0, 2.0),
            universes=[[u, u], [u, u]],
        )

    def test_element_indexing(self):
        lat = self.make()
        assert lat.element(np.array([-1.5, -1.5, 0])) == (0, 0)
        assert lat.element(np.array([1.5, 1.5, 0])) == (1, 1)
        assert lat.element(np.array([0.5, -0.5, 0])) == (1, 0)

    def test_out_of_bounds(self):
        lat = self.make()
        ix, iy = lat.element(np.array([5.0, 0, 0]))
        assert not lat.in_bounds(ix, iy)

    def test_local_point_centered(self):
        lat = self.make()
        p = np.array([1.5, 1.5, 3.0])
        local = lat.local_point(p, 1, 1)
        np.testing.assert_allclose(local, [0.5, 0.5, 3.0])

    def test_element_boundary_distance(self):
        lat = self.make()
        local = np.array([0.5, 0.0, 0.0])
        d = lat.element_boundary_distance(local, np.array([1.0, 0, 0]))
        assert d == pytest.approx(0.5)
        d = lat.element_boundary_distance(local, np.array([-1.0, 0, 0]))
        assert d == pytest.approx(1.5)

    def test_axial_direction_never_hits_walls(self):
        lat = self.make()
        d = lat.element_boundary_distance(
            np.array([0.0, 0.0, 0.0]), np.array([0.0, 0, 1.0])
        )
        assert d == INFINITY

    def test_validation(self):
        u = two_region_universe()
        with pytest.raises(GeometryError):
            RectLattice("bad", (0, 0), (1.0, 1.0), [])
        with pytest.raises(GeometryError):
            RectLattice("bad", (0, 0), (0.0, 1.0), [[u]])
        with pytest.raises(GeometryError):
            RectLattice("bad", (0, 0), (1.0, 1.0), [[u, u], [u]])


class TestBoundaryBox:
    def box(self, **bc):
        return BoundaryBox(-1, 1, -1, 1, -1, 1, bc=bc)

    def test_contains(self):
        b = self.box()
        assert b.contains(np.array([0.0, 0, 0]))
        assert not b.contains(np.array([2.0, 0, 0]))

    def test_distance_and_face(self):
        b = self.box()
        d, face = b.distance(np.array([0.0, 0, 0]), np.array([1.0, 0, 0]))
        assert d == pytest.approx(1.0)
        assert face == "xmax"
        d, face = b.distance(np.array([0.0, 0, 0]), np.array([0.0, -1.0, 0]))
        assert face == "ymin"

    def test_reflect(self):
        b = self.box()
        u = np.array([0.6, 0.8, 0.0])
        r = b.reflect(u, "xmax")
        np.testing.assert_allclose(r, [-0.6, 0.8, 0.0])

    def test_default_bc_vacuum(self):
        assert self.box().bc["zmin"] == "vacuum"

    def test_bad_bc_rejected(self):
        with pytest.raises(GeometryError):
            self.box(xmin="periodic")

    def test_degenerate_rejected(self):
        with pytest.raises(GeometryError):
            BoundaryBox(1, -1, -1, 1, -1, 1)


class TestGeometryTracking:
    def make_geometry(self):
        u = two_region_universe()
        box = BoundaryBox(-10, 10, -10, 10, -10, 10)
        return Geometry(u, box)

    def test_locate(self):
        g = self.make_geometry()
        loc = g.locate(np.array([0.0, 0, 0]))
        assert loc.material is A
        assert loc.cell_path == ("in",)

    def test_locate_outside_box(self):
        g = self.make_geometry()
        assert g.locate(np.array([20.0, 0, 0])) is None

    def test_distance_hits_cylinder(self):
        g = self.make_geometry()
        d = g.distance_to_boundary(np.array([0.0, 0, 0]), np.array([1.0, 0, 0]))
        assert d == pytest.approx(1.0)

    def test_distance_caps_at_box(self):
        g = self.make_geometry()
        d = g.distance_to_boundary(
            np.array([5.0, 5.0, 0]), np.array([0.0, 0, 1.0])
        )
        assert d == pytest.approx(10.0)

    def test_nested_universe_locate(self):
        inner = two_region_universe()
        outer = Universe("outer", [Cell("wrap", [], inner)])
        g = Geometry(outer, BoundaryBox(-5, 5, -5, 5, -5, 5))
        loc = g.locate(np.array([0.0, 0, 0]))
        assert loc.material is A
        assert loc.cell_path == ("wrap", "in")

    def test_lattice_locate_and_distance(self):
        u = two_region_universe()
        lat = RectLattice(
            "lat", (-2, -2), (2.0, 2.0), [[u, u], [u, u]]
        )
        root = Universe("root", [Cell("core", [], lat)])
        g = Geometry(root, BoundaryBox(-2, 2, -2, 2, -50, 50))
        # Center of element (0,0) is (-1,-1): inside its unit cylinder.
        loc = g.locate(np.array([-1.0, -1.0, 0.0]))
        assert loc.material is A
        assert "[0,0]" in loc.cell_path
        # From element center heading +x: cylinder wall at 1.0 (before the
        # element wall at 1.0 — tie) then water.
        d = g.distance_to_boundary(np.array([-1.0, -1.0, 0.0]), np.array([1.0, 0, 0]))
        assert d == pytest.approx(1.0)

    def test_reflective_boundary(self):
        u = Universe("u", [Cell("all", [], A)])
        box = BoundaryBox(
            -1, 1, -1, 1, -1, 1, bc={"xmax": "reflective"}
        )
        g = Geometry(u, box)
        # Particle nudged slightly past the face, as the transport loop does.
        p = np.array([1.0 + 1e-8, 0.0, 0.0])
        udir = np.array([1.0, 0.0, 0.0])
        p2, u2, alive = g.handle_boundary(p, udir)
        assert alive
        np.testing.assert_allclose(u2, [-1.0, 0.0, 0.0])
        # Position is mirrored back across the face plane, inside the box.
        assert p2[0] < 1.0
        assert p2[0] == pytest.approx(1.0 - 1e-8)

    def test_vacuum_boundary_kills(self):
        g = self.make_geometry()
        p = np.array([10.0, 0.0, 0.0])
        udir = np.array([1.0, 0.0, 0.0])
        _, _, alive = g.handle_boundary(p, udir)
        assert not alive
