"""Tests for material compositions."""

import pytest

from repro.errors import GeometryError
from repro.geometry.materials import Material, make_cladding, make_fuel, make_water


class TestMaterial:
    def test_rejects_empty(self):
        with pytest.raises(GeometryError):
            Material("empty", {})

    def test_rejects_nonpositive_density(self):
        with pytest.raises(GeometryError):
            Material("bad", {"H1": -1.0})

    def test_n_nuclides(self):
        m = Material("m", {"H1": 1.0, "O16": 0.5})
        assert m.n_nuclides == 2

    def test_resolve(self, small_library):
        m = Material("m", {"H1": 0.066, "O16": 0.033})
        ids, rho = m.resolve(small_library)
        assert ids.shape == rho.shape == (2,)
        assert small_library[int(ids[0])].name == "H1"
        assert rho[0] == pytest.approx(0.066)

    def test_resolve_cached(self, small_library):
        m = Material("m", {"H1": 0.066})
        a = m.resolve(small_library)
        b = m.resolve(small_library)
        assert a[0] is b[0]

    def test_resolve_missing_nuclide(self, small_library):
        m = Material("m", {"Unobtainium": 1.0})
        with pytest.raises(GeometryError):
            m.resolve(small_library)


class TestPresets:
    def test_fuel_small_census(self):
        fuel = make_fuel("hm-small")
        # 34 fuel nuclides + O16 (U235/U238 are part of the 34).
        assert fuel.n_nuclides == 35
        assert fuel.densities["U238"] > fuel.densities["U235"]

    def test_fuel_large_census(self):
        fuel = make_fuel("hm-large")
        assert fuel.n_nuclides == 321

    def test_fuel_resolves_against_matching_library(
        self, small_library, large_library
    ):
        make_fuel("hm-small").resolve(small_library)
        make_fuel("hm-large").resolve(large_library)

    def test_water_boron_scaling(self):
        w0 = make_water(boron_ppm=0.0)
        w600 = make_water(boron_ppm=600.0)
        assert "B10" not in w0.densities
        assert w600.densities["B10"] > 0
        # Natural abundance split.
        ratio = w600.densities["B11"] / w600.densities["B10"]
        assert ratio == pytest.approx(0.801 / 0.199, rel=1e-6)

    def test_water_h_to_o_ratio(self):
        w = make_water()
        assert w.densities["H1"] / w.densities["O16"] == pytest.approx(2.0, rel=0.01)

    def test_cladding_natural_zr(self):
        c = make_cladding()
        assert c.n_nuclides == 5
        total = sum(c.densities.values())
        assert total == pytest.approx(4.3e-2, rel=1e-6)
        assert max(c.densities, key=c.densities.get) == "Zr90"
