"""Tests for CSG surface primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import INFINITY
from repro.geometry.surfaces import XPlane, YPlane, ZPlane, ZCylinder


class TestPlanes:
    def test_evaluate_sides(self):
        p = ZPlane(5.0)
        assert p.evaluate(np.array([0.0, 0.0, 6.0])) > 0
        assert p.evaluate(np.array([0.0, 0.0, 4.0])) < 0

    def test_each_axis(self):
        pt = np.array([1.0, 2.0, 3.0])
        assert XPlane(0.0).evaluate(pt) == pytest.approx(1.0)
        assert YPlane(0.0).evaluate(pt) == pytest.approx(2.0)
        assert ZPlane(0.0).evaluate(pt) == pytest.approx(3.0)

    def test_distance_toward(self):
        p = XPlane(10.0)
        d = p.distance(np.array([0.0, 0, 0]), np.array([1.0, 0, 0]))
        assert d == pytest.approx(10.0)

    def test_distance_away_is_infinite(self):
        p = XPlane(10.0)
        d = p.distance(np.array([0.0, 0, 0]), np.array([-1.0, 0, 0]))
        assert d == INFINITY

    def test_distance_parallel_is_infinite(self):
        p = XPlane(10.0)
        d = p.distance(np.array([0.0, 0, 0]), np.array([0.0, 1.0, 0]))
        assert d == INFINITY

    def test_distance_oblique(self):
        p = ZPlane(1.0)
        u = np.array([0.0, np.sqrt(0.75), 0.5])
        d = p.distance(np.array([0.0, 0, 0]), u)
        assert d == pytest.approx(2.0)

    def test_vectorized_matches_scalar(self):
        p = YPlane(3.0)
        rng = np.random.default_rng(1)
        pts = rng.uniform(-5, 5, (50, 3))
        dirs = rng.standard_normal((50, 3))
        dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
        dm = p.distance_many(pts, dirs)
        em = p.evaluate_many(pts)
        for i in range(50):
            assert dm[i] == pytest.approx(p.distance(pts[i], dirs[i]))
            assert em[i] == pytest.approx(p.evaluate(pts[i]))


class TestZCylinder:
    def test_evaluate(self):
        c = ZCylinder(r=2.0)
        assert c.evaluate(np.array([1.0, 0, 0])) < 0
        assert c.evaluate(np.array([3.0, 0, 0])) > 0
        assert c.evaluate(np.array([2.0, 0, 0])) == pytest.approx(0.0)

    def test_offset_center(self):
        c = ZCylinder(r=1.0, x0=5.0, y0=5.0)
        assert c.evaluate(np.array([5.0, 5.0, -9.0])) < 0

    def test_distance_from_inside(self):
        c = ZCylinder(r=2.0)
        d = c.distance(np.array([0.0, 0, 0]), np.array([1.0, 0, 0]))
        assert d == pytest.approx(2.0)

    def test_distance_from_outside_hits_near_wall(self):
        c = ZCylinder(r=2.0)
        d = c.distance(np.array([-5.0, 0, 0]), np.array([1.0, 0, 0]))
        assert d == pytest.approx(3.0)

    def test_miss_is_infinite(self):
        c = ZCylinder(r=2.0)
        d = c.distance(np.array([-5.0, 3.0, 0]), np.array([1.0, 0, 0]))
        assert d == INFINITY

    def test_axial_ray_never_hits(self):
        c = ZCylinder(r=2.0)
        d = c.distance(np.array([0.0, 0, 0]), np.array([0.0, 0, 1.0]))
        assert d == INFINITY

    def test_distance_with_z_component(self):
        """A 45-degree ray travels sqrt(2) times the radial distance."""
        c = ZCylinder(r=1.0)
        u = np.array([np.sqrt(0.5), 0.0, np.sqrt(0.5)])
        d = c.distance(np.array([0.0, 0, 0]), u)
        assert d == pytest.approx(np.sqrt(2.0))

    def test_vectorized_matches_scalar(self):
        c = ZCylinder(r=1.5, x0=0.3, y0=-0.2)
        rng = np.random.default_rng(7)
        pts = rng.uniform(-3, 3, (100, 3))
        dirs = rng.standard_normal((100, 3))
        dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
        dm = c.distance_many(pts, dirs)
        for i in range(100):
            scalar = c.distance(pts[i], dirs[i])
            if scalar == INFINITY:
                assert dm[i] == INFINITY
            else:
                assert dm[i] == pytest.approx(scalar)

    @given(
        x=st.floats(-3, 3), y=st.floats(-3, 3),
        ux=st.floats(-1, 1), uy=st.floats(-1, 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_moving_to_crossing_lands_on_surface(self, x, y, ux, uy):
        norm = np.hypot(ux, uy)
        if norm < 1e-6:
            return
        c = ZCylinder(r=2.0)
        p = np.array([x, y, 0.0])
        u = np.array([ux / norm, uy / norm, 0.0])
        d = c.distance(p, u)
        if d < INFINITY:
            landed = p + d * u
            assert c.evaluate(landed) == pytest.approx(0.0, abs=1e-7)
