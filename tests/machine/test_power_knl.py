"""Tests for the §V extensions: energy model and Knights Landing projection."""

import pytest

from repro.errors import MachineModelError
from repro.machine.knl import KNL_PROJECTED, knl_projection
from repro.machine.power import (
    POWER_MODELS,
    PowerModel,
    energy_per_particle,
    power_model_for,
)
from repro.machine.presets import JLSE_HOST, MIC_7120A, MIC_SE10P, STAMPEDE_HOST


class TestPowerModel:
    def test_draw_interpolates(self):
        pm = PowerModel("x", idle_w=100.0, max_w=300.0)
        assert pm.draw_w(0.0) == 100.0
        assert pm.draw_w(1.0) == 300.0
        assert pm.draw_w(0.5) == 200.0

    def test_energy(self):
        pm = PowerModel("x", idle_w=100.0, max_w=300.0)
        assert pm.energy_j(10.0, 1.0) == pytest.approx(3000.0)

    def test_validation(self):
        with pytest.raises(MachineModelError):
            PowerModel("x", idle_w=300.0, max_w=100.0)
        pm = PowerModel("x", idle_w=1.0, max_w=2.0)
        with pytest.raises(MachineModelError):
            pm.draw_w(1.5)

    def test_all_presets_have_models(self):
        for dev in (JLSE_HOST, MIC_7120A, STAMPEDE_HOST, MIC_SE10P):
            pm = power_model_for(dev)
            assert pm.max_w > pm.idle_w > 0

    def test_unknown_device(self):
        with pytest.raises(MachineModelError):
            power_model_for(KNL_PROJECTED)

    def test_mic_tdp_spec_sheet(self):
        assert POWER_MODELS["xeon-phi-7120a"].max_w == 300.0


class TestEnergyPerParticle:
    def test_mic_more_efficient_at_scale(self):
        """Paper §V: 'host-attached devices show excellent performance per
        watt' — true at high occupancy."""
        e_host = energy_per_particle(JLSE_HOST, "hm-large", 100_000)
        e_mic = energy_per_particle(MIC_7120A, "hm-large", 100_000)
        assert e_mic < e_host

    def test_mic_advantage_shrinks_at_low_occupancy(self):
        """The flip side: at small batches the MIC burns idle watts."""
        adv_big = energy_per_particle(
            JLSE_HOST, "hm-large", 100_000
        ) / energy_per_particle(MIC_7120A, "hm-large", 100_000)
        adv_small = energy_per_particle(
            JLSE_HOST, "hm-large", 500
        ) / energy_per_particle(MIC_7120A, "hm-large", 500)
        assert adv_small < adv_big

    def test_positive_and_finite(self):
        for n in (100, 10_000, 1_000_000):
            e = energy_per_particle(MIC_7120A, "hm-large", n)
            assert 0 < e < 100

    def test_validation(self):
        with pytest.raises(MachineModelError):
            energy_per_particle(JLSE_HOST, "hm-large", 0)


class TestKNL:
    def test_spec_matches_paper_description(self):
        """§V: up to 72 cores, OoO, 16 GB on-package."""
        assert KNL_PROJECTED.cores == 72
        assert KNL_PROJECTED.out_of_order
        assert KNL_PROJECTED.mem_gb == 16.0
        assert KNL_PROJECTED.vector_bits == 512

    def test_single_thread_speedup_about_3x(self):
        """The paper's projection: '~3x single thread speedup over
        Knights Corner'."""
        proj = knl_projection()
        assert proj["single_thread_speedup"] == pytest.approx(3.0, abs=0.6)

    def test_knl_beats_knc(self):
        proj = knl_projection()
        assert proj["rate_knl"] > 2 * proj["rate_knc"]

    def test_knl_beats_host(self):
        proj = knl_projection()
        assert proj["knl_vs_jlse_host"] > 2.0

    def test_custom_workload(self):
        proj = knl_projection(model="hm-small", n_particles=10_000)
        assert proj["rate_knl"] > proj["rate_knc"]
