"""Tests for device specifications."""

import pytest

from repro.errors import MachineModelError
from repro.machine.presets import JLSE_HOST, MIC_7120A, MIC_SE10P, STAMPEDE_HOST
from repro.machine.spec import DeviceSpec


class TestDeviceSpec:
    def test_threads(self):
        assert JLSE_HOST.threads == 32
        assert MIC_7120A.threads == 244

    def test_vector_lanes(self):
        assert MIC_7120A.vector_lanes("f32") == 16
        assert MIC_7120A.vector_lanes("f64") == 8
        assert JLSE_HOST.vector_lanes("f32") == 8
        assert JLSE_HOST.vector_lanes("f64") == 4

    def test_unknown_precision(self):
        with pytest.raises(MachineModelError):
            MIC_7120A.vector_lanes("f16")

    def test_peak_flops_mic_spec_sheet(self):
        """Xeon Phi 7120: ~2.4 TF single, ~1.2 TF double."""
        assert MIC_7120A.peak_vector_flops("f32") == pytest.approx(2.42e12, rel=0.01)
        assert MIC_7120A.peak_vector_flops("f64") == pytest.approx(1.21e12, rel=0.01)

    def test_in_order_scalar_penalty(self):
        """In-order cores sustain far fewer scalar ops per cycle-core."""
        mic_per_core = MIC_7120A.peak_scalar_ops() / (
            MIC_7120A.cores * MIC_7120A.clock_ghz * 1e9
        )
        host_per_core = JLSE_HOST.peak_scalar_ops() / (
            JLSE_HOST.cores * JLSE_HOST.clock_ghz * 1e9
        )
        assert mic_per_core < host_per_core

    def test_effective_bandwidth_degrades_with_gathers(self):
        full = MIC_7120A.effective_bandwidth(0.0)
        gathered = MIC_7120A.effective_bandwidth(1.0)
        assert gathered == pytest.approx(full * MIC_7120A.gather_efficiency)
        assert MIC_7120A.effective_bandwidth(0.5) == pytest.approx(
            0.5 * (full + gathered)
        )

    def test_gather_fraction_validated(self):
        with pytest.raises(MachineModelError):
            JLSE_HOST.effective_bandwidth(1.5)

    def test_validation(self):
        with pytest.raises(MachineModelError):
            DeviceSpec(
                name="bad", cores=0, threads_per_core=1, clock_ghz=1.0,
                vector_bits=256, dram_bw_gbps=10.0, mem_gb=1.0,
                out_of_order=True,
            )
        with pytest.raises(MachineModelError):
            DeviceSpec(
                name="bad", cores=1, threads_per_core=1, clock_ghz=1.0,
                vector_bits=333, dram_bw_gbps=10.0, mem_gb=1.0,
                out_of_order=True,
            )

    def test_paper_configurations(self):
        """The presets match the paper's hardware descriptions."""
        assert MIC_7120A.cores == 61 and MIC_7120A.clock_ghz == 1.238
        assert MIC_SE10P.cores == 61 and MIC_SE10P.clock_ghz == 1.1
        assert MIC_SE10P.mem_gb == 8.0 and MIC_7120A.mem_gb == 16.0
        assert STAMPEDE_HOST.clock_ghz < JLSE_HOST.clock_ghz
