"""Tests for the calibrated kernel/transport cost models.

These tests pin the model to the paper's anchor measurements: if a
calibration constant drifts, the corresponding experiment (and this test)
breaks.
"""

import pytest

from repro.errors import MachineModelError
from repro.machine.kernels import (
    TransportCostModel,
    WorkPerParticle,
    distance_sampling_time,
    lookup_rate,
)
from repro.machine.presets import JLSE_HOST, MIC_7120A, MIC_SE10P, STAMPEDE_HOST
from repro.work import WorkCounters

WORK = WorkPerParticle.hm_reference()
N_NUC_LARGE = 321


class TestTableIIIAnchors:
    def test_host_rate(self):
        model = TransportCostModel(JLSE_HOST, N_NUC_LARGE, WORK)
        assert model.calculation_rate(100_000) == pytest.approx(4050, rel=0.05)

    def test_mic_rate(self):
        model = TransportCostModel(MIC_7120A, N_NUC_LARGE, WORK)
        assert model.calculation_rate(100_000) == pytest.approx(6641, rel=0.05)

    def test_alpha_jlse(self):
        h = TransportCostModel(JLSE_HOST, N_NUC_LARGE, WORK)
        m = TransportCostModel(MIC_7120A, N_NUC_LARGE, WORK)
        alpha = h.calculation_rate(100_000) / m.calculation_rate(100_000)
        assert alpha == pytest.approx(0.62, abs=0.02)

    def test_alpha_stampede(self):
        h = TransportCostModel(STAMPEDE_HOST, N_NUC_LARGE, WORK)
        m = TransportCostModel(MIC_SE10P, N_NUC_LARGE, WORK)
        alpha = h.calculation_rate(1_000_000) / m.calculation_rate(1_000_000)
        assert alpha == pytest.approx(0.42, abs=0.03)


class TestFig2Anchor:
    def test_banked_mic_vs_history_cpu_is_order_10x(self):
        ratio = lookup_rate(MIC_7120A, "banked", N_NUC_LARGE) / lookup_rate(
            JLSE_HOST, "history", N_NUC_LARGE
        )
        assert 8.0 < ratio < 12.0

    def test_banked_beats_history_on_same_device(self):
        assert lookup_rate(MIC_7120A, "banked", N_NUC_LARGE) > lookup_rate(
            MIC_7120A, "history", N_NUC_LARGE
        )

    def test_fewer_nuclides_faster(self):
        assert lookup_rate(MIC_7120A, "banked", 35) > lookup_rate(
            MIC_7120A, "banked", 321
        )

    def test_unknown_mode(self):
        with pytest.raises(MachineModelError):
            lookup_rate(MIC_7120A, "quantum", 35)


class TestTableIAnchors:
    @pytest.mark.parametrize(
        "device,impl,expected",
        [
            (JLSE_HOST, "naive", 412.0),
            (JLSE_HOST, "optimized1", 40.6),
            (JLSE_HOST, "optimized2", 36.6),
            (MIC_7120A, "naive", 8243.0),
            (MIC_7120A, "optimized1", 21.0),
            (MIC_7120A, "optimized2", 18.9),
        ],
    )
    def test_table_entries(self, device, impl, expected):
        t = distance_sampling_time(device, impl)
        assert t == pytest.approx(expected, rel=0.05)

    def test_unknown_impl(self):
        with pytest.raises(MachineModelError):
            distance_sampling_time(JLSE_HOST, "optimized3")

    def test_naive_catastrophic_on_mic(self):
        """The in-order MIC is >10x slower than the host on scalar code."""
        ratio = distance_sampling_time(MIC_7120A, "naive") / distance_sampling_time(
            JLSE_HOST, "naive"
        )
        assert ratio > 10

    def test_mic_wins_when_vectorized(self):
        """Vectorized, the MIC's bandwidth advantage shows."""
        assert distance_sampling_time(MIC_7120A, "optimized2") < (
            distance_sampling_time(JLSE_HOST, "optimized2")
        )


class TestTransportCostModel:
    def test_rate_saturates_with_particles(self):
        m = TransportCostModel(MIC_7120A, N_NUC_LARGE, WORK)
        rates = [m.calculation_rate(n) for n in (100, 1_000, 10_000, 100_000)]
        assert rates == sorted(rates)
        # Low occupancy hurts badly at 100 particles on 244 threads.
        assert rates[0] < 0.25 * rates[-1]

    def test_mic_more_occupancy_sensitive_than_host(self):
        """The 1-MIC strong-scaling tail of Fig. 6: at low particles/node
        the MIC loses more of its rate than the host."""
        h = TransportCostModel(JLSE_HOST, N_NUC_LARGE, WORK)
        m = TransportCostModel(MIC_7120A, N_NUC_LARGE, WORK)
        drop_h = h.calculation_rate(3_000) / h.calculation_rate(100_000)
        drop_m = m.calculation_rate(3_000) / m.calculation_rate(100_000)
        assert drop_m < drop_h

    def test_lookup_fraction_dominant(self):
        """Fig. 4: the top routines are all cross-section lookups."""
        m = TransportCostModel(JLSE_HOST, N_NUC_LARGE, WORK)
        assert m.lookup_fraction() > 0.5

    def test_banked_mode_faster_asymptotically(self):
        hist = TransportCostModel(MIC_7120A, N_NUC_LARGE, WORK, mode="history")
        bank = TransportCostModel(MIC_7120A, N_NUC_LARGE, WORK, mode="banked")
        assert bank.particle_seconds() < hist.particle_seconds()

    def test_work_from_counters(self):
        c = WorkCounters(lookups=600, flights=600, collisions=170)
        w = WorkPerParticle.from_counters(c, 10)
        assert w.lookups == 60.0 and w.collisions == 17.0

    def test_invalid_mode(self):
        with pytest.raises(MachineModelError):
            TransportCostModel(JLSE_HOST, 35, WORK, mode="warp")

    def test_batch_time_includes_overhead(self):
        m = TransportCostModel(MIC_7120A, N_NUC_LARGE, WORK)
        assert m.batch_time(0) > 0
