"""Tests for the occupancy model, PCIe link, and roofline helpers."""

import pytest

from repro.errors import MachineModelError
from repro.machine.occupancy import (
    batch_overhead_s,
    occupancy_factor,
    thread_utilization,
)
from repro.machine.pcie import PCIeLink
from repro.machine.presets import JLSE_HOST, MIC_7120A, PCIE_GEN2_X16
from repro.machine.roofline import (
    KernelProfile,
    compute_time,
    kernel_time,
    memory_time,
)


class TestThreadUtilization:
    def test_exact_multiple_is_full(self):
        assert thread_utilization(64, 32) == 1.0

    def test_one_extra_item_halves_at_worst(self):
        # 33 items on 32 threads: two rounds, mostly idle second round.
        assert thread_utilization(33, 32) == pytest.approx(33 / 64)

    def test_fewer_items_than_threads(self):
        assert thread_utilization(8, 32) == pytest.approx(0.25)

    def test_zero_items(self):
        assert thread_utilization(0, 32) == 0.0

    def test_invalid(self):
        with pytest.raises(MachineModelError):
            thread_utilization(-1, 32)


class TestOccupancyFactor:
    def test_monotone_saturating(self):
        f = [occupancy_factor(MIC_7120A, n) for n in (244, 2440, 24400, 244000)]
        assert f == sorted(f)
        assert f[-1] > 0.95

    def test_mic_needs_more_particles_than_host(self):
        n = 2_000
        assert occupancy_factor(MIC_7120A, n) < occupancy_factor(JLSE_HOST, n)

    def test_batch_overhead_larger_on_mic(self):
        assert batch_overhead_s(MIC_7120A) > batch_overhead_s(JLSE_HOST)


class TestPCIe:
    def test_bank_transfer_table2_small(self):
        """Table II: 496 MB bank in ~460 ms."""
        t = PCIE_GEN2_X16.bank_transfer_time(496e6)
        assert t == pytest.approx(0.46, rel=0.2)

    def test_bank_transfer_table2_large(self):
        """Table II: 2.84 GB bank in ~2,210 ms."""
        t = PCIE_GEN2_X16.bank_transfer_time(2.84e9)
        assert t == pytest.approx(2.21, rel=0.05)

    def test_bulk_five_gb_per_second_rule(self):
        """Paper: 'approximately 1 second for every 5 GB'."""
        t = PCIE_GEN2_X16.bulk_transfer_time(5e9)
        assert t == pytest.approx(1.0, rel=0.05)

    def test_latency_floor(self):
        assert PCIE_GEN2_X16.bank_transfer_time(0) == pytest.approx(
            PCIE_GEN2_X16.latency_s
        )

    def test_validation(self):
        with pytest.raises(MachineModelError):
            PCIeLink(latency_s=-1, bank_bandwidth_gbps=1, bulk_bandwidth_gbps=1)
        with pytest.raises(MachineModelError):
            PCIeLink(latency_s=0, bank_bandwidth_gbps=0, bulk_bandwidth_gbps=1)


class TestRoofline:
    def make_profile(self, **kw):
        defaults = dict(
            name="k", flops_per_item=10.0, bytes_per_item=80.0,
            vector_fraction=0.9, gather_fraction=0.5,
        )
        defaults.update(kw)
        return KernelProfile(**defaults)

    def test_kernel_time_is_max(self):
        p = self.make_profile()
        n = 1e6
        t = kernel_time(MIC_7120A, p, n)
        assert t == max(
            compute_time(MIC_7120A, p, n), memory_time(MIC_7120A, p, n)
        )

    def test_memory_bound_kernel(self):
        """80 B / 10 flops is far below any machine balance point."""
        p = self.make_profile()
        n = 1e6
        assert memory_time(MIC_7120A, p, n) > compute_time(MIC_7120A, p, n)

    def test_scalar_code_punishes_mic(self):
        """An unvectorized compute kernel runs slower on the in-order MIC
        than on the host despite the MIC's higher peak."""
        p = self.make_profile(
            flops_per_item=1000.0, bytes_per_item=8.0, vector_fraction=0.0,
            gather_fraction=0.0,
        )
        assert compute_time(MIC_7120A, p, 1e6) > compute_time(JLSE_HOST, p, 1e6)

    def test_vector_code_favors_mic(self):
        p = self.make_profile(
            flops_per_item=1000.0, bytes_per_item=8.0, vector_fraction=1.0,
            gather_fraction=0.0,
        )
        assert compute_time(MIC_7120A, p, 1e6) < compute_time(JLSE_HOST, p, 1e6)

    def test_profile_validation(self):
        with pytest.raises(MachineModelError):
            self.make_profile(vector_fraction=1.5)
        with pytest.raises(MachineModelError):
            self.make_profile(flops_per_item=-1.0)
