"""Tests for the Table II / Fig. 5 memory models."""

import pytest

from repro.errors import MachineModelError
from repro.machine.memory import (
    bank_bytes,
    energy_grid_bytes,
    library_nuclides,
    max_particles,
    particle_record_bytes,
    resident_grid_bytes,
)
from repro.machine.presets import JLSE_HOST, MIC_7120A, MIC_SE10P


class TestTableIIAnchors:
    def test_bank_small(self):
        """Table II: 496 MB bank for 1e5 particles, H.M. Small."""
        assert bank_bytes(100_000, "hm-small") == pytest.approx(496e6, rel=0.02)

    def test_bank_large(self):
        """Table II: 2.84 GB bank for 1e5 particles, H.M. Large."""
        assert bank_bytes(100_000, "hm-large") == pytest.approx(2.84e9, rel=0.02)

    def test_grid_small(self):
        """Table II: 1.31 GB energy grid, H.M. Small."""
        assert energy_grid_bytes("hm-small") == pytest.approx(1.31e9, rel=0.10)

    def test_grid_large(self):
        """Table II: 8.37 GB energy grid, H.M. Large."""
        assert energy_grid_bytes("hm-large") == pytest.approx(8.37e9, rel=0.10)

    def test_record_scales_with_nuclides(self):
        assert particle_record_bytes("hm-large") > particle_record_bytes("hm-small")

    def test_unknown_model(self):
        with pytest.raises(MachineModelError):
            library_nuclides("hm-medium")


class TestFig5MemoryLimits:
    def test_host_limit_bracket(self):
        """Paper: host runs out between 1e7 and 1e8 particles (H.M. Large)."""
        limit = max_particles(JLSE_HOST, "hm-large")
        assert 1e7 < limit < 1e8

    def test_mic16_limit_bracket(self):
        limit = max_particles(MIC_7120A, "hm-large")
        assert 1e7 < limit < 1e8

    def test_se10p_limit_bracket(self):
        """Paper: the 8 GB MIC runs out between 1e6 and 1e7."""
        limit = max_particles(MIC_SE10P, "hm-large")
        assert 1e6 < limit < 1e7

    def test_resident_smaller_than_transferred(self):
        assert resident_grid_bytes("hm-large") < energy_grid_bytes("hm-large")
