"""GPU-era device presets, the device/link registries, and the fleet
view of the cost model (ISSUE 9: heterogeneous N-device fleets)."""

import pytest

from repro.cluster.topology import FLEET_PRESETS, available_fleets, fleet_by_name
from repro.errors import ClusterError, MachineModelError
from repro.execution.symmetric import FleetNode, SymmetricNode
from repro.machine.presets import (
    EPYC_HOST,
    GPU_A100,
    GPU_MI250X,
    JLSE_HOST,
    MIC_7120A,
    NVLINK3,
    available_devices,
    available_links,
    device_by_name,
    fleet_from_names,
    link_by_name,
)


class TestGpuSpecs:
    def test_a100_matches_published_parameters(self):
        """108 SMs x 64 resident warps; 32 f64 lanes/warp; the peak f64
        rate works out to the published 9.7 TFLOP/s."""
        assert GPU_A100.threads == 108 * 64 == 6912
        assert GPU_A100.vector_lanes("f64") == 32
        assert GPU_A100.peak_vector_flops("f64") == pytest.approx(
            9.74e12, rel=0.01
        )
        assert GPU_A100.dram_bw_gbps == 1555.0

    def test_class_keys(self):
        """GPUs get their own kernel-constant column; CPUs/MICs keep the
        2013-era derivation from out_of_order."""
        assert GPU_A100.class_key == "gpu"
        assert GPU_MI250X.class_key == "gpu"
        assert EPYC_HOST.class_key == "ooo"
        assert JLSE_HOST.class_key == "ooo"
        assert MIC_7120A.class_key == "in_order"

    def test_gpu_kind_is_not_out_of_order(self):
        """The gpu column applies regardless of the out_of_order flag the
        warp scheduler would otherwise be shoehorned into."""
        assert not GPU_A100.out_of_order
        assert GPU_A100.kind == "gpu"

    def test_unknown_kind_rejected(self):
        from repro.machine.spec import DeviceSpec

        with pytest.raises(MachineModelError, match="kind"):
            DeviceSpec(
                name="x", cores=1, threads_per_core=1, clock_ghz=1.0,
                vector_bits=256, dram_bw_gbps=1.0, mem_gb=1.0,
                out_of_order=True, kind="tpu",
            )


class TestDeviceRegistry:
    def test_alias_and_full_name_resolve_to_same_spec(self):
        assert device_by_name("a100") is GPU_A100
        assert device_by_name("gpu-a100-sxm") is GPU_A100
        assert device_by_name("jlse-host") is JLSE_HOST

    def test_unknown_device_error_lists_live_registry(self):
        """The transport backend registry-error convention: the error
        names every available device."""
        with pytest.raises(MachineModelError) as err:
            device_by_name("h100")
        msg = str(err.value)
        assert "unknown device 'h100'" in msg
        for name in available_devices():
            assert name in msg

    def test_fleet_from_names_preserves_order(self):
        fleet = fleet_from_names(["a100", "epyc-host", "a100"])
        assert [d.name for d in fleet] == [
            "gpu-a100-sxm", "epyc-host-2x7763", "gpu-a100-sxm",
        ]

    def test_link_registry(self):
        assert link_by_name("nvlink3") is NVLINK3
        assert "pcie-gen2-x16" in available_links()
        with pytest.raises(MachineModelError) as err:
            link_by_name("nvlink9")
        assert "available links" in str(err.value)
        for name in available_links():
            assert name in str(err.value)


class TestFleetPresets:
    def test_every_preset_resolves(self):
        for name in available_fleets():
            fleet = fleet_by_name(name)
            assert len(fleet) == len(FLEET_PRESETS[name])
            # Host-last ordering (the FleetNode convention).
            assert fleet[-1].class_key == "ooo"

    def test_jlse_node_is_the_paper_node(self):
        fleet = fleet_by_name("jlse-node")
        assert [d.name for d in fleet] == [
            MIC_7120A.name, MIC_7120A.name, JLSE_HOST.name,
        ]

    def test_unknown_fleet_error_lists_registry(self):
        with pytest.raises(ClusterError) as err:
            fleet_by_name("dgx-node")
        msg = str(err.value)
        assert "unknown fleet 'dgx-node'" in msg
        for name in available_fleets():
            assert name in msg


class TestFleetNodeModel:
    def test_rate_strategy_beats_equal_on_heterogeneous_fleet(self):
        node = FleetNode(fleet_by_name("a100-node"), "hm-large")
        n = 1_000_000
        assert node.calculation_rate(n, "rate") > 1.5 * node.calculation_rate(
            n, "equal"
        )

    def test_rate_strategy_matches_equal_on_homogeneous_fleet(self):
        node = FleetNode([EPYC_HOST, EPYC_HOST], "hm-large")
        n = 100_000
        assert node.calculation_rate(n, "rate") == pytest.approx(
            node.calculation_rate(n, "equal"), rel=1e-6
        )

    def test_weights_strategy_requires_weights(self):
        from repro.errors import ExecutionError

        node = FleetNode([EPYC_HOST], "hm-small")
        with pytest.raises(ExecutionError):
            node.fleet_counts(100, "weights")
        assert node.fleet_counts(100, "weights", weights=[1.0]) == [100]

    def test_empty_fleet_rejected(self):
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            FleetNode([], "hm-small")

    def test_symmetric_node_is_a_two_class_fleet_view(self):
        """SymmetricNode rides on FleetNode with rank order [*mics, host]
        and keeps the Eq. 3 alpha split bit-identical to fleet order."""
        node = SymmetricNode(JLSE_HOST, [MIC_7120A, MIC_7120A], "hm-large")
        assert isinstance(node, FleetNode)
        assert [d.name for d in node.devices] == [
            MIC_7120A.name, MIC_7120A.name, JLSE_HOST.name,
        ]
        mic_counts, host = node.split(100_000, "alpha", 0.62)
        assert sum(mic_counts) + host == 100_000
        assert node.fleet_counts(100_000, "alpha", 0.62) == [
            *mic_counts, host,
        ]

    def test_modern_crossover_shape(self):
        """Fig. 5 at modern scale: the host out-runs a starved GPU on
        tiny batches; the GPU dominates at production batch sizes."""
        gpu = FleetNode([device_by_name("a100")], "hm-large")
        host = FleetNode([EPYC_HOST], "hm-large")
        assert host.calculation_rate(1_000) > gpu.calculation_rate(1_000)
        assert gpu.calculation_rate(1_000_000) > 5 * host.calculation_rate(
            1_000_000
        )
