"""Tests for the two command-line entry points."""

import json

import pytest

from repro.cli import build_parser, main as sim_main
from repro.experiments.cli import main as exp_main


class TestArgumentParsing:
    """Pure parser coverage: every subcommand, no simulation spawned."""

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.mode == "event"
        assert args.model == "hm-small"
        assert args.library_cache is None
        assert args.json_output is False

    def test_run_service_flags(self):
        args = build_parser().parse_args(
            ["run", "--library-cache", "xs/", "--json"]
        )
        assert args.library_cache == "xs/"
        assert args.json_output is True

    def test_checkpoint_requires_dir(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["checkpoint"])
        capsys.readouterr()

    def test_checkpoint_and_resume_flags(self):
        ck = build_parser().parse_args(
            ["checkpoint", "--dir", "ck", "--every", "3"]
        )
        assert ck.checkpoint_dir == "ck"
        assert ck.checkpoint_every == 3
        rs = build_parser().parse_args(["resume", "--dir", "ck"])
        assert rs.checkpoint_dir == "ck"

    def test_submit_flags(self):
        args = build_parser().parse_args(
            ["submit", "--spool", "sp", "--priority", "4",
             "--deadline", "30", "--job-id", "j1", "--pincell"]
        )
        assert args.command == "submit"
        assert args.spool == "sp"
        assert args.priority == 4
        assert args.deadline == 30.0
        assert args.job_id == "j1"
        assert args.pincell is True

    def test_serve_flags(self):
        args = build_parser().parse_args(
            ["serve", "--spool", "sp", "--workers", "4",
             "--cache", "xs/", "--capacity", "8", "--max-attempts", "2"]
        )
        assert args.command == "serve"
        assert (args.workers, args.capacity, args.max_attempts) == (4, 8, 2)
        assert args.cache == "xs/"

    def test_serve_requires_spool_or_jobs(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])
        capsys.readouterr()

    def test_serve_spool_and_jobs_are_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--spool", "a", "--jobs", "b"]
            )
        capsys.readouterr()

    def test_supervise_flags(self):
        args = build_parser().parse_args(
            ["run", "--supervise", "--batch-deadline-s", "2.5"]
        )
        assert args.supervise is True
        assert args.batch_deadline_s == 2.5
        bare = build_parser().parse_args(["run"])
        assert bare.supervise is False
        assert bare.batch_deadline_s is None

    def test_serve_drain_deadline_flag(self):
        args = build_parser().parse_args(
            ["serve", "--jobs", "j.jsonl", "--drain-deadline-s", "30"]
        )
        assert args.drain_deadline_s == 30.0

    def test_status_flags(self):
        args = build_parser().parse_args(["status", "--spool", "sp", "--json"])
        assert args.command == "status"
        assert args.json_output is True

    def test_legacy_bare_form_maps_to_run(self, capsys):
        """``repro-sim --pincell`` (no subcommand) parses as ``run`` — via
        main(), which owns the rewrite."""
        with pytest.raises(SystemExit):
            # Direct parse without the rewrite must fail...
            build_parser().parse_args(["--pincell"])
        capsys.readouterr()
        # ...but main() rewrites and only then parses (bad flag -> exit 2).
        with pytest.raises(SystemExit) as err:
            sim_main(["--pincell", "--no-such-flag"])
        assert err.value.code == 2
        capsys.readouterr()


class TestReproSim:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.mode == "event"
        assert args.model == "hm-small"

    def test_legacy_flat_form_still_runs(self, capsys):
        """``repro-sim --pincell ...`` (no subcommand) means ``run``."""
        rc = sim_main(
            ["--pincell", "--particles", "40", "--batches", "2",
             "--inactive", "0"]
        )
        assert rc == 0
        assert "k-effective" in capsys.readouterr().out

    def test_checkpoint_then_resume(self, tmp_path, capsys):
        common = ["--pincell", "--particles", "60", "--batches", "3",
                  "--inactive", "1", "--seed", "3", "--dir", str(tmp_path)]
        rc = sim_main(["checkpoint", *common, "--every", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "checkpoints: 2 written" in out
        assert (tmp_path / "ckpt-000002.rpk").exists()
        rc = sim_main(["resume", *common])
        assert rc == 0
        out = capsys.readouterr().out
        assert "resuming from" in out
        assert "k-effective" in out

    def test_resume_without_checkpoints_fails(self, tmp_path, capsys):
        rc = sim_main(
            ["resume", "--pincell", "--dir", str(tmp_path / "empty")]
        )
        assert rc == 1
        assert "no checkpoint found" in capsys.readouterr().err

    def test_resume_refuses_different_physics(self, tmp_path, capsys):
        """The settings fingerprint refuses resume under changed physics
        instead of silently breaking bit-identical resume."""
        common = ["--pincell", "--particles", "40", "--batches", "2",
                  "--inactive", "1", "--dir", str(tmp_path)]
        assert sim_main(["checkpoint", *common, "--every", "1",
                         "--seed", "3"]) == 0
        capsys.readouterr()
        rc = sim_main(["resume", *common, "--seed", "4"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "checkpoint error" in err
        assert "fingerprint" in err

    def test_run_json_emits_jobresult_payload(self, capsys):
        rc = sim_main(
            ["run", "--pincell", "--particles", "40", "--batches", "2",
             "--inactive", "0", "--seed", "3", "--json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "done"
        assert payload["mode"] == "event"
        assert len(payload["k_collision"]) == 2
        assert payload["settings_fingerprint"]
        assert payload["library_fingerprint"]
        # The same flags through the JobSpec model give the same payload.
        from repro.serve import JobSpec

        spec = JobSpec(settings={
            "n_particles": 40, "n_inactive": 0, "n_active": 2,
            "seed": 3, "mode": "event", "pincell": True,
        })
        assert payload["settings_fingerprint"] == spec.settings_fingerprint()
        assert payload["library_fingerprint"] == spec.library_fingerprint()

    def test_run_library_cache_hits_on_second_run(self, tmp_path, capsys):
        cache = str(tmp_path / "xs-cache")
        args = ["run", "--pincell", "--particles", "40", "--batches", "2",
                "--inactive", "0", "--library-cache", cache]
        assert sim_main(args) == 0
        assert "built and cached" in capsys.readouterr().out
        assert sim_main(args) == 0
        assert "cache hit" in capsys.readouterr().out

    def test_pincell_run(self, capsys):
        rc = sim_main(
            ["--pincell", "--particles", "60", "--batches", "2",
             "--inactive", "0", "--seed", "3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "k-effective" in out
        assert "calculation rate" in out

    def test_supervised_run_reports_health(self, capsys):
        rc = sim_main(
            ["run", "--pincell", "--particles", "40", "--batches", "2",
             "--inactive", "1", "--supervise"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "k-effective" in out
        assert "supervision: 3 batches observed, status healthy" in out

    def test_batch_deadline_implies_supervision_and_aborts(self, capsys):
        """An impossible per-batch deadline turns into a typed abort
        (exit 1), not a hang or a stack trace."""
        rc = sim_main(
            ["run", "--pincell", "--particles", "40", "--batches", "2",
             "--inactive", "0", "--batch-deadline-s", "1e-9"]
        )
        assert rc == 1
        assert "deadline exceeded" in capsys.readouterr().err

    def test_generous_batch_deadline_runs_clean(self, capsys):
        rc = sim_main(
            ["run", "--pincell", "--particles", "40", "--batches", "2",
             "--inactive", "0", "--batch-deadline-s", "300"]
        )
        assert rc == 0
        assert "supervision:" in capsys.readouterr().out

    def test_delta_mode(self, capsys):
        rc = sim_main(
            ["--pincell", "--particles", "60", "--batches", "2",
             "--inactive", "0", "--mode", "delta"]
        )
        assert rc == 0
        assert "k-effective" in capsys.readouterr().out

    def test_history_with_power(self, capsys):
        rc = sim_main(
            ["--particles", "60", "--batches", "2", "--inactive", "0",
             "--mode", "event", "--tally-power"]
        )
        assert rc == 0
        assert "peaking factor" in capsys.readouterr().out

    def test_save_and_load_library(self, tmp_path, capsys):
        path = str(tmp_path / "lib.npz")
        assert sim_main(["--pincell", "--save-library", path]) == 0
        rc = sim_main(
            ["--pincell", "--library", path, "--particles", "40",
             "--batches", "2", "--inactive", "0"]
        )
        assert rc == 0
        assert "loaded library" in capsys.readouterr().out

    def test_stripped_physics_flags(self, capsys):
        rc = sim_main(
            ["--pincell", "--particles", "40", "--batches", "2",
             "--inactive", "0", "--no-sab", "--no-urr"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "0 URR samples" in out
        assert "0 S(a,b) samples" in out


class TestReproExperiments:
    def test_list(self, capsys):
        assert exp_main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("fig1", "table3", "ext-futurework"):
            assert exp_id in out

    def test_run_one(self, capsys):
        assert exp_main(["run", "table3", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "17,098" in out or "17098" in out

    def test_unknown_experiment(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            exp_main(["run", "fig99"])


class TestScenarioCli:
    """The declarative verbs: scenario validate/compile/run, suite
    expand/submit, and the registry-aware backend error."""

    def test_unknown_backend_error_names_registry(self, capsys):
        from repro.transport import available_backends

        with pytest.raises(SystemExit) as err:
            sim_main(["run", "--backend", "warp"])
        assert err.value.code == 2
        stderr = capsys.readouterr().err
        assert "unknown transport backend 'warp'" in stderr
        assert "available backends" in stderr
        for name in available_backends():
            assert name in stderr

    def test_scenario_and_suite_parse(self):
        args = build_parser().parse_args(
            ["scenario", "run", "hm-full-core", "--fidelity", "tiny",
             "--backend", "history", "--json"]
        )
        assert (args.command, args.scenario_command) == ("scenario", "run")
        assert args.backend == "history"
        args = build_parser().parse_args(
            ["suite", "expand", "hm-tiny-sweep", "--json"]
        )
        assert (args.command, args.suite_command) == ("suite", "expand")

    def test_validate_all_canned_documents(self, capsys):
        assert sim_main(["scenario", "validate", "--all"]) == 0
        out = capsys.readouterr().out
        for name in ("hm-full-core", "c5g7-mox", "smr-core",
                     "shield-slab"):
            assert f"ok   {name}" in out
        assert "ok   suite hm-tiny-sweep" in out

    def test_validate_bad_document_lists_all_findings(self, tmp_path,
                                                      capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({
            "scenario": {"name": "nope"},
            "model": "hm-huge",
            "run": {"particles": 0},
        }))
        assert sim_main(["scenario", "validate", str(bad)]) == 1
        stderr = capsys.readouterr().err
        assert "model" in stderr and "run.particles" in stderr

    def test_compile_json_is_a_loadable_job_spec(self, capsys):
        from repro.serve import JobSpec

        assert sim_main(["scenario", "compile", "smr-core", "--json"]) == 0
        spec = JobSpec.from_dict(json.loads(capsys.readouterr().out))
        assert spec.settings["boron_ppm"] == 200.0
        assert spec.library_temperature == 565.0
        assert len(spec.scenario_fingerprint) == 64
        spec.to_settings()  # reconstructs without error

    def test_scenario_run_with_overrides(self, capsys):
        rc = sim_main([
            "scenario", "run", "hm-full-core", "--fidelity", "tiny",
            "--particles", "40", "--batches", "1", "--inactive", "0",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "k-effective" in out

    def test_suite_expand_json_pipes_into_serve(self, capsys):
        from repro.serve import JobSpec

        assert sim_main(["suite", "expand", "hm-tiny-sweep", "--json"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        specs = [JobSpec.from_json(line) for line in lines]
        assert len(specs) == 8
        assert all(s.suite_id == "hm-tiny-sweep" for s in specs)
        # Fingerprint-affine: same-library cases are consecutive.
        fps = [s.library_fingerprint() for s in specs]
        assert sum(
            1 for i in range(1, len(fps)) if fps[i] != fps[i - 1]
        ) == len(set(fps)) - 1

    def test_suite_submit_spools_every_case(self, tmp_path, capsys):
        spool = tmp_path / "spool"
        rc = sim_main(["suite", "submit", "hm-tiny-sweep",
                       "--spool", str(spool)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "submitted 8 cases" in out
        assert len(list((spool / "pending").glob("*.json"))) == 8

    def test_unknown_canned_scenario_fails_cleanly(self, capsys):
        assert sim_main(["scenario", "compile", "no-such-core"]) == 1
        assert "hm-full-core" in capsys.readouterr().err


class TestFleetCli:
    """ISSUE 9 satellites: the device-fleet verbs and the --devices
    registry-error round trip."""

    def test_devices_flag_parses_comma_list(self):
        args = build_parser().parse_args(
            ["run", "--devices", "a100,a100,epyc-host"]
        )
        assert args.devices == ["a100", "a100", "epyc-host"]

    def test_devices_flag_expands_fleet_preset(self):
        from repro.cluster.topology import FLEET_PRESETS

        args = build_parser().parse_args(["run", "--devices", "a100-node"])
        assert args.devices == list(FLEET_PRESETS["a100-node"])

    def test_unknown_device_error_lists_live_registries(self, capsys):
        """Satellite 2 round trip: the argparse error names every preset
        device and fleet (the transport-backend registry convention)."""
        from repro.cluster.topology import available_fleets
        from repro.machine.presets import available_devices

        with pytest.raises(SystemExit) as err:
            build_parser().parse_args(["run", "--devices", "h100,epyc-host"])
        assert err.value.code == 2
        stderr = capsys.readouterr().err
        assert "unknown device 'h100'" in stderr
        for name in available_devices():
            assert name in stderr
        assert "fleet presets" in stderr
        for name in available_fleets():
            assert name in stderr

    def test_fleet_devices_lists_every_preset(self, capsys):
        from repro.machine.presets import DEVICE_PRESETS

        assert sim_main(["fleet", "devices"]) == 0
        out = capsys.readouterr().out
        for dev in DEVICE_PRESETS.values():
            assert dev.name in out
        assert "(alias: a100)" in out

    def test_fleet_report_json_round_trips(self, capsys):
        rc = sim_main([
            "fleet", "report", "--devices", "a100,a100,epyc-host",
            "--model", "hm-large", "--particles", "1000000", "--json",
        ])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert [d["class"] for d in doc["devices"]] == ["gpu", "gpu", "ooo"]
        assert sum(d["balanced_share"] for d in doc["devices"]) == 1_000_000
        assert doc["balanced_rate"] > 1.5 * doc["equal_rate"]
        assert doc["speedup"] == pytest.approx(
            doc["balanced_rate"] / doc["equal_rate"]
        )
        assert doc["ideal_rate"] >= doc["balanced_rate"]

    def test_fleet_report_accepts_fleet_preset_name(self, capsys):
        assert sim_main([
            "fleet", "report", "--devices", "a100-node", "--json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert len(doc["devices"]) == 3

    def test_run_with_devices_prints_projection_trailer(self, capsys):
        rc = sim_main([
            "run", "--pincell", "--particles", "40", "--inactive", "1",
            "--batches", "3", "--devices", "a100-node",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fleet projection" in out
        assert "rate balanced" in out
        assert "gpu-a100-sxm" in out
