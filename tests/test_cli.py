"""Tests for the two command-line entry points."""

import pytest

from repro.cli import build_parser, main as sim_main
from repro.experiments.cli import main as exp_main


class TestReproSim:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.mode == "event"
        assert args.model == "hm-small"

    def test_legacy_flat_form_still_runs(self, capsys):
        """``repro-sim --pincell ...`` (no subcommand) means ``run``."""
        rc = sim_main(
            ["--pincell", "--particles", "40", "--batches", "2",
             "--inactive", "0"]
        )
        assert rc == 0
        assert "k-effective" in capsys.readouterr().out

    def test_checkpoint_then_resume(self, tmp_path, capsys):
        common = ["--pincell", "--particles", "60", "--batches", "3",
                  "--inactive", "1", "--seed", "3", "--dir", str(tmp_path)]
        rc = sim_main(["checkpoint", *common, "--every", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "checkpoints: 2 written" in out
        assert (tmp_path / "ckpt-000002.rpk").exists()
        rc = sim_main(["resume", *common])
        assert rc == 0
        out = capsys.readouterr().out
        assert "resuming from" in out
        assert "k-effective" in out

    def test_resume_without_checkpoints_fails(self, tmp_path, capsys):
        rc = sim_main(
            ["resume", "--pincell", "--dir", str(tmp_path / "empty")]
        )
        assert rc == 1
        assert "no checkpoint found" in capsys.readouterr().err

    def test_pincell_run(self, capsys):
        rc = sim_main(
            ["--pincell", "--particles", "60", "--batches", "2",
             "--inactive", "0", "--seed", "3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "k-effective" in out
        assert "calculation rate" in out

    def test_delta_mode(self, capsys):
        rc = sim_main(
            ["--pincell", "--particles", "60", "--batches", "2",
             "--inactive", "0", "--mode", "delta"]
        )
        assert rc == 0
        assert "k-effective" in capsys.readouterr().out

    def test_history_with_power(self, capsys):
        rc = sim_main(
            ["--particles", "60", "--batches", "2", "--inactive", "0",
             "--mode", "event", "--tally-power"]
        )
        assert rc == 0
        assert "peaking factor" in capsys.readouterr().out

    def test_save_and_load_library(self, tmp_path, capsys):
        path = str(tmp_path / "lib.npz")
        assert sim_main(["--pincell", "--save-library", path]) == 0
        rc = sim_main(
            ["--pincell", "--library", path, "--particles", "40",
             "--batches", "2", "--inactive", "0"]
        )
        assert rc == 0
        assert "loaded library" in capsys.readouterr().out

    def test_stripped_physics_flags(self, capsys):
        rc = sim_main(
            ["--pincell", "--particles", "40", "--batches", "2",
             "--inactive", "0", "--no-sab", "--no-urr"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "0 URR samples" in out
        assert "0 S(a,b) samples" in out


class TestReproExperiments:
    def test_list(self, capsys):
        assert exp_main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("fig1", "table3", "ext-futurework"):
            assert exp_id in out

    def test_run_one(self, capsys):
        assert exp_main(["run", "table3", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "17,098" in out or "17098" in out

    def test_unknown_experiment(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            exp_main(["run", "fig99"])
