"""Tests for the TAU-like timer registry and profile comparison."""

import time

import pytest

from repro.profiling.report import compare_profiles, format_comparison
from repro.profiling.timers import Profile, TimerRegistry


class TestTimerRegistry:
    def test_context_manager_records(self):
        reg = TimerRegistry("test")
        with reg.timer("calculate_xs"):
            time.sleep(0.002)
        stats = reg.profile.routines["calculate_xs"]
        assert stats.calls == 1
        assert stats.total_seconds >= 0.002

    def test_multiple_calls_accumulate(self):
        reg = TimerRegistry("test")
        for _ in range(3):
            with reg.timer("r"):
                pass
        assert reg.profile.routines["r"].calls == 3

    def test_decorator(self):
        reg = TimerRegistry("test")

        @reg.timed("fn")
        def fn(x):
            return x + 1

        assert fn(1) == 2
        assert reg.profile.routines["fn"].calls == 1

    def test_exception_still_recorded(self):
        reg = TimerRegistry("test")
        with pytest.raises(ValueError):
            with reg.timer("bad"):
                raise ValueError
        assert reg.profile.routines["bad"].calls == 1


class TestProfile:
    def make(self):
        p = Profile("x")
        p.record("lookup", 6.0)
        p.record("lookup", 4.0)
        p.record("track", 3.0)
        p.record("misc", 1.0)
        return p

    def test_totals(self):
        p = self.make()
        assert p.total_seconds == pytest.approx(14.0)
        assert p.routines["lookup"].calls == 2
        assert p.routines["lookup"].mean_seconds == pytest.approx(5.0)

    def test_fraction(self):
        p = self.make()
        assert p.fraction("lookup") == pytest.approx(10 / 14)
        assert p.fraction("absent") == 0.0

    def test_top(self):
        p = self.make()
        names = [r.name for r in p.top(2)]
        assert names == ["lookup", "track"]


class TestComparison:
    def test_compare_dicts(self):
        rows = compare_profiles(
            {"lookup": 10.0, "track": 3.0}, {"lookup": 6.0, "track": 2.5}
        )
        assert rows[0].routine == "lookup"
        assert rows[0].speedup == pytest.approx(10 / 6)

    def test_compare_profiles_objects(self):
        a = Profile("cpu")
        a.record("lookup", 8.0)
        b = Profile("mic")
        b.record("lookup", 5.0)
        rows = compare_profiles(a, b)
        assert rows[0].speedup == pytest.approx(1.6)

    def test_missing_routine(self):
        rows = compare_profiles({"only_a": 1.0}, {"only_b": 2.0})
        by_name = {r.routine: r for r in rows}
        assert by_name["only_a"].seconds_b == 0.0
        assert by_name["only_b"].seconds_a == 0.0

    def test_top_limit(self):
        a = {f"r{i}": float(i) for i in range(10)}
        rows = compare_profiles(a, a, top=3)
        assert len(rows) == 3

    def test_format(self):
        rows = compare_profiles({"lookup": 2.0}, {"lookup": 1.0})
        text = format_comparison(rows, "CPU", "MIC")
        assert "lookup" in text and "CPU" in text and "2.00" in text
