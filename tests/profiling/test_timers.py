"""Tests for TAU-style timers: merging and JSON round trip."""

import pytest

from repro.errors import ReproError
from repro.profiling.timers import Profile, RoutineStats, TimerRegistry


def make_profile(label="seg1"):
    p = Profile(label)
    p.record("transport", 2.0)
    p.record("transport", 1.0)
    p.record("checkpoint_write", 0.25)
    return p


class TestMerge:
    def test_merge_adds_calls_and_time(self):
        merged = make_profile("pre").merge(make_profile("post"))
        assert merged.routines["transport"].calls == 4
        assert merged.routines["transport"].total_seconds == pytest.approx(6.0)
        assert merged.routines["checkpoint_write"].calls == 2

    def test_merge_union_of_routines(self):
        a, b = Profile("a"), Profile("b")
        a.record("only_a", 1.0)
        b.record("only_b", 2.0)
        merged = a.merge(b)
        assert set(merged.routines) == {"only_a", "only_b"}

    def test_merge_label_and_inputs_untouched(self):
        a, b = make_profile("a"), make_profile("b")
        merged = a.merge(b, label="joined")
        assert merged.label == "joined"
        assert a.merge(b).label == "a"
        assert a.routines["transport"].calls == 2
        assert b.routines["transport"].calls == 2

    def test_merged_fractions_consistent(self):
        merged = make_profile().merge(make_profile())
        assert merged.fraction("transport") == pytest.approx(3.0 / 3.25)


class TestJsonRoundTrip:
    def test_round_trip_exact(self):
        original = make_profile()
        restored = Profile.from_json(original.to_json())
        assert restored.label == original.label
        assert set(restored.routines) == set(original.routines)
        for name, stats in original.routines.items():
            assert restored.routines[name].calls == stats.calls
            assert (
                restored.routines[name].total_seconds == stats.total_seconds
            )

    def test_round_trip_from_registry(self):
        registry = TimerRegistry("run")
        with registry.timer("block"):
            pass
        restored = Profile.from_json(registry.profile.to_json())
        assert restored.routines["block"].calls == 1

    def test_malformed_json_typed(self):
        with pytest.raises(ReproError, match="malformed profile"):
            Profile.from_json("{not json")
        with pytest.raises(ReproError, match="malformed profile"):
            Profile.from_json('{"label": "x"}')

    def test_empty_profile_round_trips(self):
        restored = Profile.from_json(Profile("empty").to_json())
        assert restored.routines == {}
        assert restored.total_seconds == 0.0


class TestRoutineStats:
    def test_mean_seconds(self):
        stats = RoutineStats("r", calls=4, total_seconds=2.0)
        assert stats.mean_seconds == pytest.approx(0.5)
