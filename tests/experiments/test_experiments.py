"""Integration tests: every experiment runs and reproduces its key claims."""

import pytest

from repro.errors import ReproError
from repro.experiments import Scale, all_experiments, get_experiment, run_experiment

QUICK = Scale.quick()

ALL_IDS = [
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
    "table1", "table2", "table3", "ext-futurework", "ext-doppler",
]


class TestRegistry:
    def test_all_registered(self):
        assert sorted(all_experiments()) == sorted(ALL_IDS)

    def test_unknown_id(self):
        with pytest.raises(ReproError):
            get_experiment("fig99")

    def test_scale_of(self):
        assert Scale.of("quick").name == "quick"
        assert Scale.of("paper").name == "paper"
        with pytest.raises(ReproError):
            Scale.of("huge")


@pytest.mark.parametrize("exp_id", ALL_IDS)
def test_runs_and_formats(exp_id):
    result = run_experiment(exp_id, "quick")
    assert result.exp_id == exp_id
    assert result.rows
    text = result.format()
    assert exp_id in text


class TestFig1:
    def test_resonance_contrast(self):
        result = run_experiment("fig1", "quick")
        by_regime = {r["regime"]: r["sigma_t [b]"] for r in result.rows}
        peak = by_regime["resolved resonance peak"]
        valley = by_regime["resolved resonance valley"]
        assert peak > 100 * valley


class TestFig2:
    def test_ratio_near_10x(self):
        result = run_experiment("fig2", "quick")
        modelled = [r for r in result.rows if isinstance(r["bank size"], int)]
        big = max(modelled, key=lambda r: r["bank size"])
        assert 8 < big["ratio"] < 12

    def test_measured_banked_wins(self):
        result = run_experiment("fig2", "quick")
        measured = [r for r in result.rows if "measured" in str(r["bank size"])][0]
        assert measured["ratio"] > 3


class TestFig3:
    def test_crossover_and_trends(self):
        result = run_experiment("fig3", "quick")
        small = result.rows[0]
        big = result.rows[-1]
        assert not small["offload wins"]
        assert big["offload wins"]
        assert big["transfer (PCIe)"] < small["transfer (PCIe)"]
        assert big["host XS compute"] > small["host XS compute"]
        assert big["MIC XS compute"] < small["MIC XS compute"]


class TestFig4:
    def test_total_speedup(self):
        result = run_experiment("fig4", "quick")
        total = next(r for r in result.rows if r["routine"] == "TOTAL")
        assert 1.4 < total["CPU/MIC"] < 1.8

    def test_lookups_dominate(self):
        result = run_experiment("fig4", "quick")
        modelled = [r for r in result.rows if r.get("kind") == "modelled"]
        lookup_cpu = sum(
            r["CPU [s]"]
            for r in modelled
            if r["routine"] in ("calculate_xs", "micro_xs_lookup", "grid_search")
        )
        total = next(r for r in modelled if r["routine"] == "TOTAL")["CPU [s]"]
        assert lookup_cpu > 0.5 * total


class TestFig5:
    def test_alpha_band(self):
        result = run_experiment("fig5", "quick")
        alphas = [
            r["alpha_a"]
            for r in result.rows
            if isinstance(r.get("particles"), int)
            and r["particles"] >= 10_000
            and isinstance(r.get("alpha_a"), float)
        ]
        assert all(0.58 < a < 0.68 for a in alphas)

    def test_oom_row(self):
        result = run_experiment("fig5", "quick")
        oom = next(r for r in result.rows if r.get("particles") == 10**8)
        assert oom["CPU inactive [n/s]"] == "OOM"

    def test_measured_larger_batch_faster(self):
        result = run_experiment("fig5", "quick")
        measured = next(
            r for r in result.rows if "measured" in str(r["particles"])
        )
        # Columns reused: small-batch rate, large-batch rate.
        assert measured["MIC inactive [n/s]"] > measured["CPU inactive [n/s]"]


class TestFig6:
    def test_efficiency_shape(self):
        result = run_experiment("fig6", "quick")
        r128 = next(r for r in result.rows if r["nodes"] == 128)
        r1024 = next(r for r in result.rows if r["nodes"] == 1024)
        assert r128["CPU + 1 MIC eff"] >= 0.95
        assert r1024["CPU + 1 MIC eff"] < 0.87
        assert r1024["CPU only eff"] > r1024["CPU + 1 MIC eff"]
        assert "CPU + 2 MIC eff" not in r1024 or r1024.get("CPU + 2 MIC eff") is None


class TestFig7:
    def test_flat(self):
        result = run_experiment("fig7", "quick")
        effs = [r["CPU + 1 MIC eff"] for r in result.rows if r["nodes"] <= 128]
        assert all(e > 0.94 for e in effs)


class TestFig8:
    def test_vectorized_wins_everywhere(self):
        result = run_experiment("fig8", "quick")
        for r in result.rows:
            assert r["speedup"] > 1.0

    def test_mic_gains_more_modelled(self):
        result = run_experiment("fig8", "quick")
        host = next(r for r in result.rows if "host" in r["device"])
        mic = next(r for r in result.rows if "MIC" in r["device"])
        assert mic["speedup"] > host["speedup"]


class TestTables:
    def test_table1_ordering(self):
        result = run_experiment("table1", "quick")
        for r in result.rows:
            if r["kind"] == "modelled":
                assert r["Naive time(s)"] > r["Optimized-1 time(s)"]
                assert r["Optimized-1 time(s)"] >= r["Optimized-2 time(s)"] * 0.99

    def test_table1_matches_paper(self):
        result = run_experiment("table1", "quick")
        cpu = next(r for r in result.rows if "CPU" in r["implementation"])
        assert cpu["Naive time(s)"] == pytest.approx(412, rel=0.05)

    def test_table2_bank_sizes(self):
        result = run_experiment("table2", "quick")
        by_op = {r["operation"]: r["modelled"] for r in result.rows}
        assert by_op["bank size transferred [hm-small]"] == "0.496 GB"
        assert by_op["bank size transferred [hm-large]"] == "2.841 GB"

    def test_table3_headline(self):
        result = run_experiment("table3", "quick")
        two = next(r for r in result.rows if r["hardware"] == "CPU + 2 MIC")
        assert two["load balanced [n/s]"] == pytest.approx(17_098, rel=0.08)
        assert two["load balanced [n/s]"] > two["original [n/s]"]

    def test_table3_lb_gains(self):
        result = run_experiment("table3", "quick")
        for r in result.rows:
            if r["load balanced [n/s]"] is not None:
                assert r["load balanced [n/s]"] > r["original [n/s]"]
