"""The chaos runner's audited cycles, on a small synthetic workload.

The full kill-at-every-boundary sweep over the canned suite runs in the
``chaos-smoke`` CI job; here a 4-job workload keeps each cycle cheap
while still covering every cycle type and — critically — the *audits*:
a runner that cannot detect a violated invariant proves nothing, so the
negative tests hand it corrupted histories and require a typed
:class:`~repro.errors.ChaosError`.
"""

import pytest

from repro.chaos import ChaosRunner, ChaosSchedule
from repro.chaos.runner import ChaosReport
from repro.errors import ChaosError
from repro.gateway.journal import JournalScan, JournalRecord
from repro.serve.jobs import JobSpec

TINY = {"n_particles": 24, "n_inactive": 0, "n_active": 2,
        "mode": "event", "pincell": True}


def small_workload(n=4, distinct=3):
    return [
        JobSpec(job_id=f"chaos-{i:02d}",
                settings=dict(TINY, seed=i % distinct))
        for i in range(n)
    ]


@pytest.fixture()
def runner(tmp_path):
    return ChaosRunner(small_workload(), workdir=tmp_path / "chaos")


class TestConstruction:
    def test_needs_two_shards(self, tmp_path):
        with pytest.raises(ChaosError, match="n_shards"):
            ChaosRunner(small_workload(), workdir=tmp_path, n_shards=1)

    def test_needs_a_workload(self, tmp_path):
        with pytest.raises(ChaosError, match="empty"):
            ChaosRunner([], workdir=tmp_path)

    def test_default_workload_is_the_canned_suite(self, tmp_path):
        runner = ChaosRunner(workdir=tmp_path)
        assert len(runner.specs) == 8
        assert all(
            s.suite_id == "hm-tiny-sweep" for s in runner.specs
        )


class TestKillCycles:
    def test_every_boundary_recovers_byte_identically(self, runner):
        # With 3 distinct physics among 4 jobs the journal carries
        # cache-hit and leader-election records too — the sweep must
        # survive a kill after every one of them.
        report = runner.kill_sweep()
        assert report.cycles == runner.n_boundaries
        assert report.kill_boundaries == list(
            range(1, runner.n_boundaries + 1)
        )

    def test_out_of_range_boundary_is_typed(self, runner):
        with pytest.raises(ChaosError, match="outside"):
            runner.kill_sweep([0])

    def test_kill_cycle_reports_recovery_accounting(self, runner):
        last = runner.n_boundaries
        cycle = runner.run_kill_cycle(last)
        # Killed after the final record: everything had landed, nothing
        # requeues, every result restores from the journal.
        assert cycle["restored"] == len(runner.specs)
        assert cycle["requeued"] == 0


class TestOtherCycles:
    def test_shard_kill_quarantines_and_finishes(self, runner):
        cycle = runner.run_shard_kill_cycle(0)
        assert cycle["victim"] == 0

    def test_shard_victim_must_exist(self, runner):
        with pytest.raises(ChaosError, match="outside"):
            runner.run_shard_kill_cycle(7)

    @pytest.mark.parametrize("truncate", [False, True])
    def test_disk_fault_quarantines_exactly_one_entry(
        self, runner, truncate
    ):
        cycle = runner.run_disk_fault_cycle(truncate=truncate)
        assert cycle["corrupt_entries"] == 1
        # Undamaged entries still serve from disk; only the damaged
        # one recomputed (its first submission is the one miss beyond
        # the usual in-flight coalescing).
        assert 1 <= cycle["cache_hits"] < len(runner.specs)

    def test_spool_fault_quarantines_the_torn_file(self, runner):
        cycle = runner.run_spool_fault_cycle()
        assert cycle["pending"] == len(runner.specs)

    def test_seeded_schedule_end_to_end(self, runner):
        schedule = ChaosSchedule.generate(
            11, 6, p_gateway_kill=0.5, p_shard_kill=0.3,
            p_spool_partial=0.3,
        )
        report = runner.run_schedule(schedule)
        assert report.cycles == len(schedule)
        assert isinstance(report.to_dict()["cycles"], int)


class TestAuditsDetectViolations:
    def test_double_landing_is_flagged(self, runner):
        scan = JournalScan(
            path=runner.workdir / "fake",
            records=[
                JournalRecord(1, "completed", {"job_id": "x"}),
                JournalRecord(2, "completed", {"job_id": "x"}),
            ],
        )
        with pytest.raises(ChaosError, match="landed twice"):
            runner._audit_journal(scan, label="synthetic")

    def test_route_after_landing_is_flagged(self, runner):
        scan = JournalScan(
            path=runner.workdir / "fake",
            records=[
                JournalRecord(1, "cache-hit", {"job_id": "x"}),
                JournalRecord(2, "routed", {"job_id": "x", "shard": 0}),
            ],
        )
        with pytest.raises(ChaosError, match="after its result"):
            runner._audit_journal(scan, label="synthetic")

    def test_payload_divergence_is_flagged(self, runner):
        with pytest.raises(ChaosError, match="diverged"):
            runner._assert_byte_identical(
                {"a": "{}"}, {"a": "{...}"}, label="synthetic"
            )

    def test_missing_result_is_flagged(self, runner):
        with pytest.raises(ChaosError, match="missing"):
            runner._assert_byte_identical(
                {}, {"a": "{}"}, label="synthetic"
            )


class TestReport:
    def test_report_round_trips_to_dict(self):
        report = ChaosReport(cycles=3, kill_boundaries=[1, 5])
        doc = report.to_dict()
        assert doc["cycles"] == 3
        assert doc["kill_boundaries"] == [1, 5]
