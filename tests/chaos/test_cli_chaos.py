"""The ``chaos run`` CLI verb: seeded campaigns through main(argv)."""

import json

from repro.cli import main as sim_main


class TestChaosRun:
    # Seed 3 over 6 boundaries draws a compact mixed schedule (two
    # gateway kills, one disk corrupt, one disk truncate) — every fault
    # path exercised without the full sweep's cost.
    FLAGS = ["chaos", "run", "--seed", "3", "--boundaries", "6"]

    def test_seeded_campaign_passes_audits(self, tmp_path, capsys):
        rc = sim_main([*self.FLAGS, "--workdir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "all audits passed" in out
        assert "seeded schedule (seed 3)" in out

    def test_json_report_round_trips(self, tmp_path, capsys):
        rc = sim_main([*self.FLAGS, "--workdir", str(tmp_path), "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["seed"] == 3
        assert doc["sweep"] is False
        assert doc["events"] == 4
        report = doc["report"]
        assert report["cycles"] == 4
        assert len(report["kill_boundaries"]) == 2
        assert report["disk_faults"] == 2
        # Kill cycles replayed journal records on recovery (seed 3's
        # kills land early in the journal, so work requeues rather than
        # restores — restored stays a valid, possibly-zero count).
        assert report["replayed"] > 0
        assert report["restored"] >= 0

    def test_workdir_keeps_artifacts_for_forensics(self, tmp_path):
        assert sim_main([*self.FLAGS, "--workdir", str(tmp_path)]) == 0
        journals = list(tmp_path.glob("*.journal"))
        assert journals, "chaos cycles should leave their journals behind"
