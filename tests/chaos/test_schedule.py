"""Chaos schedules: pure functions of their seed, validated shapes."""

import pytest

from repro.chaos import ChaosKind, ChaosSchedule
from repro.errors import ChaosError

GEN = dict(
    n_boundaries=20,
    n_shards=3,
    p_gateway_kill=0.3,
    p_shard_kill=0.2,
    p_disk_corrupt=0.15,
    p_disk_truncate=0.1,
    p_spool_partial=0.1,
)


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        assert (
            ChaosSchedule.generate(77, **GEN).events
            == ChaosSchedule.generate(77, **GEN).events
        )

    def test_different_seeds_diverge(self):
        schedules = {
            ChaosSchedule.generate(seed, **GEN).events
            for seed in range(8)
        }
        assert len(schedules) > 1

    def test_events_are_ordered_by_boundary(self):
        schedule = ChaosSchedule.generate(3, **GEN)
        boundaries = [e.boundary for e in schedule.events]
        assert boundaries == sorted(boundaries)

    def test_shard_victims_in_range(self):
        schedule = ChaosSchedule.generate(
            5, 50, n_shards=3, p_shard_kill=0.8
        )
        victims = [
            e.shard for e in schedule.by_kind(ChaosKind.SHARD_KILL)
        ]
        assert victims and all(0 <= v < 3 for v in victims)


class TestValidation:
    @pytest.mark.parametrize("name", [
        "p_gateway_kill", "p_shard_kill", "p_disk_corrupt",
        "p_disk_truncate", "p_spool_partial",
    ])
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_probabilities_must_be_unit_interval(self, name, bad):
        with pytest.raises(ChaosError, match=name):
            ChaosSchedule.generate(0, 5, **{name: bad})

    def test_negative_boundaries_refused(self):
        with pytest.raises(ChaosError, match="n_boundaries"):
            ChaosSchedule.generate(0, -1)

    def test_single_shard_refused(self):
        with pytest.raises(ChaosError, match="n_shards"):
            ChaosSchedule.generate(0, 5, n_shards=1)

    def test_sweep_needs_at_least_one_boundary(self):
        with pytest.raises(ChaosError, match="n_boundaries"):
            ChaosSchedule.kill_every_boundary(0)


class TestKillEveryBoundary:
    def test_covers_every_boundary_exactly_once(self):
        schedule = ChaosSchedule.kill_every_boundary(9)
        assert schedule.kill_boundaries() == list(range(1, 10))
        assert len(schedule) == 9
        assert all(
            e.kind is ChaosKind.GATEWAY_KILL for e in schedule.events
        )
