"""Case suites: expansion, stable IDs, fingerprint-affine ordering."""

import pytest

from repro.errors import ScenarioError, SuiteError
from repro.scenarios import CaseSuite, canned_suite_names, load_suite


def suite_doc(axes=None, **extra):
    doc = {
        "suite": {"id": "sw"},
        "scenario": {
            "scenario": {"name": "base"},
            "fidelity": "tiny",
            "run": {"particles": 50, "inactive": 0, "active": 1},
        },
        "axes": axes if axes is not None else {},
    }
    doc.update(extra)
    return doc


class TestExpansion:
    def test_cartesian_product_with_stable_sorted_ids(self):
        suite = load_suite(suite_doc({
            "boron_ppm": [300.0, 900.0],
            "backend": ["history", "event"],
        }))
        cases = suite.expand()
        assert len(cases) == 4
        ids = {c.case_id for c in cases}
        assert "sw:backend=history,boron_ppm=300.0" in ids
        assert "sw:backend=event,boron_ppm=900.0" in ids
        # IDs never contain path separators (they double as job IDs and
        # spool file names).
        assert all("/" not in c.case_id for c in cases)

    def test_ids_independent_of_axis_declaration_order(self):
        a = load_suite(suite_doc({
            "boron_ppm": [300.0], "backend": ["event"],
        })).expand()
        b = load_suite(suite_doc({
            "backend": ["event"], "boron_ppm": [300.0],
        })).expand()
        assert [c.case_id for c in a] == [c.case_id for c in b]

    def test_no_axes_expands_to_single_base_case(self):
        cases = load_suite(suite_doc()).expand()
        assert [c.case_id for c in cases] == ["sw:base"]

    def test_axis_values_land_in_compiled_settings(self):
        cases = load_suite(suite_doc({
            "enrichment_scale": [0.9, 1.1],
        })).expand()
        assert sorted(
            c.compiled.settings.enrichment_scale for c in cases
        ) == [0.9, 1.1]
        for c in cases:
            assert c.job.settings["enrichment_scale"] == \
                c.overrides["enrichment_scale"]

    def test_fingerprint_affine_ordering(self):
        # temperature touches the library; backend/boron do not.  All
        # same-library cases must be consecutive, first-occurrence group
        # order.
        suite = load_suite(suite_doc({
            "temperature": [293.6, 600.0],
            "backend": ["history", "event"],
            "boron_ppm": [300.0, 900.0],
        }))
        cases = suite.expand()
        assert len(cases) == 8
        fps = [c.job.library_fingerprint() for c in cases]
        assert len(set(fps)) == 2
        # Consecutive grouping: the fingerprint sequence changes exactly
        # once across the whole expansion.
        changes = sum(
            1 for i in range(1, len(fps)) if fps[i] != fps[i - 1]
        )
        assert changes == 1

    def test_jobs_carry_suite_provenance(self):
        suite = load_suite(suite_doc({"seed": [1, 2]}, priority=3))
        for case in suite.expand():
            assert case.job.suite_id == "sw"
            assert case.job.case_id == case.case_id
            assert case.job.job_id == case.case_id
            assert case.job.priority == 3
            assert case.job.scenario_fingerprint == \
                case.compiled.fingerprint

    def test_per_case_fingerprints_differ(self):
        cases = load_suite(suite_doc({"boron_ppm": [300.0, 900.0]})).expand()
        assert cases[0].compiled.fingerprint != cases[1].compiled.fingerprint


class TestValidation:
    def test_unknown_axis_rejected_with_alternatives(self):
        with pytest.raises(SuiteError, match="boron_ppm"):
            load_suite(suite_doc({"boron": [300.0]}))

    def test_duplicate_axis_values_rejected(self):
        with pytest.raises(SuiteError, match="duplicate"):
            load_suite(suite_doc({"seed": [1, 1]}))

    def test_empty_axis_rejected(self):
        with pytest.raises(SuiteError, match="at least one value"):
            load_suite(suite_doc({"seed": []}))

    def test_expansion_size_guard(self):
        with pytest.raises(SuiteError, match="limit"):
            load_suite(suite_doc({"seed": list(range(5000))}))

    def test_invalid_base_scenario_fails_at_load(self):
        doc = suite_doc()
        doc["scenario"]["run"]["backend"] = "warp"
        with pytest.raises(ScenarioError, match="base scenario"):
            load_suite(doc)

    def test_invalid_case_names_the_case(self):
        # The base is fine; one axis value compiles to an invalid case.
        with pytest.raises(SuiteError, match="boron_ppm=-5"):
            load_suite(suite_doc({"boron_ppm": [300.0, -5]})).expand()

    def test_unknown_suite_keys_rejected(self):
        with pytest.raises(SuiteError, match="unknown keys"):
            load_suite(suite_doc(axess={}))

    def test_suite_id_required(self):
        doc = suite_doc()
        doc["suite"] = {}
        with pytest.raises(SuiteError, match="suite.id"):
            load_suite(doc)


class TestCanned:
    def test_tiny_sweep_ships_and_expands_to_eight(self):
        assert "hm-tiny-sweep" in canned_suite_names()
        suite = load_suite("hm-tiny-sweep")
        cases = suite.expand()
        assert len(cases) == 8
        assert len({c.job.library_fingerprint() for c in cases}) == 2
        assert all(c.job.fidelity == "tiny" for c in cases)

    def test_unknown_canned_suite_lists_available(self):
        with pytest.raises(SuiteError, match="hm-tiny-sweep"):
            load_suite("hm-giant-sweep")

    def test_from_document_rejects_non_mapping(self):
        with pytest.raises(SuiteError, match="mapping"):
            CaseSuite.from_document([1, 2])
