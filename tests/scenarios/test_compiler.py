"""Scenario compilation: canned documents, bit-identity, job lowering.

The headline acceptance test: the canned Hoogenboom-Martin scenario,
compiled through the declarative layer, produces *bit-identical* tallies to
the historical hard-coded ``Settings`` path — on every registered transport
backend.
"""

import dataclasses

import pytest

from repro.data import LibraryConfig, build_library
from repro.errors import ScenarioError
from repro.scenarios import (
    CompiledScenario,
    canned_scenario_names,
    compile_scenario,
    load_scenario,
    validate_scenario,
)
from repro.transport import Settings, Simulation, available_backends


@pytest.fixture(scope="module")
def tiny_library():
    return build_library("hm-small", LibraryConfig.tiny())


class TestCannedScenarios:
    def test_all_four_ship_and_compile(self):
        names = canned_scenario_names()
        assert names == (
            "c5g7-mox", "hm-full-core", "shield-slab", "smr-core"
        )
        for name in names:
            compiled = load_scenario(name)
            assert isinstance(compiled, CompiledScenario)
            assert compiled.name == name
            assert len(compiled.fingerprint) == 64

    def test_unknown_canned_name_lists_available(self):
        with pytest.raises(ScenarioError, match="hm-full-core"):
            load_scenario("hm-small-core")

    def test_hm_compiles_to_exactly_default_settings(self):
        # The bit-identity contract at the configuration level: the canned
        # H.M. document lowers to the same frozen Settings a hard-coded
        # call would build — not approximately, *exactly* (the named
        # "hm-241" pattern lowers to the builder's own default).
        compiled = load_scenario("hm-full-core")
        assert compiled.settings == Settings(
            n_particles=1000, n_inactive=2, n_active=5, seed=1,
            mode="event",
        )
        assert compiled.settings.core_pattern == ()

    def test_smr_uses_named_pattern_and_hot_library(self):
        compiled = load_scenario("smr-core")
        assert len(compiled.settings.core_pattern) == 7
        assert compiled.library_config().temperature == 565.0
        assert compiled.settings.tally_power is True

    def test_c5g7_overrides_stay_inside_census(self):
        compiled = load_scenario("c5g7-mox")
        nuclides = [n for n, _ in compiled.settings.fuel_overrides]
        assert "Pu239" in nuclides and "U238" in nuclides
        # Ordered by nuclide name (canonical form), not document order.
        assert nuclides == sorted(nuclides)

    def test_shield_slab_is_survival_biased_single_assembly(self):
        compiled = load_scenario("shield-slab")
        assert compiled.settings.survival_biasing is True
        assert compiled.settings.boron_ppm == 2500.0
        assert sum(
            row.count("F") for row in compiled.settings.core_pattern
        ) == 1


class TestBitIdentity:
    @pytest.mark.parametrize("backend", sorted(available_backends()))
    def test_canned_hm_matches_hard_coded_path(self, backend,
                                               tiny_library):
        """One generation on each registered backend: the scenario layer
        may not perturb a single bit of the tally payload."""
        compiled = compile_scenario(
            load_scenario("hm-full-core").spec.with_overrides(
                fidelity="tiny", particles=60, inactive=0, active=1,
                backend=backend,
            )
        )
        via_scenario = compiled.build_simulation(tiny_library).run()
        hard_coded = Simulation(tiny_library, Settings(
            n_particles=60, n_inactive=0, n_active=1, seed=1,
            mode=backend,
        )).run()
        assert list(via_scenario.statistics.k_collision) == list(
            hard_coded.statistics.k_collision
        )
        assert list(via_scenario.statistics.k_absorption) == list(
            hard_coded.statistics.k_absorption
        )
        assert list(via_scenario.statistics.k_track) == list(
            hard_coded.statistics.k_track
        )
        assert list(via_scenario.entropy_trace) == list(
            hard_coded.entropy_trace
        )
        assert via_scenario.counters.as_dict() == \
            hard_coded.counters.as_dict()


class TestJobLowering:
    def test_job_spec_is_self_contained(self):
        compiled = load_scenario("smr-core")
        job = compiled.job_spec(case_id="c1", suite_id="s1")
        # A worker reconstructs the exact Settings from the spec alone.
        assert job.to_settings() == compiled.settings
        assert job.library_config() == compiled.library_config()
        assert job.scenario_fingerprint == compiled.fingerprint
        assert (job.case_id, job.suite_id) == ("c1", "s1")

    def test_job_spec_round_trips_exactly(self):
        for name in canned_scenario_names():
            job = load_scenario(name).job_spec(job_id=f"j-{name}")
            assert type(job).from_json(job.to_json()) == job

    def test_doppler_temperature_moves_library_fingerprint(self):
        base = load_scenario("hm-full-core")
        hot = compile_scenario(
            base.spec.with_overrides(library_temperature=900.0)
        )
        assert hot.job_spec().library_fingerprint() != \
            base.job_spec().library_fingerprint()
        # ...while a pure-transport knob does not.
        boron = compile_scenario(
            base.spec.with_overrides(boron_ppm=1200.0)
        )
        assert boron.job_spec().library_fingerprint() == \
            base.job_spec().library_fingerprint()

    def test_non_census_isotopic_fails_at_compile(self):
        spec = validate_scenario({
            "scenario": {"name": "bad-mox"},
            "materials": {"fuel": {"number_densities": {"Th232": 1e-3}}},
        })
        with pytest.raises(ScenarioError, match="Th232"):
            compile_scenario(spec)

    def test_compile_wraps_settings_rejections(self):
        # Constraints only Settings can see surface as ScenarioError
        # naming the scenario, not as a bare ExecutionError.
        spec = validate_scenario({"scenario": {"name": "t"}})
        bad = dataclasses.replace(spec, particles=0)
        with pytest.raises(ScenarioError, match="'t' does not compile"):
            compile_scenario(bad)


class TestEndToEnd:
    def test_shield_slab_runs_and_is_deeply_subcritical(self, tiny_library):
        compiled = compile_scenario(
            load_scenario("shield-slab").spec.with_overrides(
                fidelity="tiny", particles=80, inactive=0, active=2,
            )
        )
        result = compiled.build_simulation(tiny_library).run()
        # One assembly in a borated slab: far below critical.
        assert result.k_effective.mean < 0.8
        assert result.counters.collisions > 0
