"""Scenario schema: total validation, canonical form, fingerprints."""

import pytest

from repro.errors import ScenarioError
from repro.scenarios import ScenarioSpec, scenario_fingerprint, validate_scenario


def minimal(**extra):
    doc = {"scenario": {"name": "t"}}
    doc.update(extra)
    return doc


class TestValidation:
    def test_minimal_document_gets_defaults(self):
        spec = validate_scenario(minimal())
        assert spec.name == "t"
        assert spec.model == "hm-small"
        assert spec.boron_ppm == 600.0
        assert spec.enrichment_scale == 1.0
        assert spec.backend == "event"
        assert spec.tallies == ("k-effective", "entropy")
        assert spec.core_pattern_name == ""
        assert spec.core_pattern_rows == ()

    def test_name_is_required(self):
        with pytest.raises(ScenarioError, match="scenario.name: is required"):
            validate_scenario({})

    def test_all_problems_reported_at_once(self):
        doc = {
            "scenario": {"name": "bad/name"},
            "model": "hm-huge",
            "materials": {"moderator": {"boron_ppm": -5}},
            "run": {"particles": 0, "backend": "warp"},
            "physics": {"sab": "yes"},
        }
        with pytest.raises(ScenarioError) as err:
            validate_scenario(doc)
        paths = [e.split(":")[0] for e in err.value.errors]
        assert "scenario.name" in paths
        assert "model" in paths
        assert "materials.moderator.boron_ppm" in paths
        assert "run.particles" in paths
        assert "run.backend" in paths
        assert "physics.sab" in paths
        assert len(err.value.errors) == 6

    def test_unknown_keys_are_typo_errors(self):
        doc = minimal(materials={"fuel": {"enrichment_scal": 1.1}})
        doc["runn"] = {}
        with pytest.raises(ScenarioError) as err:
            validate_scenario(doc)
        text = str(err.value)
        assert "materials.fuel.enrichment_scal: unknown key" in text
        assert "runn: unknown key" in text

    def test_unknown_backend_error_names_available(self):
        with pytest.raises(ScenarioError, match="history"):
            validate_scenario(minimal(run={"backend": "warp"}))

    def test_unknown_named_pattern_lists_alternatives(self):
        doc = minimal(geometry={"core_pattern": "donut"})
        with pytest.raises(ScenarioError, match="hm-241.*smr-37|smr-37"):
            validate_scenario(doc)

    def test_explicit_pattern_rows_validated(self):
        doc = minimal(geometry={"core_pattern": ["FW", "WWW"]})
        with pytest.raises(ScenarioError, match="geometry.core_pattern"):
            validate_scenario(doc)

    def test_pattern_rejected_for_pincell(self):
        doc = minimal(
            geometry={"kind": "pincell", "core_pattern": "smr-37"}
        )
        with pytest.raises(ScenarioError, match="does not apply to pincell"):
            validate_scenario(doc)

    def test_delta_cross_constraints(self):
        doc = minimal(
            run={"backend": "delta"},
            tallies=["k-effective", "power"],
            physics={"union_grid": False},
        )
        with pytest.raises(ScenarioError) as err:
            validate_scenario(doc)
        text = str(err.value)
        assert "track-length" in text
        assert "union grid" in text

    def test_bad_number_density_reports_nuclide_path(self):
        doc = minimal(
            materials={"fuel": {"number_densities": {"U235": -1.0}}}
        )
        with pytest.raises(
            ScenarioError, match="number_densities.U235"
        ):
            validate_scenario(doc)

    def test_tally_order_is_canonical(self):
        a = validate_scenario(minimal(tallies=["power", "entropy",
                                               "k-effective"]))
        b = validate_scenario(minimal(tallies=["k-effective", "power"]))
        assert a.tallies == b.tallies == ("k-effective", "entropy", "power")


class TestFingerprint:
    def test_equivalent_documents_share_a_fingerprint(self):
        # Key order, int-vs-float spellings, and explicit defaults must
        # not perturb the canonical form.
        a = validate_scenario({
            "scenario": {"name": "t"},
            "run": {"particles": 500, "seed": 1},
            "materials": {"moderator": {"boron_ppm": 600}},
        })
        b = validate_scenario({
            "materials": {"moderator": {"boron_ppm": 600.0}},
            "scenario": {"name": "t"},
        })
        assert scenario_fingerprint(a) == scenario_fingerprint(b)

    def test_physics_changes_move_the_fingerprint(self):
        base = validate_scenario(minimal())
        for doc in (
            minimal(materials={"moderator": {"boron_ppm": 601.0}}),
            minimal(run={"seed": 2}),
            minimal(physics={"sab": False}),
            minimal(library={"temperature": 565.0}),
        ):
            assert validate_scenario(doc).fingerprint() != base.fingerprint()

    def test_fingerprint_is_stable_across_round_trip(self):
        spec = validate_scenario(minimal(
            geometry={"core_pattern": ["WFW", "FFF", "WFW"]},
            materials={"fuel": {"number_densities": {"U235": 1.0e-3}}},
        ))
        assert isinstance(spec, ScenarioSpec)
        again = validate_scenario({
            "scenario": {"name": "t"},
            "geometry": {"core_pattern": ["WFW", "FFF", "WFW"]},
            "materials": {"fuel": {"number_densities": {"U235": 1.0e-3}}},
        })
        assert again.fingerprint() == spec.fingerprint()
