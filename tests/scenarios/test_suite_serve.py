"""Acceptance: a canned sweep through the service builds each library once.

The canned ``hm-tiny-sweep`` expands to 8 cases over 2 distinct library
fingerprints (two Doppler temperatures; boron and backend axes share
data).  Run through a single-worker service in fingerprint-affine order,
the library must be *built* exactly twice — every other case is a cache
hit — and every result must carry its scenario provenance.
"""

import pytest

from repro.scenarios import load_suite
from repro.serve import SimulationService


@pytest.fixture(scope="module")
def swept(tmp_path_factory):
    suite = load_suite("hm-tiny-sweep")
    cases = suite.expand()
    service = SimulationService(
        n_workers=1,
        cache_dir=str(tmp_path_factory.mktemp("xs-cache")),
    )
    try:
        results = service.run([case.job for case in cases])
    finally:
        service.shutdown()
    return suite, cases, results


class TestSuiteThroughService:
    def test_all_cases_complete(self, swept):
        _, cases, results = swept
        assert len(results) == len(cases) == 8
        assert all(r.status == "done" for r in results)

    def test_library_built_exactly_once_per_fingerprint(self, swept):
        _, cases, results = swept
        n_distinct = len({c.job.library_fingerprint() for c in cases})
        built = [r for r in results if r.library_source == "built"]
        assert n_distinct == 2
        assert len(built) == n_distinct
        # The builds hit distinct fingerprints (no double build, no miss).
        assert len({r.library_fingerprint for r in built}) == n_distinct

    def test_results_carry_scenario_provenance(self, swept):
        suite, cases, results = swept
        by_id = {c.case_id: c for c in cases}
        for r in results:
            case = by_id[r.case_id]
            assert r.job_id == r.case_id
            assert r.suite_id == suite.suite_id
            assert r.scenario_fingerprint == case.compiled.fingerprint

    def test_backend_pairs_preserve_equivalence(self, swept):
        # Within each (temperature, boron) point the sweep runs both
        # bit-comparable backends: the service must preserve the
        # repo's history/event equivalence contract (rel 1e-12, the
        # same tolerance tests/transport/test_equivalence.py pins)
        # case for case.
        _, cases, results = swept
        by_id = {r.case_id: r for r in results}
        points = {}
        for case in cases:
            key = (case.overrides["temperature"],
                   case.overrides["boron_ppm"])
            points.setdefault(key, []).append(by_id[case.case_id])
        assert len(points) == 4
        for pair in points.values():
            a, b = pair
            assert a.k_collision == pytest.approx(b.k_collision,
                                                  rel=1e-12)
            assert a.entropy == pytest.approx(b.entropy, rel=1e-12)
