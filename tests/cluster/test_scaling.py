"""Tests for strong/weak scaling — Figs. 6 and 7's headline properties."""

import pytest

from repro.cluster.scaling import strong_scaling, weak_scaling
from repro.cluster.topology import JLSE, STAMPEDE
from repro.errors import ClusterError

NODES = [4, 8, 16, 32, 64, 128, 256, 512, 1024]


@pytest.fixture(scope="module")
def strong_1mic():
    return strong_scaling(STAMPEDE, NODES, 10_000_000, 1, alpha=0.42)


class TestStrongScaling:
    def test_95_percent_at_128_nodes(self, strong_1mic):
        """Paper: 'at 128 nodes ... the simulation time is 95% of the
        expected ideal' — the claim reproduced is >= 95% efficiency, with
        losses already visible."""
        p128 = next(pt for pt in strong_1mic if pt.nodes == 128)
        assert 0.95 <= p128.efficiency < 1.0

    def test_near_perfect_at_small_scale(self, strong_1mic):
        p8 = next(pt for pt in strong_1mic if pt.nodes == 8)
        assert p8.efficiency > 0.99

    def test_tail_at_1024_nodes(self, strong_1mic):
        """The 1-MIC curve tails off at 2^10 nodes (alpha drift at ~1e4
        particles per node)."""
        p1024 = next(pt for pt in strong_1mic if pt.nodes == 1024)
        assert p1024.efficiency < 0.87
        # ...and the droop accelerates past 512 nodes.
        p512 = next(pt for pt in strong_1mic if pt.nodes == 512)
        p256 = next(pt for pt in strong_1mic if pt.nodes == 256)
        assert (p512.efficiency - p1024.efficiency) > (
            p256.efficiency - p512.efficiency
        )

    def test_monotone_rate(self, strong_1mic):
        rates = [pt.rate for pt in strong_1mic]
        assert rates == sorted(rates)

    def test_cpu_only_immune_to_tail(self):
        """Paper: 'The effect is not seen in the CPU only curve'."""
        cpu = strong_scaling(STAMPEDE, NODES, 10_000_000, 0)
        p1024 = next(pt for pt in cpu if pt.nodes == 1024)
        mic = strong_scaling(STAMPEDE, NODES, 10_000_000, 1, alpha=0.42)
        m1024 = next(pt for pt in mic if pt.nodes == 1024)
        assert p1024.efficiency > m1024.efficiency
        assert p1024.efficiency > 0.9

    def test_2mic_curve_stops_at_384(self):
        """Only 384 Stampede nodes carry 2 MICs (the paper's note on
        Fig. 6)."""
        pts = strong_scaling(STAMPEDE, NODES, 10_000_000, 2, alpha=0.42)
        assert max(pt.nodes for pt in pts) <= 384

    def test_2mic_fastest_per_node(self):
        one = strong_scaling(STAMPEDE, [64], 10_000_000, 1, alpha=0.42)[0]
        two = strong_scaling(STAMPEDE, [64], 10_000_000, 2, alpha=0.42)[0]
        cpu = strong_scaling(STAMPEDE, [64], 10_000_000, 0)[0]
        assert two.rate > one.rate > cpu.rate

    def test_comm_negligible(self, strong_1mic):
        """Communication stays under 1% of batch time at every scale —
        the scaling losses are occupancy, not network."""
        for pt in strong_1mic:
            assert pt.comm_time < 0.01 * pt.batch_time

    def test_empty_nodes_rejected(self):
        with pytest.raises(ClusterError):
            strong_scaling(STAMPEDE, [], 1000, 1)


class TestWeakScaling:
    def test_94_percent_to_128_nodes(self):
        """Paper Fig. 7: >94% efficiency at all scales up to 128 nodes."""
        pts = weak_scaling(
            STAMPEDE, [1, 2, 4, 8, 16, 32, 64, 128], 1_000_000, 1, alpha=0.42
        )
        assert all(pt.efficiency > 0.94 for pt in pts)

    def test_flat_to_1024(self):
        """Paper §III (footnote): the curve should stay flat out to 2^10."""
        pts = weak_scaling(STAMPEDE, [1, 128, 1024], 1_000_000, 1, alpha=0.42)
        assert pts[-1].efficiency > 0.94

    def test_rate_scales_linearly(self):
        pts = weak_scaling(STAMPEDE, [1, 64], 1_000_000, 1, alpha=0.42)
        assert pts[1].rate == pytest.approx(64 * pts[0].rate, rel=0.07)

    def test_jlse_topology_limits(self):
        pts = weak_scaling(JLSE, [1, 2, 3, 64], 100_000, 2, alpha=0.62)
        assert max(pt.nodes for pt in pts) == 3
