"""Cluster topology: node device fleets and their scaling-layer view."""

import pytest

from repro.cluster.topology import JLSE, STAMPEDE
from repro.errors import ClusterError


class TestNodeConfig:
    def test_devices_are_fleet_ordered_host_last(self):
        node = JLSE.node(2)
        devices = node.devices
        assert len(devices) == 3
        assert devices[-1] is JLSE.host
        assert devices[0] is devices[1] is JLSE.mic

    def test_cpu_only_node_is_a_one_device_fleet(self):
        assert STAMPEDE.node(0).devices == [STAMPEDE.host]

    def test_invalid_mic_counts_rejected(self):
        with pytest.raises(ClusterError):
            JLSE.node(3)
        with pytest.raises(ClusterError):
            from repro.cluster.topology import NodeConfig

            NodeConfig(host=JLSE.host, mics_per_node=-1, mic=None)

    def test_curve_extents_match_paper(self):
        """Fig. 6: the 2-MIC Stampede curve stops at 384 nodes."""
        assert STAMPEDE.max_nodes(1) == 1024
        assert STAMPEDE.max_nodes(2) == 384

    def test_scaling_builds_symmetric_node_from_the_fleet(self):
        """The scaling drivers construct their per-node model from
        NodeConfig.devices (host last), not from the old host/mic pair."""
        from repro.cluster.scaling import _node_for
        from repro.execution.symmetric import SymmetricNode

        node = _node_for(JLSE, 2, "hm-large", None)
        assert isinstance(node, SymmetricNode)
        assert node.host is JLSE.host
        assert node.mics == [JLSE.mic, JLSE.mic]
        assert node.n_ranks == 3
