"""Tests for the executable distributed simulation.

The central claim: an R-rank run through the simulated communicator is
bit-identical to the serial run — global particle-id RNG streams plus
additive tallies make MC transport decomposition exact, which is why the
paper's distributed analysis reduces to per-node rate modelling.
"""

import numpy as np
import pytest

from repro.cluster.distributed import DistributedSimulation
from repro.errors import ClusterError
from repro.transport import Settings, Simulation

SETTINGS = Settings(
    n_particles=90, n_inactive=1, n_active=2, pincell=True,
    mode="event", seed=17,
)


@pytest.fixture(scope="module")
def serial(small_library):
    return Simulation(small_library, SETTINGS).run()


class TestBitEquivalence:
    @pytest.mark.parametrize("n_ranks", [1, 2, 3, 7])
    def test_matches_serial(self, small_library, serial, n_ranks):
        dist = DistributedSimulation(small_library, SETTINGS, n_ranks).run()
        np.testing.assert_allclose(
            dist.statistics.k_collision,
            serial.statistics.k_collision,
            rtol=1e-12,
        )
        np.testing.assert_allclose(
            dist.statistics.k_track, serial.statistics.k_track, rtol=1e-12
        )

    def test_history_mode_too(self, small_library):
        settings = Settings(
            n_particles=60, n_inactive=0, n_active=2, pincell=True,
            mode="history", seed=23,
        )
        serial = Simulation(small_library, settings).run()
        dist = DistributedSimulation(small_library, settings, 4).run()
        np.testing.assert_allclose(
            dist.statistics.k_collision,
            serial.statistics.k_collision,
            rtol=1e-12,
        )


class TestDecomposition:
    def test_rank_slices_cover(self, small_library):
        dist = DistributedSimulation(small_library, SETTINGS, 4)
        slices = dist._rank_slices(90)
        covered = sum(sl.stop - sl.start for sl in slices)
        assert covered == 90
        assert slices[0].start == 0
        assert slices[-1].stop == 90

    def test_uneven_split(self, small_library):
        dist = DistributedSimulation(small_library, SETTINGS, 4)
        slices = dist._rank_slices(10)
        counts = [sl.stop - sl.start for sl in slices]
        assert counts == [3, 3, 2, 2]

    def test_comm_time_grows_with_ranks(self, small_library):
        t2 = DistributedSimulation(small_library, SETTINGS, 2).run().comm_time
        t7 = DistributedSimulation(small_library, SETTINGS, 7).run().comm_time
        assert 0 < t2 < t7

    def test_comm_tiny_vs_anything(self, small_library):
        """Per-batch collectives are microseconds — the paper's scaling
        argument."""
        dist = DistributedSimulation(small_library, SETTINGS, 8).run()
        assert dist.comm_time < 0.01

    def test_invalid_ranks(self, small_library):
        with pytest.raises(ClusterError):
            DistributedSimulation(small_library, SETTINGS, 0)
