"""Tests for the simulated communicator and fabric model."""

import numpy as np
import pytest

from repro.cluster.simcomm import FabricModel, SimulatedComm
from repro.errors import ClusterError


class TestFabricModel:
    def test_message_time(self):
        f = FabricModel(latency_s=1e-6, bandwidth_gbps=10.0)
        assert f.message_time(1e9) == pytest.approx(0.1 + 1e-6)

    def test_tree_rounds(self):
        f = FabricModel(latency_s=1e-6, bandwidth_gbps=10.0)
        one = f.message_time(100)
        assert f.tree_collective_time(2, 100) == pytest.approx(one)
        assert f.tree_collective_time(8, 100) == pytest.approx(3 * one)
        assert f.tree_collective_time(1000, 100) == pytest.approx(10 * one)

    def test_single_rank_free(self):
        f = FabricModel()
        assert f.tree_collective_time(1, 1e6) == 0.0

    def test_invalid_ranks(self):
        with pytest.raises(ClusterError):
            FabricModel().tree_collective_time(0, 1)


class TestSimulatedComm:
    def test_allreduce_sums(self):
        comm = SimulatedComm(4)
        bufs = [np.full(3, float(r)) for r in range(4)]
        result, t = comm.allreduce_sum(bufs)
        np.testing.assert_allclose(result, [6.0, 6.0, 6.0])
        assert t > 0

    def test_reduce_vs_allreduce_cost(self):
        """Allreduce costs twice the reduce (reduce + broadcast trees)."""
        a = SimulatedComm(16)
        b = SimulatedComm(16)
        bufs = [np.ones(8) for _ in range(16)]
        _, t_all = a.allreduce_sum(bufs)
        _, t_red = b.reduce_sum([np.ones(8) for _ in range(16)])
        assert t_all == pytest.approx(2 * t_red)

    def test_comm_time_accumulates(self):
        comm = SimulatedComm(4)
        bufs = [np.ones(2)] * 4
        comm.allreduce_sum(bufs)
        comm.allreduce_sum(bufs)
        assert comm.comm_time == pytest.approx(
            2 * 2 * comm.fabric.tree_collective_time(4, 16)
        )

    def test_buffer_count_checked(self):
        comm = SimulatedComm(4)
        with pytest.raises(ClusterError):
            comm.allreduce_sum([np.ones(2)] * 3)

    def test_shape_checked(self):
        comm = SimulatedComm(2)
        with pytest.raises(ClusterError):
            comm.allreduce_sum([np.ones(2), np.ones(3)])

    def test_bcast(self):
        comm = SimulatedComm(8)
        v, t = comm.bcast(np.array([1.0, 2.0]))
        np.testing.assert_allclose(v, [1.0, 2.0])
        assert t > 0

    def test_exchange_bank_balanced_is_cheap(self):
        comm = SimulatedComm(4)
        t = comm.exchange_bank([100, 100, 100, 100])
        # Only latency: nothing moves.
        assert t == pytest.approx(comm.fabric.latency_s)

    def test_exchange_bank_imbalance_costs(self):
        comm = SimulatedComm(2)
        t_bal = SimulatedComm(2).exchange_bank([100, 100])
        t_imb = comm.exchange_bank([200, 0])
        assert t_imb > t_bal

    def test_single_rank_comm_free(self):
        comm = SimulatedComm(1)
        _, t = comm.allreduce_sum([np.ones(5)])
        assert t == 0.0
