"""The gateway CLI verbs (serve/submit/status) end to end, via main(argv)."""

import json

from repro.cli import main as sim_main
from repro.serve.jobs import JobSpec
from repro.serve.service import spool_status, submit_to_spool

TINY = {"n_particles": 24, "n_inactive": 0, "n_active": 2,
        "mode": "event", "pincell": True}


def write_jobs(path, specs):
    path.write_text("".join(s.to_json() + "\n" for s in specs))
    return str(path)


def tiny_spec(job_id, seed=5):
    return JobSpec(job_id=job_id, settings=dict(TINY, seed=seed))


class TestGatewaySubmit:
    def test_one_shot_json_document(self, tmp_path, capsys):
        jobs = write_jobs(tmp_path / "jobs.jsonl", [
            tiny_spec("g1", seed=5), tiny_spec("g2", seed=5),
        ])
        rc = sim_main(["gateway", "submit", "--jobs", jobs,
                       "--shards", "1", "--cache", str(tmp_path / "libs"),
                       "--deadline-s", "110", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert [r["job_id"] for r in doc["results"]] == ["g1", "g2"]
        assert all(r["status"] == "done" for r in doc["results"])
        gw = doc["gateway"]["gateway"]
        assert gw["counters"]["completed"] == 2
        # Identical physics: the second job came from the result cache.
        assert gw["counters"]["cache_hits"] == 1
        assert doc["gateway"]["aggregate"]["library_builds"] == 1

    def test_result_cache_dir_answers_resubmission(self, tmp_path, capsys):
        """Two invocations sharing --result-cache: the second runs zero
        simulations and returns byte-identical physics."""
        flags = ["--shards", "1", "--cache", str(tmp_path / "libs"),
                 "--result-cache", str(tmp_path / "rc"),
                 "--deadline-s", "110", "--json"]
        jobs1 = write_jobs(tmp_path / "j1.jsonl", [tiny_spec("cold")])
        assert sim_main(["gateway", "submit", "--jobs", jobs1, *flags]) == 0
        cold = json.loads(capsys.readouterr().out)

        jobs2 = write_jobs(tmp_path / "j2.jsonl", [tiny_spec("warm")])
        assert sim_main(["gateway", "submit", "--jobs", jobs2, *flags]) == 0
        warm = json.loads(capsys.readouterr().out)

        assert warm["gateway"]["gateway"]["counters"]["cache_hits"] == 1
        assert warm["gateway"]["aggregate"]["jobs_completed"] == 0
        assert warm["results"][0]["library_source"] == "result-cache"
        payload = {k: warm["results"][0][k]
                   for k in ("k_effective", "k_collision", "entropy",
                             "counters")}
        reference = {k: cold["results"][0][k]
                     for k in ("k_effective", "k_collision", "entropy",
                               "counters")}
        assert json.dumps(payload, sort_keys=True) == json.dumps(
            reference, sort_keys=True)

    def test_empty_jobs_file_fails(self, tmp_path, capsys):
        jobs = tmp_path / "empty.jsonl"
        jobs.write_text("")
        rc = sim_main(["gateway", "submit", "--jobs", str(jobs)])
        assert rc == 1
        assert "no jobs" in capsys.readouterr().err


class TestGatewayServeAndStatus:
    def test_spool_round_trip(self, tmp_path, capsys):
        spool = str(tmp_path / "spool")
        for i in range(2):
            submit_to_spool(spool, tiny_spec(f"sp{i}", seed=5))
        rc = sim_main(["gateway", "serve", "--spool", spool,
                       "--shards", "1", "--cache", str(tmp_path / "libs"),
                       "--deadline-s", "110"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 jobs over 1 shard(s)" in out

        status = spool_status(spool)
        assert status["counts"] == {"pending": 0, "done": 2, "failed": 0}

        rc = sim_main(["gateway", "status", "--spool", spool])
        assert rc == 0
        out = capsys.readouterr().out
        assert "gateway: 1 shard(s)" in out
        assert "result cache:" in out
        assert "shard 0: healthy" in out

        rc = sim_main(["gateway", "status", "--spool", spool, "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["gateway"]["counters"]["completed"] == 2
        assert doc["aggregate"]["library_builds"] == 1
        assert doc["gateway"]["quarantined"] == []

    def test_status_without_state_fails(self, tmp_path, capsys):
        rc = sim_main(["gateway", "status", "--spool", str(tmp_path)])
        assert rc == 1
        assert "no gateway state" in capsys.readouterr().err


class TestJournalRecoverCli:
    def serve_flags(self, tmp_path, spool):
        return ["gateway", "serve", "--spool", spool,
                "--journal", str(tmp_path / "gw.journal"),
                "--shards", "1", "--cache", str(tmp_path / "libs"),
                "--deadline-s", "110"]

    def done_payloads(self, spool):
        return {
            r["job_id"]: json.dumps(
                {k: r[k] for k in ("k_effective", "k_std_err",
                                   "k_collision", "entropy", "counters")},
                sort_keys=True)
            for r in (json.loads(p.read_text())
                      for p in sorted((spool / "done").glob("*.json")))
        }

    def test_restart_with_journal_recovers_byte_identically(
        self, tmp_path, capsys
    ):
        """The operator's crash-recovery runbook, end to end: run a
        journaled spool to completion, then rerun the identical command
        — the second incarnation replays the journal, restores every
        result verbatim, and simulates nothing."""
        spool = tmp_path / "spool"
        for i in range(2):
            submit_to_spool(spool, tiny_spec(f"jr{i}", seed=5))
        assert sim_main(self.serve_flags(tmp_path, str(spool))) == 0
        capsys.readouterr()
        reference = self.done_payloads(spool)
        assert len(reference) == 2

        # Same command again: the pending dir is empty, the journal is
        # not — recovery is the only work.
        assert sim_main(self.serve_flags(tmp_path, str(spool))) == 0
        captured = capsys.readouterr()
        assert "recovered from" in captured.err
        assert "2 result(s) restored" in captured.err
        assert self.done_payloads(spool) == reference

        rc = sim_main(["gateway", "status", "--spool", str(spool)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 recovered from journal" in out
        assert "journal: " in out
        assert "gw.journal" in out

        doc = json.loads((spool / "gateway.json").read_text())
        g = doc["gateway"]
        assert g["counters"]["recovered"] == 2
        assert g["journal"]["path"].endswith("gw.journal")
        # The recovered incarnation ran zero simulations.
        assert doc["aggregate"]["jobs_completed"] == 0
        assert doc["aggregate"]["library_builds"] == 0

    def test_journal_status_fields_round_trip_via_json(
        self, tmp_path, capsys
    ):
        spool = tmp_path / "spool"
        submit_to_spool(spool, tiny_spec("j0", seed=5))
        assert sim_main(self.serve_flags(tmp_path, str(spool))) == 0
        capsys.readouterr()
        rc = sim_main(["gateway", "status", "--spool", str(spool),
                       "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        journal = doc["gateway"]["journal"]
        # One clean job journals accepted/leader-elected/routed/completed.
        assert journal["appended"] == 4
        assert journal["next_seq"] == 5
        assert journal["fsync"] is True
        assert doc["gateway"]["result_cache"]["corrupt_entries"] == 0
