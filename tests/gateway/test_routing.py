"""HashRing: deterministic, balanced-enough, minimally disruptive."""

import pytest

from repro.errors import GatewayError
from repro.gateway.routing import HashRing

KEYS = [f"fingerprint-{i:04x}" for i in range(256)]


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(GatewayError, match="at least one shard"):
            HashRing([])

    def test_rejects_duplicates(self):
        with pytest.raises(GatewayError, match="duplicate"):
            HashRing([0, 1, 0])

    def test_rejects_bad_replicas(self):
        with pytest.raises(GatewayError, match="replicas"):
            HashRing([0], replicas=0)


class TestPlacement:
    def test_deterministic_across_instances(self):
        a = HashRing([0, 1, 2])
        b = HashRing([2, 0, 1])  # construction order is irrelevant
        for key in KEYS:
            assert a.shard_for(key) == b.shard_for(key)

    def test_single_shard_owns_everything(self):
        ring = HashRing([7])
        assert all(ring.shard_for(k) == 7 for k in KEYS)

    def test_every_shard_gets_keys(self):
        """64 replicas keep a 3-shard split far from degenerate."""
        ring = HashRing([0, 1, 2])
        placement = ring.assignments(KEYS)
        assert set(placement) == {0, 1, 2}
        for keys in placement.values():
            assert len(keys) >= len(KEYS) // 10

    def test_affinity_is_stable_per_key(self):
        ring = HashRing([0, 1, 2, 3])
        assert all(
            ring.shard_for(k) == ring.shard_for(k) for k in KEYS
        )


class TestExclusion:
    def test_excluding_one_shard_moves_only_its_keys(self):
        """Quarantine is minimal: surviving placements never change."""
        ring = HashRing([0, 1, 2])
        before = {k: ring.shard_for(k) for k in KEYS}
        after = {k: ring.shard_for(k, excluded={1}) for k in KEYS}
        for key in KEYS:
            if before[key] != 1:
                assert after[key] == before[key]
            else:
                assert after[key] in (0, 2)

    def test_remap_is_deterministic(self):
        ring = HashRing([0, 1, 2])
        a = [ring.shard_for(k, excluded={2}) for k in KEYS]
        b = [ring.shard_for(k, excluded={2}) for k in KEYS]
        assert a == b

    def test_all_excluded_raises(self):
        ring = HashRing([0, 1])
        with pytest.raises(GatewayError, match="no routable shard"):
            ring.shard_for("key", excluded={0, 1})

    def test_assignments_skip_excluded(self):
        ring = HashRing([0, 1, 2])
        placement = ring.assignments(KEYS, excluded={0})
        assert set(placement) == {1, 2}
        assert sum(len(v) for v in placement.values()) == len(KEYS)
