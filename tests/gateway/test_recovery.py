"""Gateway crash recovery: journal replay restores the durable picture.

These tests drive the journaled gateway with synthetic shards, kill it
(via the journal's ``on_append`` tripwire — the same mechanism the
chaos harness uses), and assert the recovery invariants directly:
landed results restore byte-identically and are never re-simulated,
unfinished work re-admits in arrival order, and supervision state
(breaker circuits, quarantine) replays deterministically.
"""

import pytest

from repro.errors import GatewayError
from repro.gateway import Gateway, SyntheticService, WriteAheadJournal
from repro.resilience.faults import SimulatedCrash
from repro.serve.jobs import JobSpec

TINY = {"n_particles": 24, "n_inactive": 0, "n_active": 2,
        "mode": "event", "pincell": True}


def specs_for(prefix, n, distinct=None):
    return [
        JobSpec(job_id=f"{prefix}{i:03d}",
                settings=dict(TINY, seed=i % (distinct or n)))
        for i in range(n)
    ]


def journaled_gateway(path, **kwargs):
    kwargs.setdefault("n_shards", 2)
    kwargs.setdefault("service_factory", SyntheticService)
    return Gateway(journal_path=path, **kwargs)


def run_all(gateway, specs):
    for spec in specs:
        gateway.submit(spec)
    gateway.drain(deadline_s=30)
    return {r.job_id: r for r in gateway.ordered_results()}


class TestRecoverPreconditions:
    def test_needs_a_journal(self):
        gw = Gateway(n_shards=2, service_factory=SyntheticService)
        with pytest.raises(GatewayError, match="journal"):
            gw.recover()
        gw.shutdown()

    def test_refuses_a_used_gateway(self, tmp_path):
        gw = journaled_gateway(tmp_path / "j")
        run_all(gw, specs_for("a", 2))
        with pytest.raises(GatewayError, match="fresh"):
            gw.recover()
        gw.shutdown()

    def test_has_job_tracks_specs_and_results(self, tmp_path):
        gw = journaled_gateway(tmp_path / "j")
        spec = specs_for("a", 1)[0]
        assert not gw.has_job(spec.job_id)
        run_all(gw, [spec])
        assert gw.has_job(spec.job_id)
        gw.shutdown()


class TestCompletedRunRecovery:
    def test_restores_everything_without_resimulating(self, tmp_path):
        path = tmp_path / "j"
        first = journaled_gateway(path)
        reference = run_all(first, specs_for("a", 6, distinct=4))
        first.shutdown()

        second = journaled_gateway(path)
        summary = second.recover()
        assert summary["requeued"] == 0
        assert summary["restored"] == 6
        # Byte-identical payloads, straight from the journal: the
        # synthetic shards of the second gateway never ran a job.
        assert {
            job_id: r.payload_json()
            for job_id, r in second.results.items()
        } == {
            job_id: r.payload_json()
            for job_id, r in reference.items()
        }
        for shard in second.shards.values():
            assert shard.service.metrics.counter(
                "jobs_completed").value == 0
        assert second.unresolved() == 0
        second.shutdown()

    def test_counters_match_the_dead_incarnation(self, tmp_path):
        path = tmp_path / "j"
        first = journaled_gateway(path)
        run_all(first, specs_for("a", 6, distinct=4))
        reference = dict(first.counters)
        first.shutdown()
        second = journaled_gateway(path)
        second.recover()
        counters = dict(second.counters)
        # Coalesced is a transient scheduling fact, not journaled
        # per-follower; everything durable must match exactly.
        for key in ("submitted", "completed", "cache_hits", "failed",
                    "poisoned", "requeued", "quarantines"):
            assert counters[key] == reference[key], key
        second.shutdown()

    def test_recovered_marker_is_journaled(self, tmp_path):
        path = tmp_path / "j"
        first = journaled_gateway(path)
        run_all(first, specs_for("a", 3))
        first.shutdown()
        second = journaled_gateway(path)
        second.recover()
        second.shutdown()
        markers = WriteAheadJournal.scan(path).by_kind("recovered")
        assert len(markers) == 1
        assert markers[0].data["restored"] == 3
        assert markers[0].data["pending"] == []


class TestMidRunRecovery:
    def kill_after(self, path, boundary, specs):
        """Run until the journal reaches ``boundary`` records, then die."""
        gw = journaled_gateway(path)

        def tripwire(record):
            if record.seq == boundary:
                raise SimulatedCrash(f"die at {boundary}")

        gw.journal.on_append = tripwire
        with pytest.raises(SimulatedCrash):
            for spec in specs:
                gw.submit(spec)
            gw.drain(deadline_s=30)
        gw.shutdown(graceful=False)

    def test_pending_work_requeues_in_arrival_order(self, tmp_path):
        path = tmp_path / "j"
        specs = specs_for("a", 5)
        # Die right after the 3rd acceptance journals: jobs a000..a002
        # accepted, nothing landed.
        scan_before = None
        self.kill_after(path, 7, specs)
        scan_before = WriteAheadJournal.scan(path)
        accepted = [r.data["job_id"]
                    for r in scan_before.by_kind("accepted")]

        second = journaled_gateway(path)
        summary = second.recover()
        assert summary["requeued"] == len(accepted)
        # Re-admission preserved original arrival order.
        assert second._order[: len(accepted)] == accepted
        for spec in specs:
            if not second.has_job(spec.job_id):
                second.submit(spec)
        second.drain(deadline_s=30)
        assert sorted(second.results) == [s.job_id for s in specs]
        second.shutdown()

    def test_landed_results_survive_and_never_rerun(self, tmp_path):
        path = tmp_path / "j"
        specs = specs_for("b", 4)
        reference = {}
        clean = journaled_gateway(tmp_path / "ref")
        reference = {
            job_id: r.payload_json()
            for job_id, r in run_all(clean, specs).items()
        }
        clean.shutdown()

        # A clean run journals 4 jobs * 4 records = 16; die mid-drain.
        self.kill_after(path, 14, specs)
        landed_before = {
            r.data["job_id"]
            for r in WriteAheadJournal.scan(path).by_kind("completed")
        }
        assert 0 < len(landed_before) < 4

        second = journaled_gateway(path)
        second.recover()
        for spec in specs:
            if not second.has_job(spec.job_id):
                second.submit(spec)
        second.drain(deadline_s=30)
        payloads = {
            job_id: r.payload_json()
            for job_id, r in second.results.items()
        }
        assert payloads == reference
        # Exactly-once in the journal: one landing per job, ever.
        landings = {}
        for record in WriteAheadJournal.scan(path).records:
            if record.kind in ("completed", "cache-hit"):
                job_id = record.data["job_id"]
                landings[job_id] = landings.get(job_id, 0) + 1
        assert all(n == 1 for n in landings.values())
        second.shutdown()

    def test_exempt_admission_bypasses_capacity(self, tmp_path):
        path = tmp_path / "j"
        specs = specs_for("c", 3)
        self.kill_after(path, 9, specs)  # 3 accepted, none landed
        # Recover into a gateway whose admission would refuse 3 jobs.
        second = journaled_gateway(path, capacity=1)
        summary = second.recover()
        assert summary["requeued"] == 3
        second.drain(deadline_s=30)
        assert len(second.results) == 3
        second.shutdown()


class TestBreakerAndQuarantineReplay:
    def test_breaker_state_replays_from_completed_records(self, tmp_path):
        path = tmp_path / "j"
        first = journaled_gateway(path)
        run_all(first, specs_for("a", 4))
        # Every synthetic job lands "done": the breakers saw successes.
        assert first.breaker.failures("shard-0") == 0
        first.shutdown()
        second = journaled_gateway(path)
        second.recover()
        assert second.breaker.as_dict() == first.breaker.as_dict()
        second.shutdown()

    def test_quarantine_replays_and_excludes_the_shard(self, tmp_path):
        path = tmp_path / "j"
        first = journaled_gateway(path, n_shards=3)
        run_all(first, specs_for("a", 6))
        assert first.quarantine_shard(1)
        first.shutdown()
        second = journaled_gateway(path, n_shards=3)
        second.recover()
        assert second.quarantined == {1}
        assert second.counters["quarantines"] == 1
        assert second.admission.slots == 2  # healthy shards only
        # New work routes around the dead shard.
        extra = specs_for("z", 4)
        for spec in extra:
            second.submit(spec)
        second.drain(deadline_s=30)
        assert all(
            second._job_shard[s.job_id] != 1
            for s in extra
            if s.job_id in second._job_shard
        )
        second.shutdown()
