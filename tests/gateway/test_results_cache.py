"""Result-cache churn: eviction order, concurrent inserts, poison refusal."""

import json
import threading

import pytest

from repro.errors import GatewayError
from repro.gateway.results import ResultCache
from repro.serve.jobs import JobResult, JobSpec

SETTINGS = {"n_particles": 24, "n_inactive": 0, "n_active": 2,
            "mode": "event", "pincell": True}


def spec(seed=1, job_id=None, **kwargs):
    return JobSpec(
        job_id=job_id or f"job-seed{seed}",
        settings=dict(SETTINGS, seed=seed),
        **kwargs,
    )


def done_result(s, k=1.0):
    return JobResult(
        job_id=s.job_id,
        status="done",
        mode="event",
        n_particles=24,
        n_batches=2,
        k_effective=k,
        k_std_err=0.01,
        k_collision=[k, k + 0.001],
        entropy=[0.5, 0.6],
        counters={"lookups": 7},
        settings_fingerprint=s.settings_fingerprint(),
        library_fingerprint=s.library_fingerprint(),
        worker_id=3,
        service_seconds=1.25,
        library_source="built",
    )


class TestHitSemantics:
    def test_miss_then_hit(self):
        cache = ResultCache()
        s = spec(seed=1)
        assert cache.get(s) is None
        assert cache.put(s, done_result(s))
        hit = cache.get(s)
        assert hit is not None
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_hit_payload_is_byte_identical(self):
        """The physics payload survives the cache bit-for-bit."""
        cache = ResultCache()
        s = spec(seed=2)
        original = done_result(s, k=1.0123456789012345)
        cache.put(s, original)
        hit = cache.get(s)
        assert hit.payload_json() == original.payload_json()

    def test_hit_restamps_scheduling_identity(self):
        """Identity fields come from the *requesting* spec; accounting is
        zeroed and the source marked result-cache."""
        cache = ResultCache()
        s1 = spec(seed=3, job_id="first")
        cache.put(s1, done_result(s1))
        s2 = spec(seed=3, job_id="second", case_id="c1", suite_id="sw",
                  scenario_fingerprint="fp")
        hit = cache.get(s2)
        assert hit.job_id == "second"
        assert hit.case_id == "c1"
        assert hit.suite_id == "sw"
        assert hit.scenario_fingerprint == "fp"
        assert hit.library_source == "result-cache"
        assert hit.worker_id == -1
        assert hit.service_seconds == 0.0

    def test_scheduling_metadata_does_not_fragment_keys(self):
        """Same physics under different priority/deadline/job-id: one key."""
        a = spec(seed=4, job_id="a", priority=5)
        b = spec(seed=4, job_id="b", deadline_s=60.0)
        assert a.cache_key() == b.cache_key()
        assert spec(seed=5).cache_key() != a.cache_key()


class TestEvictionChurn:
    def test_rejects_nonpositive_bound(self):
        with pytest.raises(GatewayError, match="max_entries"):
            ResultCache(max_entries=0)

    def test_lru_eviction_order(self):
        """A hit refreshes recency; the coldest entry leaves first."""
        cache = ResultCache(max_entries=2)
        s1, s2, s3 = spec(seed=1), spec(seed=2), spec(seed=3)
        cache.put(s1, done_result(s1))
        cache.put(s2, done_result(s2))
        cache.get(s1)  # refresh s1: s2 is now coldest
        cache.put(s3, done_result(s3))
        assert cache.stats()["evictions"] == 1
        assert cache.get(s2) is None
        assert cache.get(s1) is not None
        assert cache.get(s3) is not None
        assert cache.keys() == [s1.cache_key(), s3.cache_key()]

    def test_churn_keeps_bound(self):
        cache = ResultCache(max_entries=4)
        for seed in range(20):
            s = spec(seed=seed)
            cache.put(s, done_result(s))
        stats = cache.stats()
        assert stats["entries"] == 4
        assert stats["evictions"] == 16
        # Survivors are exactly the four most recent inserts.
        assert all(cache.get(spec(seed=s)) for s in range(16, 20))


class TestConcurrentInsert:
    def test_same_key_from_two_shards_first_wins(self):
        """Two shards finishing identical specs race put(): exactly one
        insert lands, and the cache never double-counts."""
        cache = ResultCache()
        s = spec(seed=9)
        result = done_result(s)
        outcomes = []
        barrier = threading.Barrier(2)

        def worker():
            barrier.wait()
            outcomes.append(cache.put(s, result))

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(outcomes) == [False, True]
        assert cache.stats()["insertions"] == 1
        assert len(cache) == 1


class TestPoisonRefusal:
    @pytest.mark.parametrize("status", ["failed", "expired", "poisoned"])
    def test_non_done_never_cached(self, status):
        cache = ResultCache()
        s = spec(seed=11)
        bad = JobResult.failure(s, "worker kept dying", status=status)
        assert cache.put(s, bad) is False
        assert cache.get(s) is None
        assert cache.stats()["rejected"] == 1
        assert len(cache) == 0


class TestDiskTier:
    def test_survives_a_new_cache_instance(self, tmp_path):
        s = spec(seed=21)
        original = done_result(s, k=0.987654321098765)
        ResultCache(tmp_path / "rc").put(s, original)
        fresh = ResultCache(tmp_path / "rc")
        hit = fresh.get(s)
        assert hit is not None
        assert hit.payload_json() == original.payload_json()
        assert fresh.stats()["hits"] == 1

    def test_disk_entry_is_exact_float_json(self, tmp_path):
        s = spec(seed=22)
        cache = ResultCache(tmp_path / "rc")
        result = done_result(s, k=1.0000000000000002)
        cache.put(s, result)
        (path,) = sorted((tmp_path / "rc").glob("*.json"))
        assert path.stem == s.cache_key()
        envelope = json.loads(path.read_text())
        assert envelope["format"] == 2
        stored = JobResult.from_dict(envelope["result"])
        assert stored.k_effective == result.k_effective

    def test_memory_eviction_keeps_disk(self, tmp_path):
        cache = ResultCache(tmp_path / "rc", max_entries=1)
        s1, s2 = spec(seed=31), spec(seed=32)
        cache.put(s1, done_result(s1))
        cache.put(s2, done_result(s2))  # evicts s1 from memory
        assert cache.stats()["entries"] == 1
        assert cache.get(s1) is not None  # reloaded from the disk tier

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "rc")
        s = spec(seed=41)
        (tmp_path / "rc" / f"{s.cache_key()}.json").write_text("{broken")
        assert cache.get(s) is None

    def test_legacy_format1_entry_still_loads(self, tmp_path):
        s = spec(seed=45)
        result = done_result(s, k=1.01)
        cache = ResultCache(tmp_path / "rc")
        # A pre-checksum cache wrote bare result JSON.
        (tmp_path / "rc" / f"{s.cache_key()}.json").write_text(
            result.to_json()
        )
        hit = cache.get(s)
        assert hit is not None
        assert hit.payload_json() == result.payload_json()
        assert cache.stats()["corrupt_entries"] == 0

    def test_duplicate_put_against_disk_is_refused(self, tmp_path):
        s = spec(seed=51)
        ResultCache(tmp_path / "rc").put(s, done_result(s))
        other = ResultCache(tmp_path / "rc")  # cold memory, warm disk
        assert other.put(s, done_result(s)) is False
        assert other.stats()["insertions"] == 0


class TestAdversarialDiskEntries:
    """Every damaged-entry shape quarantines; none ever raises."""

    def warm_path(self, tmp_path, s):
        ResultCache(tmp_path / "rc").put(s, done_result(s))
        return tmp_path / "rc" / f"{s.cache_key()}.json"

    def assert_quarantined(self, tmp_path, s, cache):
        assert cache.get(s) is None
        assert cache.corrupt_entries == 1
        assert cache.stats()["corrupt_entries"] == 1
        path = tmp_path / "rc" / f"{s.cache_key()}.json"
        assert not path.exists()
        assert path.with_suffix(".corrupt").exists()
        # The quarantined name is out of the cache namespace: the next
        # lookup is an honest miss, not a crash loop.
        assert cache.get(s) is None

    def test_truncated_entry(self, tmp_path):
        s = spec(seed=71)
        path = self.warm_path(tmp_path, s)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        self.assert_quarantined(tmp_path, s, ResultCache(tmp_path / "rc"))

    def test_flipped_byte_fails_the_digest(self, tmp_path):
        s = spec(seed=72)
        path = self.warm_path(tmp_path, s)
        data = bytearray(path.read_bytes())
        # Flip one bit inside a float digit of the stored result: the
        # JSON stays valid, only the checksum can catch it.
        k_pos = data.find(b'"k_effective"')
        assert k_pos > 0
        digit = data.find(b"1", k_pos)
        data[digit] = ord("2")
        path.write_bytes(bytes(data))
        self.assert_quarantined(tmp_path, s, ResultCache(tmp_path / "rc"))

    def test_empty_file(self, tmp_path):
        s = spec(seed=73)
        path = self.warm_path(tmp_path, s)
        path.write_bytes(b"")
        self.assert_quarantined(tmp_path, s, ResultCache(tmp_path / "rc"))

    def test_wrong_format_number(self, tmp_path):
        s = spec(seed=74)
        path = self.warm_path(tmp_path, s)
        doc = json.loads(path.read_text())
        doc["format"] = 99
        path.write_text(json.dumps(doc))
        self.assert_quarantined(tmp_path, s, ResultCache(tmp_path / "rc"))

    def test_non_object_entry(self, tmp_path):
        s = spec(seed=75)
        path = self.warm_path(tmp_path, s)
        path.write_text('["not", "an", "object"]')
        self.assert_quarantined(tmp_path, s, ResultCache(tmp_path / "rc"))

    def test_concurrent_reader_during_quarantine(self, tmp_path):
        """Two cold caches race over one corrupt entry: the loser of the
        rename sees a vanished file — a miss, never an exception."""
        s = spec(seed=76)
        path = self.warm_path(tmp_path, s)
        path.write_text("{torn")
        first = ResultCache(tmp_path / "rc")
        second = ResultCache(tmp_path / "rc")
        results = []
        errors = []
        barrier = threading.Barrier(2)

        def race(cache):
            barrier.wait()
            try:
                results.append(cache.get(s))
            except Exception as exc:  # the one thing that must not happen
                errors.append(exc)

        threads = [
            threading.Thread(target=race, args=(c,))
            for c in (first, second)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert results == [None, None]
        # At least the rename winner counted; the loser either saw the
        # corrupt bytes too (counted) or found the file already moved
        # (an ordinary miss) — both are legal, an exception is not.
        assert 1 <= first.corrupt_entries + second.corrupt_entries <= 2
        assert not path.exists()
        assert path.with_suffix(".corrupt").exists()

    def test_rewrite_after_quarantine_restores_service(self, tmp_path):
        s = spec(seed=77)
        path = self.warm_path(tmp_path, s)
        path.write_text("{torn")
        cache = ResultCache(tmp_path / "rc")
        assert cache.get(s) is None
        assert cache.put(s, done_result(s))
        assert cache.get(s) is not None


class TestStats:
    def test_hit_rate(self):
        cache = ResultCache()
        s = spec(seed=61)
        cache.get(s)
        cache.put(s, done_result(s))
        cache.get(s)
        stats = cache.stats()
        assert stats["hit_rate"] == pytest.approx(0.5)
        assert json.dumps(stats)  # export-safe
