"""Admission control: bounded occupancy, class fairness, adaptive hints."""

import pytest

from repro.errors import GatewayError, QueueFullError
from repro.gateway.admission import AdmissionController
from repro.serve.jobs import JobSpec


def spec(priority=0, **kwargs):
    return JobSpec(priority=priority, **kwargs)


class TestConstruction:
    def test_rejects_bad_capacity(self):
        with pytest.raises(GatewayError, match="capacity"):
            AdmissionController(0)

    def test_rejects_bad_share(self):
        with pytest.raises(GatewayError, match="max_class_share"):
            AdmissionController(4, max_class_share=0.0)
        with pytest.raises(GatewayError, match="max_class_share"):
            AdmissionController(4, max_class_share=1.5)

    def test_rejects_bad_slots(self):
        with pytest.raises(GatewayError, match="slots"):
            AdmissionController(4, slots=0)


class TestCapacity:
    def test_admits_until_capacity(self):
        ctl = AdmissionController(3, max_class_share=1.0)
        for _ in range(3):
            ctl.admit(spec())
        with pytest.raises(QueueFullError, match="at capacity") as exc:
            ctl.admit(spec())
        assert exc.value.retry_after_s > 0
        assert ctl.in_flight == 3

    def test_release_reopens_capacity(self):
        ctl = AdmissionController(1, max_class_share=1.0)
        cls = ctl.admit(spec())
        ctl.release(cls)
        assert ctl.in_flight == 0
        ctl.admit(spec())  # does not raise

    def test_unbalanced_release_is_typed(self):
        ctl = AdmissionController(2)
        with pytest.raises(GatewayError, match="no slot held"):
            ctl.release("priority-0")


class TestClassFairness:
    def test_one_class_cannot_fill_the_gateway(self):
        ctl = AdmissionController(4, max_class_share=0.5)
        assert ctl.class_cap == 2
        ctl.admit(spec(priority=5))
        ctl.admit(spec(priority=5))
        with pytest.raises(QueueFullError, match="fairness cap") as exc:
            ctl.admit(spec(priority=5))
        assert "priority-5" in str(exc.value)
        # Another class still admits into the reserved headroom.
        ctl.admit(spec(priority=0))
        ctl.admit(spec(priority=0))
        assert ctl.in_flight == 4

    def test_class_token_round_trip(self):
        ctl = AdmissionController(4, max_class_share=0.5)
        cls = ctl.admit(spec(priority=3))
        assert cls == "priority-3"
        ctl.admit(spec(priority=3))
        ctl.release(cls)
        ctl.admit(spec(priority=3))  # freed its own class's slot

    def test_cap_never_below_one(self):
        ctl = AdmissionController(2, max_class_share=0.1)
        assert ctl.class_cap == 1
        ctl.admit(spec())


class TestRetryAfter:
    def test_ema_divided_by_slots(self):
        ctl = AdmissionController(8, slots=4)
        ctl.note_service(2.0)
        assert ctl.retry_after_s == pytest.approx(0.5)
        # EMA folds new observations at alpha=0.3.
        ctl.note_service(4.0)
        assert ctl.retry_after_s == pytest.approx(
            (0.3 * 4.0 + 0.7 * 2.0) / 4
        )

    def test_floor(self):
        ctl = AdmissionController(8, slots=100)
        ctl.note_service(1e-6)
        assert ctl.retry_after_s == 0.05

    def test_nonpositive_observations_ignored(self):
        ctl = AdmissionController(8)
        ctl.note_service(0.0)
        ctl.note_service(-1.0)
        assert ctl.retry_after_s == 1.0  # the initial default

    def test_rejection_carries_current_hint(self):
        ctl = AdmissionController(1, max_class_share=1.0, slots=2)
        ctl.note_service(3.0)
        ctl.admit(spec())
        with pytest.raises(QueueFullError) as exc:
            ctl.admit(spec())
        assert exc.value.retry_after_s == pytest.approx(1.5)


class TestSnapshot:
    def test_snapshot_reflects_state(self):
        ctl = AdmissionController(4, max_class_share=0.5, slots=2)
        ctl.admit(spec(priority=1))
        ctl.admit(spec(priority=0))
        snap = ctl.snapshot()
        assert snap["capacity"] == 4
        assert snap["in_flight"] == 2
        assert snap["class_cap"] == 2
        assert snap["per_class"] == {"priority-0": 1, "priority-1": 1}
        assert snap["slots"] == 2
