"""Write-ahead journal framing: torn tails repair, splices refuse.

The contract under test: a crash can only ever produce a *torn tail*
(a partial final frame), and a torn tail at ANY byte boundary is
detected and truncated — never parsed, never fatal.  Corruption the
framing cannot explain by a crash (sequence gaps, digest-valid garbage)
is a typed :class:`~repro.errors.JournalError`.
"""

import pytest

from repro.errors import JournalError
from repro.gateway.journal import (
    JournalRecord,
    WriteAheadJournal,
    _frame,
)


def write_records(path, n=3):
    journal = WriteAheadJournal(path)
    records = [
        journal.append("accepted", job_id=f"job-{i}", payload=i * "x")
        for i in range(n)
    ]
    journal.close()
    return records


class TestAppendScanRoundTrip:
    def test_empty_and_missing_files_scan_clean(self, tmp_path):
        missing = WriteAheadJournal.scan(tmp_path / "nope.journal")
        assert missing.records == [] and missing.truncated_bytes == 0
        empty = tmp_path / "empty.journal"
        empty.touch()
        assert WriteAheadJournal.scan(empty).records == []

    def test_round_trip_preserves_kind_data_and_seq(self, tmp_path):
        path = tmp_path / "j"
        written = write_records(path, n=5)
        scan = WriteAheadJournal.scan(path)
        assert scan.truncated_bytes == 0
        assert [r.seq for r in scan.records] == [1, 2, 3, 4, 5]
        assert scan.records == written

    def test_sequence_continues_across_incarnations(self, tmp_path):
        path = tmp_path / "j"
        write_records(path, n=3)
        second = WriteAheadJournal(path)
        record = second.append("completed", job_id="late")
        assert record.seq == 4
        second.close()
        scan = WriteAheadJournal.scan(path)
        assert scan.last_seq == 4
        assert scan.by_kind("completed")[0].data["job_id"] == "late"

    def test_append_after_close_is_typed(self, tmp_path):
        journal = WriteAheadJournal(tmp_path / "j")
        journal.append("accepted", job_id="a")
        journal.close()
        with pytest.raises(JournalError, match="closed"):
            journal.append("accepted", job_id="b")


class TestTornTails:
    def test_torn_at_every_byte_boundary(self, tmp_path):
        """Truncating a valid journal after ANY byte yields exactly the
        whole frames before the cut — the strongest framing statement."""
        path = tmp_path / "j"
        write_records(path, n=3)
        data = path.read_bytes()
        frames = []
        offset = len(b"repro-journal v1\n")
        for record in WriteAheadJournal.scan(path).records:
            offset += len(_frame(record.to_payload()))
            frames.append(offset)
        for cut in range(len(data)):
            torn = tmp_path / "torn"
            torn.write_bytes(data[:cut])
            scan = WriteAheadJournal.scan(torn)
            whole = sum(1 for end in frames if end <= cut)
            assert len(scan.records) == whole, f"cut at byte {cut}"

    def test_repair_truncates_back_to_last_good_frame(self, tmp_path):
        path = tmp_path / "j"
        write_records(path, n=2)
        clean_size = path.stat().st_size
        with open(path, "ab") as fh:
            fh.write(b"00000099 deadbeef-not-a-real-frame")
        scan = WriteAheadJournal.scan(path, repair=True)
        assert len(scan.records) == 2
        assert scan.truncated_bytes > 0
        assert path.stat().st_size == clean_size
        # Appends continue cleanly after the repair.
        journal = WriteAheadJournal(path)
        assert journal.append("routed", job_id="next").seq == 3
        journal.close()

    def test_garbage_after_valid_frames_is_a_tail(self, tmp_path):
        path = tmp_path / "j"
        write_records(path, n=2)
        with open(path, "ab") as fh:
            fh.write(b"\x00\xffbinary junk")
        scan = WriteAheadJournal.scan(path)
        assert len(scan.records) == 2
        assert scan.truncated_bytes == 13

    def test_flipped_payload_byte_stops_the_scan(self, tmp_path):
        path = tmp_path / "j"
        write_records(path, n=1)
        data = bytearray(path.read_bytes())
        data[-2] ^= 0x01  # inside the only frame's payload
        path.write_bytes(bytes(data))
        scan = WriteAheadJournal.scan(path)
        assert scan.records == []
        assert scan.truncated_bytes > 0


class TestSpliceDamage:
    def test_wrong_header_is_typed(self, tmp_path):
        path = tmp_path / "j"
        path.write_bytes(b"not-a-journal v9\n" + b"x" * 40)
        with pytest.raises(JournalError, match="not a repro-journal"):
            WriteAheadJournal.scan(path)

    def test_sequence_gap_is_typed_not_repaired(self, tmp_path):
        path = tmp_path / "j"
        header = b"repro-journal v1\n"
        frames = b"".join(
            _frame(JournalRecord(seq, "accepted", {}).to_payload())
            for seq in (1, 3)  # seq 2 spliced out
        )
        path.write_bytes(header + frames)
        with pytest.raises(JournalError, match="discontinuity"):
            WriteAheadJournal.scan(path)

    def test_digest_valid_unparsable_payload_is_typed(self, tmp_path):
        path = tmp_path / "j"
        path.write_bytes(
            b"repro-journal v1\n" + _frame(b"this is not json")
        )
        with pytest.raises(JournalError, match="unparsable"):
            WriteAheadJournal.scan(path)


class TestOnAppendHook:
    def test_hook_fires_after_the_record_is_durable(self, tmp_path):
        path = tmp_path / "j"
        journal = WriteAheadJournal(path)
        seen = []

        def hook(record):
            # The record must already be scannable from disk when the
            # hook (= the chaos kill point) observes it.
            scan = WriteAheadJournal.scan(path)
            seen.append((record.seq, scan.last_seq))

        journal.on_append = hook
        journal.append("accepted", job_id="a")
        journal.append("routed", job_id="a")
        journal.close()
        assert seen == [(1, 1), (2, 2)]

    def test_hook_exception_leaves_the_record_on_disk(self, tmp_path):
        path = tmp_path / "j"
        journal = WriteAheadJournal(path)

        def die(record):
            raise RuntimeError("killed")

        journal.on_append = die
        with pytest.raises(RuntimeError):
            journal.append("accepted", job_id="a")
        journal.close()
        assert WriteAheadJournal.scan(path).last_seq == 1
