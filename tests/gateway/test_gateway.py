"""Gateway end to end: routing, caching, supervision, determinism.

Synthetic-service tests cover the orchestration mechanics at speed; the
real-worker tests pin the tier's headline guarantee — results through
the gateway are byte-identical to direct simulation, through cache hits
and mid-job shard eviction alike — on tiny pin-cell jobs.
"""

import asyncio

import pytest

from repro.data.library import build_library
from repro.errors import JobError, QueueFullError
from repro.gateway import Gateway, ResultCache, SyntheticService
from repro.serve.jobs import JobResult, JobSpec
from repro.transport.simulation import Simulation

TINY = {"n_particles": 24, "n_inactive": 0, "n_active": 2,
        "mode": "event", "pincell": True}


def tiny_spec(job_id, seed=5, temperature=None, **kwargs):
    return JobSpec(job_id=job_id, settings=dict(TINY, seed=seed),
                   library_temperature=temperature, **kwargs)


def synth_specs(prefix, n, distinct=4):
    return [
        JobSpec(job_id=f"{prefix}{i:03d}",
                settings=dict(TINY, seed=i % distinct))
        for i in range(n)
    ]


def direct_payload(spec):
    """The bit-identical reference: the same spec run without a service."""
    library = build_library(spec.model, spec.library_config())
    result = Simulation(library, spec.to_settings()).run()
    return JobResult.from_simulation(spec, result).payload_json()


class TestSyntheticOrchestration:
    def test_run_resolves_everything_in_order(self):
        specs = synth_specs("a", 40)
        gw = Gateway(n_shards=3, workers_per_shard=2,
                     service_factory=SyntheticService)
        with gw:
            results = gw.run(specs, deadline_s=30)
        assert [r.job_id for r in results] == [s.job_id for s in specs]
        assert all(r.status == "done" for r in results)
        assert gw.unresolved() == 0

    def test_duplicate_job_id_rejected(self):
        gw = Gateway(n_shards=1, service_factory=SyntheticService)
        gw.submit(tiny_spec("dup"))
        with pytest.raises(JobError, match="duplicate"):
            gw.submit(tiny_spec("dup"))
        gw.shutdown()

    def test_in_run_cache_hits_for_repeat_physics(self):
        """40 jobs over 4 physics identities: the cache absorbs repeats."""
        specs = synth_specs("b", 40, distinct=4)
        gw = Gateway(n_shards=2, service_factory=SyntheticService)
        with gw:
            results = gw.run(specs, deadline_s=30)
        assert len(results) == 40
        assert gw.counters["cache_hits"] >= 40 - 2 * 4
        by_key = {}
        for s, r in zip(specs, results):
            by_key.setdefault(s.cache_key(), set()).add(r.payload_json())
        # Every repeat of a physics identity got identical bytes.
        assert all(len(payloads) == 1 for payloads in by_key.values())

    def test_resubmission_is_all_cache_hits_and_byte_identical(self):
        shared = ResultCache()
        cold = Gateway(n_shards=2, service_factory=SyntheticService,
                       result_cache=shared)
        with cold:
            first = cold.run(synth_specs("c", 16), deadline_s=30)
        warm = Gateway(n_shards=2, service_factory=SyntheticService,
                       result_cache=shared)
        with warm:
            second = warm.run(synth_specs("d", 16), deadline_s=30)
        assert warm.counters["cache_hits"] == 16
        # No shard saw a single job on the warm pass.
        agg = warm.metrics_summary()["aggregate"]
        assert agg["jobs_completed"] == 0
        assert sorted(r.payload_json() for r in first) == sorted(
            r.payload_json() for r in second
        )

    def test_fingerprint_affinity_one_shard_per_library(self):
        specs = [
            JobSpec(job_id=f"t{i}", settings=dict(TINY, seed=1),
                    library_temperature=float(300 + 50 * (i % 4)))
            for i in range(16)
        ]
        gw = Gateway(n_shards=3, service_factory=SyntheticService)
        owners = {}
        for s in specs:
            fp = s.library_fingerprint()
            shard = gw.ring.shard_for(fp)
            owners.setdefault(fp, set()).add(shard)
        assert all(len(shards) == 1 for shards in owners.values())
        with gw:
            gw.run(specs, deadline_s=30)
        # Each fingerprint was built exactly once, tier-wide.
        agg = gw.metrics_summary()["aggregate"]
        assert agg["library_builds"] == len(owners)

    def test_admission_backpressure_is_typed_and_recoverable(self):
        gw = Gateway(n_shards=1, capacity=2, max_class_share=1.0,
                     service_factory=SyntheticService)
        gw.submit(tiny_spec("p1", seed=1))
        gw.submit(tiny_spec("p2", seed=2))
        with pytest.raises(QueueFullError) as exc:
            gw.submit(tiny_spec("p3", seed=3))
        assert exc.value.retry_after_s > 0
        with gw:
            gw.drain(deadline_s=30)
            gw.submit(tiny_spec("p3", seed=3))  # capacity freed
            gw.drain(deadline_s=30)
        assert len(gw.results) == 3

    def test_class_fairness_reserves_headroom(self):
        gw = Gateway(n_shards=1, capacity=4, max_class_share=0.5,
                     service_factory=SyntheticService)
        gw.submit(tiny_spec("h1", seed=1, priority=9))
        gw.submit(tiny_spec("h2", seed=2, priority=9))
        with pytest.raises(QueueFullError, match="fairness cap"):
            gw.submit(tiny_spec("h3", seed=3, priority=9))
        gw.submit(tiny_spec("l1", seed=4, priority=0))
        with gw:
            gw.drain(deadline_s=30)
        assert len(gw.results) == 3

    def test_stream_drives_a_full_drain_politely(self):
        """The async feeder rides out a capacity far below the job count."""
        specs = synth_specs("s", 30, distinct=30)
        gw = Gateway(n_shards=2, capacity=4, max_class_share=1.0,
                     service_factory=SyntheticService)

        async def collect():
            events = []
            async for event in gw.stream(specs, deadline_s=30):
                events.append(event)
            return events

        with gw:
            events = asyncio.run(collect())
        done = [e for e in events if e["kind"] == "done"]
        assert len(done) == 30
        assert {e["job_id"] for e in done} == {s.job_id for s in specs}
        assert any(e["kind"] == "progress" for e in events)

    def test_min_one_shard_floor(self):
        gw = Gateway(n_shards=1, service_factory=SyntheticService)
        assert gw.quarantine_shard(0) is False
        assert gw.counters["quarantines_skipped"] == 1
        assert gw.quarantined == set()

    def test_quarantine_requeues_unstarted_work(self):
        """Jobs parked on a quarantined shard re-route and complete."""
        specs = synth_specs("q", 8, distinct=8)
        gw = Gateway(n_shards=2, service_factory=SyntheticService)
        for s in specs:
            gw.submit(s)  # routed but shards not started: all still parked
        victim = next(iter({gw._job_shard[s.job_id] for s in specs}))
        assert gw.quarantine_shard(victim) is True
        assert gw.counters["requeued"] > 0
        with gw:
            gw.drain(deadline_s=30)
        assert all(
            gw.results[s.job_id].status == "done" for s in specs
        )
        assert gw.metrics_summary()["gateway"]["health"][victim][
            "status"] == "dead"


class TestRealWorkers:
    def test_payloads_match_direct_simulation(self, tmp_path):
        """The headline guarantee, plus overhead and progress accounting."""
        spec = tiny_spec("real1", seed=7)
        gw = Gateway(n_shards=1, workers_per_shard=1,
                     cache_dir=str(tmp_path / "libs"))

        async def collect():
            events = []
            async for event in gw.stream([spec], deadline_s=90):
                events.append(event)
            return events

        with gw:
            events = asyncio.run(collect())
        result = gw.results["real1"]
        assert result.status == "done"
        assert result.payload_json() == direct_payload(spec)
        progress = [e for e in events if e["kind"] == "progress"]
        assert len(progress) == TINY["n_inactive"] + TINY["n_active"]
        assert all(e["job_id"] == "real1" for e in progress)
        summary = gw.metrics_summary()
        assert summary["aggregate"]["dispatch_overhead_fraction"] < 0.05
        assert summary["gateway"]["health"][0]["batches"] == len(progress)

    def test_cache_hit_is_byte_identical_to_recomputation(self, tmp_path):
        """Identical physics twice in one drain: second is a cache hit
        whose payload equals the computed one byte for byte."""
        first = tiny_spec("cold", seed=11)
        second = tiny_spec("warm", seed=11)  # same physics, new identity
        gw = Gateway(n_shards=1, cache_dir=str(tmp_path / "libs"))
        with gw:
            gw.run([first], deadline_s=90)
            gw.run([second], deadline_s=90)
        cold, warm = gw.results["cold"], gw.results["warm"]
        assert warm.library_source == "result-cache"
        assert gw.counters["cache_hits"] == 1
        assert warm.payload_json() == cold.payload_json()
        assert warm.payload_json() == direct_payload(second)
        # The shard only ever saw the first job.
        assert gw.metrics_summary()["aggregate"]["jobs_completed"] == 1

    def test_shard_killed_mid_job_requeues_byte_identically(self, tmp_path):
        """Evict a shard while its worker is mid-transport: the job lands
        on the survivor and produces the exact same payload."""
        spec = JobSpec(job_id="victim",
                       settings=dict(TINY, seed=13, n_active=6),
                       library_temperature=450.0)
        gw = Gateway(n_shards=2, cache_dir=str(tmp_path / "libs"))
        owner = gw.ring.shard_for(spec.library_fingerprint())
        survivor = 1 - owner
        with gw:
            gw.submit(spec)
            # Wait until the worker is demonstrably mid-job (a transport
            # batch has completed), then kill the shard under it.
            saw_progress = False
            for _ in range(1200):
                for event in gw.poll(timeout=0.05):
                    if (event["kind"] == "progress"
                            and event["job_id"] == "victim"):
                        saw_progress = True
                if saw_progress:
                    break
            assert saw_progress, "job never started on the owner shard"
            assert gw.quarantine_shard(owner) is True
            gw.drain(deadline_s=120)
        result = gw.results["victim"]
        assert result.status == "done"
        assert gw.counters["requeued"] == 1
        assert gw._job_shard["victim"] == survivor
        assert result.payload_json() == direct_payload(spec)
