"""Deadline (clocked) and Budget (charged) primitives."""

import pytest

from repro.errors import DeadlineExceededError, SupervisionError
from repro.supervise import Budget, Deadline


class FakeClock:
    """An injectable monotonic clock the test advances by hand."""

    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestDeadline:
    def test_elapsed_and_remaining_follow_the_clock(self):
        clock = FakeClock()
        d = Deadline(10.0, clock=clock)
        clock.advance(3.0)
        assert d.elapsed() == pytest.approx(3.0)
        assert d.remaining() == pytest.approx(7.0)
        assert not d.expired()

    def test_check_raises_typed_error_with_allowance_and_overrun(self):
        clock = FakeClock()
        d = Deadline(1.0, label="batch barrier", clock=clock)
        d.check()  # within allowance: no-op
        clock.advance(2.5)
        assert d.expired()
        with pytest.raises(DeadlineExceededError) as err:
            d.check("waiting on rank 2")
        assert err.value.deadline_s == 1.0
        assert err.value.elapsed_s == pytest.approx(2.5)
        assert "batch barrier" in str(err.value)
        assert "waiting on rank 2" in str(err.value)

    def test_remaining_clamps_at_zero(self):
        clock = FakeClock()
        d = Deadline(1.0, clock=clock)
        clock.advance(5.0)
        assert d.remaining() == 0.0

    def test_negative_allowance_rejected(self):
        with pytest.raises(SupervisionError):
            Deadline(-0.1)

    def test_deadline_is_an_error_subclass_of_supervision(self):
        assert issubclass(DeadlineExceededError, SupervisionError)


class TestBudget:
    def test_spend_accumulates_and_reports_remaining(self):
        b = Budget(1.0)
        b.spend(0.25)
        b.spend(0.5)
        assert b.spent == pytest.approx(0.75)
        assert b.remaining == pytest.approx(0.25)
        assert not b.exhausted

    def test_crossing_charge_is_included_and_typed(self):
        b = Budget(1.0, label="comm budget")
        b.spend(0.9)
        with pytest.raises(DeadlineExceededError) as err:
            b.spend(0.3, "allreduce_sum")
        # The charge that crossed the line is in the total the error reports.
        assert b.spent == pytest.approx(1.2)
        assert b.exhausted
        assert b.remaining == 0.0
        assert err.value.deadline_s == 1.0
        assert err.value.elapsed_s == pytest.approx(1.2)
        assert "allreduce_sum" in str(err.value)

    def test_no_clock_means_replay_deterministic(self):
        """Two budgets fed the same charges fail at the same charge."""
        charges = [0.4, 0.4, 0.4]

        def drain():
            b = Budget(1.0)
            for i, c in enumerate(charges):
                try:
                    b.spend(c)
                except DeadlineExceededError:
                    return i, b.spent
            return None, b.spent

        assert drain() == drain() == (2, pytest.approx(1.2))

    def test_validation(self):
        with pytest.raises(SupervisionError):
            Budget(-1.0)
        with pytest.raises(SupervisionError):
            Budget(1.0).spend(-0.5)
