"""CircuitBreaker: consecutive-failure counting and open circuits."""

import pytest

from repro.errors import SupervisionError
from repro.supervise import CircuitBreaker


class TestTripping:
    def test_trips_at_threshold(self):
        b = CircuitBreaker(threshold=3)
        assert b.record_failure("job") == 1
        assert b.record_failure("job") == 2
        assert not b.is_open("job")
        assert b.record_failure("job") == 3
        assert b.is_open("job")
        assert not b.allow("job")

    def test_keys_are_independent(self):
        b = CircuitBreaker(threshold=2)
        b.record_failure("a")
        b.record_failure("a")
        b.record_failure("b")
        assert b.is_open("a")
        assert not b.is_open("b")
        assert b.open_keys() == ["a"]

    def test_success_resets_a_closed_streak(self):
        b = CircuitBreaker(threshold=3)
        b.record_failure("flaky")
        b.record_failure("flaky")
        b.record_success("flaky")
        assert b.failures("flaky") == 0
        # The streak must be *consecutive* to trip.
        b.record_failure("flaky")
        assert not b.is_open("flaky")

    def test_open_circuit_never_heals(self):
        b = CircuitBreaker(threshold=1)
        b.record_failure("poison")
        b.record_success("poison")
        assert b.is_open("poison")
        assert b.failures("poison") == 1

    def test_state_is_a_pure_function_of_the_call_sequence(self):
        calls = [("f", "x"), ("f", "x"), ("s", "x"), ("f", "x"),
                 ("f", "x"), ("f", "y")]

        def replay():
            b = CircuitBreaker(threshold=2)
            for kind, key in calls:
                (b.record_failure if kind == "f" else b.record_success)(key)
            return b.as_dict()

        assert replay() == replay()

    def test_threshold_validation(self):
        with pytest.raises(SupervisionError):
            CircuitBreaker(threshold=0)


class TestExport:
    def test_as_dict_carries_every_tracked_circuit(self):
        b = CircuitBreaker(threshold=2)
        b.record_failure("bad")
        b.record_failure("bad")
        b.record_failure("meh")
        state = b.as_dict()
        assert state["threshold"] == 2
        assert state["open"] == ["bad"]
        assert state["keys"]["bad"] == {
            "consecutive_failures": 2, "state": "open",
        }
        assert state["keys"]["meh"]["state"] == "closed"

    def test_as_dict_is_json_serializable(self):
        import json

        b = CircuitBreaker()
        b.record_failure("j")
        json.dumps(b.as_dict())
