"""Graceful degradation acceptance: eviction mid-run stays on-contract.

The PR's central claim: kill a symmetric rank at batch *k* through the
deterministic fault plan and the supervised run completes — the victim's
global-id slice is redistributed across survivors and subsequent batches
split over the surviving topology — with fission banks and work counters
**bit-identical** to a fault-free run (RNG streams are keyed by global
particle id alone; the canonical ``(parent, seq)`` bank order is
partition-invariant).  Tally floats carry the repo-wide summation-order
tolerance (rel 1e-12), since per-rank partial sums merge in a different
association.
"""

import numpy as np
import pytest

from repro.cluster.distributed import DistributedSimulation
from repro.data.unionized import UnionizedGrid
from repro.errors import DeadlineExceededError, DegradedRunError
from repro.execution import (
    ExecutionContext,
    NativeScheduler,
    SymmetricScheduler,
)
from repro.resilience import FaultKind, FaultPlan
from repro.supervise import SupervisionPolicy, Supervisor
from repro.transport import Settings, Simulation
from repro.transport.context import TransportContext

#: Straggler eviction off (wall-clock noise on tiny slices must not evict);
#: these tests exercise *crash* eviction, which is deterministic.
LENIENT = SupervisionPolicy(straggler_factor=1.0e9)


@pytest.fixture(scope="module")
def union(small_library):
    return UnionizedGrid(small_library)


def source(n, seed=5):
    rng = np.random.default_rng(seed)
    pos = np.column_stack(
        [
            rng.uniform(-0.3, 0.3, n),
            rng.uniform(-0.3, 0.3, n),
            rng.uniform(-150, 150, n),
        ]
    )
    return pos, np.full(n, 1.0)


def run_batches(
    library, union, scheduler, *, n_batches=3, n=48,
    supervisor=None, fault_plan=None, backend="event",
):
    """Run ``n_batches`` generations, each sourced from the previous bank
    (identical inputs across runs as long as banks stay bit-identical)."""
    ctx = TransportContext.create(
        library, pincell=True, union=union, master_seed=7
    )
    ec = ExecutionContext.create(
        transport=ctx, backend=backend,
        supervisor=supervisor, fault_plan=fault_plan,
    )
    tallies = ec.new_tallies()
    pos, en = source(n)
    banks = []
    for _ in range(n_batches):
        bank = scheduler.run_generation(ec, pos, en, tallies, 1.0, 0)
        banks.append(bank)
        assert len(bank) > 0
        pos, en = bank.positions.copy(), bank.energies.copy()
    return ctx, tallies, banks


def assert_on_contract(ref, degraded):
    """Banks + counters exact, tallies to summation-order tolerance."""
    (c1, t1, b1), (c2, t2, b2) = ref, degraded
    assert c1.counters.as_dict() == c2.counters.as_dict()
    for bank1, bank2 in zip(b1, b2):
        assert len(bank1) == len(bank2)
        np.testing.assert_array_equal(bank1.positions, bank2.positions)
        np.testing.assert_array_equal(bank1.energies, bank2.energies)
    assert t2.collision == pytest.approx(t1.collision, rel=1e-12)
    assert t2.absorption == pytest.approx(t1.absorption, rel=1e-12)
    assert t2.track_length == pytest.approx(t1.track_length, rel=1e-12)
    assert t2.n_collisions == t1.n_collisions
    assert t2.n_leaks == t1.n_leaks


class TestSymmetricEviction:
    """The acceptance test: rank 1 of 3 dies at batch 1, mid-run."""

    @pytest.mark.parametrize("backend", ["history", "event"])
    def test_degraded_run_bit_identical_to_fault_free(
        self, small_library, union, backend
    ):
        plan = FaultPlan.single(FaultKind.RANK_CRASH, batch=1, rank=1)
        sup = Supervisor(n_ranks=3, policy=LENIENT)
        degraded = run_batches(
            small_library, union, SymmetricScheduler(n_ranks=3),
            supervisor=sup, fault_plan=plan, backend=backend,
        )
        # Reference 1: the unsplit serial run of the same batches.
        serial = run_batches(
            small_library, union, NativeScheduler(), backend=backend
        )
        assert_on_contract(serial, degraded)
        # Reference 2: a fault-free run of the surviving topology.
        surviving = run_batches(
            small_library, union, SymmetricScheduler(n_ranks=2),
            backend=backend,
        )
        assert_on_contract(surviving, degraded)

    def test_eviction_is_recorded_and_topology_shrinks(
        self, small_library, union
    ):
        plan = FaultPlan.single(FaultKind.RANK_CRASH, batch=1, rank=1)
        sup = Supervisor(n_ranks=3, policy=LENIENT)
        run_batches(
            small_library, union, SymmetricScheduler(n_ranks=3),
            supervisor=sup, fault_plan=plan,
        )
        assert sup.alive == [0, 2]
        assert sup.evicted == [1]
        report = sup.report()
        assert report["batches"] == 3
        assert report["events"] == [
            {"batch": 1, "rank": 1, "action": "evict", "reason": "crash"}
        ]
        assert report["health"][1]["status"] == "dead"
        # Ranks 0 and 2 have observations for every batch they survived.
        assert report["health"][0]["batches"] == 3
        assert report["health"][2]["batches"] == 3

    def test_supervision_without_faults_changes_nothing(
        self, small_library, union
    ):
        """A supervised fault-free run is the fault-free run: same split,
        same merge order, bit-identical output."""
        sup = Supervisor(n_ranks=3, policy=LENIENT)
        supervised = run_batches(
            small_library, union, SymmetricScheduler(n_ranks=3),
            supervisor=sup,
        )
        plain = run_batches(
            small_library, union, SymmetricScheduler(n_ranks=3)
        )
        assert_on_contract(plain, supervised)
        assert sup.evicted == []
        assert sup.report()["batches"] == 3

    def test_crash_below_rank_floor_raises_degraded(
        self, small_library, union
    ):
        plan = FaultPlan.single(FaultKind.RANK_CRASH, batch=0, rank=0)
        sup = Supervisor(
            n_ranks=2,
            policy=SupervisionPolicy(
                straggler_factor=1.0e9, min_ranks=2
            ),
        )
        with pytest.raises(DegradedRunError, match="policy floor"):
            run_batches(
                small_library, union, SymmetricScheduler(n_ranks=2),
                supervisor=sup, fault_plan=plan,
            )


class TestNativeSupervision:
    def test_native_scheduler_feeds_observations(
        self, small_library, union
    ):
        sup = Supervisor(n_ranks=1, policy=LENIENT)
        supervised = run_batches(
            small_library, union, NativeScheduler(), supervisor=sup
        )
        plain = run_batches(small_library, union, NativeScheduler())
        assert_on_contract(plain, supervised)
        report = sup.report()
        assert report["batches"] == 3
        assert report["health"][0]["batches"] == 3
        assert report["health"][0]["rate"] > 0


class TestSimulationHook:
    BASE = dict(n_particles=32, n_inactive=0, n_active=3, pincell=True,
                seed=11, mode="event")

    def test_on_batch_observes_every_batch(self, small_library):
        sup = Supervisor(n_ranks=1, policy=LENIENT)
        observed = Simulation(small_library, Settings(**self.BASE)).run(
            on_batch=sup.batch_callback()
        )
        plain = Simulation(small_library, Settings(**self.BASE)).run()
        assert sup.report()["batches"] == 3
        assert sup.monitor.rate(0) > 0
        # The observer is passive: trajectories are untouched.
        assert observed.statistics.k_collision == plain.statistics.k_collision
        assert observed.counters.as_dict() == plain.counters.as_dict()

    def test_batch_deadline_aborts_with_typed_error(self, small_library):
        sup = Supervisor(
            n_ranks=1,
            policy=SupervisionPolicy(batch_deadline_s=1.0e-9),
        )
        with pytest.raises(DeadlineExceededError) as err:
            Simulation(small_library, Settings(**self.BASE)).run(
                on_batch=sup.batch_callback()
            )
        assert err.value.deadline_s == 1.0e-9
        assert err.value.elapsed_s > 0


class TestDistributedSupervision:
    SETTINGS = Settings(
        n_particles=90, n_inactive=1, n_active=2, pincell=True,
        mode="event", seed=17,
    )

    def test_supervised_crash_recovery_matches_serial(self, small_library):
        serial = Simulation(small_library, self.SETTINGS).run()
        plan = FaultPlan.single(FaultKind.RANK_CRASH, batch=1, rank=1)
        sup = Supervisor(n_ranks=3, policy=LENIENT)
        dist = DistributedSimulation(
            small_library, self.SETTINGS, 3,
            fault_plan=plan, supervisor=sup,
        ).run()
        np.testing.assert_allclose(
            dist.statistics.k_collision,
            serial.statistics.k_collision,
            rtol=1e-12,
        )
        assert dist.failed_ranks == [1]
        assert dist.surviving_ranks == 2
        assert sup.evicted == [1]
        assert sup.retries == 1
        report = sup.report()
        assert report["events"][0]["reason"] == "crash"
        assert report["events"][0]["batch"] == 1

    def test_comm_budget_exhaustion_is_typed(self, small_library):
        """A run whose modelled communication exceeds its allowance fails
        at the collective that crossed the line, not with a hang."""
        sup = Supervisor(
            n_ranks=3,
            policy=SupervisionPolicy(
                straggler_factor=1.0e9, comm_budget_s=1.0e-9
            ),
        )
        with pytest.raises(DeadlineExceededError) as err:
            DistributedSimulation(
                small_library, self.SETTINGS, 3, supervisor=sup
            ).run()
        assert "communication budget" in str(err.value)
        assert sup.comm_budget.exhausted

    def test_generous_budget_charges_but_passes(self, small_library):
        sup = Supervisor(
            n_ranks=2,
            policy=SupervisionPolicy(
                straggler_factor=1.0e9, comm_budget_s=10.0
            ),
        )
        dist = DistributedSimulation(
            small_library, self.SETTINGS, 2, supervisor=sup
        ).run()
        assert 0 < sup.comm_budget.spent < 10.0
        assert sup.comm_budget.spent == pytest.approx(dist.comm_time)
