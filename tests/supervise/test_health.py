"""HealthMonitor: rate smoothing, classification, heartbeats, streaks."""

import pytest

from repro.errors import SupervisionError
from repro.supervise import HealthMonitor, RankStatus


class TestRates:
    def test_first_record_sets_rate(self):
        m = HealthMonitor(2)
        assert m.rate(0) is None
        assert m.record(0, 0, seconds=2.0, n_particles=100) == 50.0
        assert m.rate(0) == 50.0

    def test_rate_is_exponentially_smoothed(self):
        m = HealthMonitor(1, smoothing=0.5)
        m.record(0, 0, 1.0, 100)  # 100 n/s
        rate = m.record(0, 1, 1.0, 200)  # measured 200 n/s
        assert rate == pytest.approx(150.0)

    def test_identical_observations_converge(self):
        m = HealthMonitor(1)
        for batch in range(10):
            m.record(0, batch, 1.0, 64)
        assert m.rate(0) == pytest.approx(64.0)

    def test_negative_observation_rejected(self):
        m = HealthMonitor(1)
        with pytest.raises(SupervisionError):
            m.record(0, 0, -1.0, 10)
        with pytest.raises(SupervisionError):
            m.record(0, 0, 1.0, -10)

    def test_unknown_rank_rejected(self):
        with pytest.raises(SupervisionError, match="unknown rank"):
            HealthMonitor(2).record(5, 0, 1.0, 10)


class TestClassification:
    def test_all_healthy_when_rates_comparable(self):
        m = HealthMonitor(3, straggler_factor=4.0)
        for rank, rate in enumerate((100, 80, 120)):
            m.record(rank, 0, 1.0, rate)
        assert all(
            s is RankStatus.HEALTHY for s in m.statuses().values()
        )

    def test_straggler_is_relative_to_the_fastest_rank(self):
        """Max-based comparison works even with only two ranks (a median
        would mask the straggler in a pair)."""
        m = HealthMonitor(2, straggler_factor=4.0)
        m.record(0, 0, 1.0, 1000)
        m.record(1, 0, 1.0, 100)  # 10x slower than the best
        assert m.classify(0) is RankStatus.HEALTHY
        assert m.classify(1) is RankStatus.STRAGGLER

    def test_factor_boundary_is_strict(self):
        m = HealthMonitor(2, straggler_factor=4.0)
        m.record(0, 0, 1.0, 400)
        m.record(1, 0, 1.0, 100)  # exactly 4x: not yet a straggler
        assert m.classify(1) is RankStatus.HEALTHY

    def test_mark_dead_wins_over_everything(self):
        m = HealthMonitor(2)
        m.record(0, 0, 1.0, 100)
        m.mark_dead(0)
        assert m.classify(0) is RankStatus.DEAD

    def test_dead_rank_excluded_from_best_rate(self):
        m = HealthMonitor(2, straggler_factor=2.0)
        m.record(0, 0, 1.0, 1000)
        m.record(1, 0, 1.0, 100)
        m.mark_dead(0)
        # With the fast rank dead, the survivor is the best rank.
        assert m.classify(1) is RankStatus.HEALTHY

    def test_validation(self):
        with pytest.raises(SupervisionError):
            HealthMonitor(0)
        with pytest.raises(SupervisionError):
            HealthMonitor(2, straggler_factor=1.0)
        with pytest.raises(SupervisionError):
            HealthMonitor(2, smoothing=0.0)


class TestHeartbeats:
    def test_stale_heartbeat_classifies_dead(self):
        m = HealthMonitor(2, heartbeat_timeout_s=5.0)
        m.heartbeat(0, now=10.0)
        m.heartbeat(1, now=14.0)
        statuses = m.statuses(now=16.0)
        assert statuses[0] is RankStatus.DEAD  # 6s silent
        assert statuses[1] is RankStatus.HEALTHY  # 2s silent

    def test_no_timeout_means_no_heartbeat_deaths(self):
        m = HealthMonitor(1)
        m.heartbeat(0, now=0.0)
        assert m.classify(0, now=1.0e9) is RankStatus.HEALTHY


class TestStraggleStreaks:
    def test_consecutive_straggles_accumulate_and_reset(self):
        m = HealthMonitor(2, straggler_factor=2.0)
        m.record(0, 0, 1.0, 1000)
        m.record(1, 0, 1.0, 100)
        assert m.update_straggles() == {0: 0, 1: 1}
        m.record(0, 1, 1.0, 1000)
        m.record(1, 1, 1.0, 100)
        assert m.update_straggles() == {0: 0, 1: 2}
        # Rank 1 recovers: a healthy batch resets the streak.
        for batch in range(2, 8):
            m.record(0, batch, 1.0, 1000)
            m.record(1, batch, 1.0, 1000)
        assert m.update_straggles()[1] == 0

    def test_dead_ranks_drop_out_of_streak_accounting(self):
        m = HealthMonitor(2, straggler_factor=2.0)
        m.record(0, 0, 1.0, 1000)
        m.record(1, 0, 1.0, 100)
        m.mark_dead(1)
        assert 1 not in m.update_straggles()


class TestSummary:
    def test_summary_is_a_complete_per_rank_document(self):
        m = HealthMonitor(2, straggler_factor=2.0)
        m.record(0, 0, 1.0, 1000)
        m.record(1, 0, 1.0, 100)
        doc = m.summary()
        assert sorted(doc) == [0, 1]
        assert doc[0]["status"] == "healthy"
        assert doc[1]["status"] == "straggler"
        assert doc[0]["rate"] == 1000.0
        assert doc[0]["batches"] == 1
        assert doc[0]["last_batch"] == 0
