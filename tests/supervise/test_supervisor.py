"""Supervisor: policy validation, eviction, deadlines, and the report."""

import pytest

from repro.errors import (
    DeadlineExceededError,
    DegradedRunError,
    SupervisionError,
)
from repro.supervise import SupervisionPolicy, Supervisor


class TestPolicy:
    def test_defaults_are_valid(self):
        SupervisionPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"evict_after": 0},
            {"min_ranks": 0},
            {"batch_deadline_s": 0.0},
            {"heartbeat_timeout_s": -1.0},
            {"comm_budget_s": 0.0},
        ],
    )
    def test_invalid_thresholds_rejected(self, kwargs):
        with pytest.raises(SupervisionError):
            SupervisionPolicy(**kwargs)


class TestEviction:
    def test_evict_removes_rank_and_records_event(self):
        sup = Supervisor(n_ranks=3)
        sup.begin_batch()
        survivors = sup.evict(1, reason="crash")
        assert survivors == [0, 2]
        assert sup.alive == [0, 2]
        assert sup.evicted == [1]
        (event,) = sup.events
        assert (event.batch, event.rank, event.action, event.reason) == (
            0, 1, "evict", "crash",
        )

    def test_evicting_unknown_rank_is_a_usage_error(self):
        sup = Supervisor(n_ranks=2)
        with pytest.raises(SupervisionError, match="not in alive set"):
            sup.evict(7)

    def test_eviction_below_floor_raises_degraded(self):
        sup = Supervisor(
            n_ranks=2, policy=SupervisionPolicy(min_ranks=2)
        )
        with pytest.raises(DegradedRunError, match="policy floor"):
            sup.evict(0, reason="crash")
        # The failed eviction must not have mutated the topology.
        assert sup.alive == [0, 1]
        assert sup.evicted == []

    def test_last_rank_cannot_be_evicted(self):
        sup = Supervisor(n_ranks=1)
        with pytest.raises(DegradedRunError):
            sup.evict(0)


class TestStragglerEviction:
    def test_chronic_straggler_evicted_after_streak(self):
        policy = SupervisionPolicy(straggler_factor=2.0, evict_after=2)
        sup = Supervisor(n_ranks=2, policy=policy)
        for batch in range(2):
            sup.begin_batch()
            sup.observe_batch(0, batch, 1.0, 1000)
            sup.observe_batch(1, batch, 1.0, 100)
            evicted = sup.finish_batch(batch)
        assert evicted == [1]
        assert sup.alive == [0]
        assert sup.events[-1].reason == "straggler"

    def test_one_bad_batch_is_forgiven(self):
        policy = SupervisionPolicy(straggler_factor=2.0, evict_after=2)
        sup = Supervisor(n_ranks=2, policy=policy)
        sup.begin_batch()
        sup.observe_batch(0, 0, 1.0, 1000)
        sup.observe_batch(1, 0, 1.0, 100)
        assert sup.finish_batch(0) == []
        # Recovery: many healthy batches wash the smoothed rate back up.
        for batch in range(1, 8):
            sup.begin_batch()
            sup.observe_batch(0, batch, 1.0, 1000)
            sup.observe_batch(1, batch, 1.0, 1000)
            assert sup.finish_batch(batch) == []
        assert sup.alive == [0, 1]


class TestHeartbeats:
    def test_silent_rank_evicted_on_heartbeat_timeout(self):
        policy = SupervisionPolicy(heartbeat_timeout_s=5.0)
        sup = Supervisor(n_ranks=2, policy=policy)
        sup.monitor.heartbeat(0, now=100.0)
        sup.monitor.heartbeat(1, now=90.0)
        assert sup.check_heartbeats(now=100.0) == [1]
        assert sup.alive == [0]
        assert sup.events[-1].reason == "heartbeat"


class TestDeadlines:
    def test_enforce_deadline_raises_typed_error(self):
        policy = SupervisionPolicy(batch_deadline_s=1.0)
        sup = Supervisor(n_ranks=1, policy=policy)
        sup.enforce_deadline(0.5)  # under: no-op
        with pytest.raises(DeadlineExceededError) as err:
            sup.enforce_deadline(2.0, what="batch 3")
        assert err.value.deadline_s == 1.0
        assert err.value.elapsed_s == 2.0
        assert "batch 3" in str(err.value)

    def test_no_deadline_means_no_enforcement(self):
        Supervisor(n_ranks=1).enforce_deadline(1.0e9)

    def test_batch_callback_observes_and_enforces(self):
        policy = SupervisionPolicy(batch_deadline_s=1.0)
        sup = Supervisor(n_ranks=1, policy=policy)
        on_batch = sup.batch_callback()
        on_batch(0, 0.1, 50)
        on_batch(1, 0.2, 50)
        assert sup.batch == 1
        assert sup.monitor.rate(0) is not None
        with pytest.raises(DeadlineExceededError):
            on_batch(2, 5.0, 50)


class TestCommBudget:
    def test_policy_budget_materializes_on_the_supervisor(self):
        sup = Supervisor(
            n_ranks=2, policy=SupervisionPolicy(comm_budget_s=0.5)
        )
        assert sup.comm_budget is not None
        sup.comm_budget.spend(0.2, "allreduce_sum")
        assert sup.report()["comm_budget_spent_s"] == pytest.approx(0.2)

    def test_no_budget_by_default(self):
        sup = Supervisor(n_ranks=2)
        assert sup.comm_budget is None
        assert sup.report()["comm_budget_spent_s"] is None


class TestReport:
    def test_report_is_a_complete_run_document(self):
        sup = Supervisor(n_ranks=3)
        for batch in range(2):
            sup.begin_batch()
            for rank in range(3):
                sup.observe_batch(rank, batch, 1.0, 100)
            sup.finish_batch(batch)
        sup.evict(2, reason="crash")
        sup.note_retry()
        report = sup.report()
        assert report["batches"] == 2
        assert report["alive"] == [0, 1]
        assert report["evicted"] == [2]
        assert report["retries"] == 1
        assert report["events"] == [
            {"batch": 1, "rank": 2, "action": "evict", "reason": "crash"}
        ]
        assert report["health"][2]["status"] == "dead"

    def test_report_is_json_serializable(self):
        import json

        sup = Supervisor(n_ranks=2)
        sup.begin_batch()
        sup.observe_batch(0, 0, 1.0, 10)
        json.dumps(sup.report())

    def test_n_ranks_validation(self):
        with pytest.raises(SupervisionError):
            Supervisor(n_ranks=0)
