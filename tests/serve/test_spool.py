"""Spool durability: atomic writes, torn-record quarantine (PR 10).

The spool is the only tier that pre-dates the journal as shared mutable
state on disk, so it gets the same crash-consistency treatment: every
write publishes via temp-file + fsync + rename, and the drain path
quarantines (never parses, never raises on) records a crashed submitter
tore in half.
"""

from repro.serve.jobs import JobSpec
from repro.serve.service import (
    atomic_write_text,
    read_spool_pending,
    spool_dirs,
    submit_to_spool,
)

TINY = {"n_particles": 24, "n_inactive": 0, "n_active": 2,
        "mode": "event", "pincell": True}


def spec(i, **kwargs):
    return JobSpec(job_id=f"sp-{i:02d}", settings=dict(TINY, seed=i),
                   **kwargs)


class TestAtomicWriteText:
    def test_round_trip(self, tmp_path):
        path = atomic_write_text(tmp_path / "a.json", '{"k": 1}')
        assert path.read_text() == '{"k": 1}'

    def test_no_temp_files_left_behind(self, tmp_path):
        atomic_write_text(tmp_path / "a.json", "x")
        # Temps are dot-prefixed (invisible to *.json globs) and gone.
        assert sorted(p.name for p in tmp_path.iterdir()) == ["a.json"]

    def test_overwrite_is_all_or_nothing(self, tmp_path):
        path = tmp_path / "a.json"
        atomic_write_text(path, "old" * 100)
        atomic_write_text(path, "new")
        assert path.read_text() == "new"


class TestTornPendingQuarantine:
    def test_torn_record_is_quarantined_not_fatal(self, tmp_path):
        """Regression: a half-written pending spec used to raise out of
        read_spool_pending and poison the whole drain."""
        spool = tmp_path / "spool"
        good = [spec(i) for i in range(3)]
        for s in good:
            submit_to_spool(spool, s)
        torn = spool_dirs(spool)["pending"] / "torn.json"
        torn.write_text(good[0].to_json()[:20])

        pending = read_spool_pending(spool)
        assert sorted(p.job_id for p in pending) == [s.job_id for s in good]
        assert not torn.exists()
        assert torn.with_suffix(".corrupt").exists()
        # Quarantine is idempotent: the next drain sees a clean spool.
        assert len(read_spool_pending(spool)) == 3

    def test_empty_pending_file_is_quarantined(self, tmp_path):
        spool = tmp_path / "spool"
        submit_to_spool(spool, spec(0))
        empty = spool_dirs(spool)["pending"] / "empty.json"
        empty.write_bytes(b"")
        assert len(read_spool_pending(spool)) == 1
        assert empty.with_suffix(".corrupt").exists()

    def test_submitted_spec_survives_byte_identical(self, tmp_path):
        spool = tmp_path / "spool"
        original = spec(7, priority=5)
        submit_to_spool(spool, original)
        (loaded,) = read_spool_pending(spool)
        assert loaded.settings_fingerprint() == original.settings_fingerprint()
        assert loaded.priority == 5
