"""LibraryCache: build-once semantics, atomic publish, corruption recovery."""

import hashlib
import multiprocessing as mp

import numpy as np
import pytest

from repro.data import LibraryConfig, library_fingerprint
from repro.errors import ServeError
from repro.serve import LibraryCache

TINY = LibraryConfig.tiny()


class TestGetOrBuild:
    def test_miss_builds_then_hit_loads(self, tmp_path):
        cache = LibraryCache(tmp_path)
        lib1, first = cache.get_or_build("hm-small", TINY)
        assert first.source == "built"
        assert first.build_seconds > 0
        lib2, second = cache.get_or_build("hm-small", TINY)
        assert second.source == "disk-cache"
        assert second.build_seconds == 0.0
        assert lib2.names == lib1.names
        np.testing.assert_array_equal(lib2["U238"].xs, lib1["U238"].xs)

    def test_fingerprint_keys_distinguish_configs(self, tmp_path):
        cache = LibraryCache(tmp_path)
        cache.get_or_build("hm-small", TINY)
        _, other = cache.get_or_build("hm-small", TINY.with_seed(9))
        assert other.source == "built"
        assert library_fingerprint("hm-small", TINY) in cache
        assert library_fingerprint("hm-small", TINY.with_seed(9)) in cache

    def test_corrupt_cache_file_is_rebuilt(self, tmp_path):
        cache = LibraryCache(tmp_path)
        _, first = cache.get_or_build("hm-small", TINY)
        path = cache.path_for(first.fingerprint)
        path.write_bytes(b"not a real npz")
        lib, outcome = cache.get_or_build("hm-small", TINY)
        assert outcome.source == "built"
        assert len(lib) == 43

    def test_no_lockfile_left_behind(self, tmp_path):
        cache = LibraryCache(tmp_path)
        cache.get_or_build("hm-small", TINY)
        assert not list(tmp_path.glob("*.lock"))
        assert not list(tmp_path.glob("*.tmp-*"))

    def test_bad_timeout_rejected(self, tmp_path):
        with pytest.raises(ServeError):
            LibraryCache(tmp_path, build_timeout_s=0)


class TestDigestVerification:
    """PR 10: every load re-hashes the npz against its .sha256 sidecar."""

    def warm(self, tmp_path):
        cache = LibraryCache(tmp_path)
        _, outcome = cache.get_or_build("hm-small", TINY)
        return cache, cache.path_for(outcome.fingerprint)

    def test_publish_writes_a_matching_sidecar(self, tmp_path):
        cache, path = self.warm(tmp_path)
        sidecar = cache.digest_path_for(path)
        assert sidecar.exists()
        expected = sidecar.read_text().strip()
        assert expected == hashlib.sha256(path.read_bytes()).hexdigest()

    def test_mismatched_sidecar_quarantines_and_rebuilds(self, tmp_path):
        cache, path = self.warm(tmp_path)
        cache.digest_path_for(path).write_text("0" * 64 + "\n")
        lib, outcome = cache.get_or_build("hm-small", TINY)
        assert outcome.source == "built"
        assert cache.corrupt_entries == 1
        assert len(lib) == 43
        # Quarantined bytes kept for forensics, out of the namespace.
        assert path.with_suffix(".corrupt").exists()
        # The rebuild republished a now-consistent entry.
        _, again = cache.get_or_build("hm-small", TINY)
        assert again.source == "disk-cache"
        assert cache.corrupt_entries == 1

    def test_bit_rot_in_the_npz_is_caught(self, tmp_path):
        """The npz may still unpickle after a flipped byte — only the
        digest catches silent rot."""
        cache, path = self.warm(tmp_path)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x01
        path.write_bytes(bytes(data))
        _, outcome = cache.get_or_build("hm-small", TINY)
        assert outcome.source == "built"
        assert cache.corrupt_entries == 1

    def test_missing_sidecar_is_a_legacy_accept(self, tmp_path):
        cache, path = self.warm(tmp_path)
        cache.digest_path_for(path).unlink()
        _, outcome = cache.get_or_build("hm-small", TINY)
        assert outcome.source == "disk-cache"
        assert cache.corrupt_entries == 0

    def test_unloadable_corruption_counts_too(self, tmp_path):
        """Garbage that fails the plain load (no sidecar help needed) is
        the same typed event in the same counter."""
        cache, path = self.warm(tmp_path)
        cache.digest_path_for(path).unlink()
        path.write_bytes(b"not a real npz")
        _, outcome = cache.get_or_build("hm-small", TINY)
        assert outcome.source == "built"
        assert cache.corrupt_entries == 1

    def test_stats_export(self, tmp_path):
        cache, path = self.warm(tmp_path)
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["corrupt_entries"] == 0
        assert stats["directory"] == str(tmp_path)


def _race_worker(directory, barrier, out_q):
    cache = LibraryCache(directory)
    barrier.wait()
    _, outcome = cache.get_or_build("hm-small", LibraryConfig.tiny())
    out_q.put(outcome.source)


class TestCrossProcess:
    def test_concurrent_processes_build_exactly_once(self, tmp_path):
        """Two processes racing on a cold cache: one builds, one loads."""
        ctx = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
        barrier = ctx.Barrier(2)
        out_q = ctx.Queue()
        procs = [
            ctx.Process(target=_race_worker, args=(str(tmp_path), barrier, out_q))
            for _ in range(2)
        ]
        for p in procs:
            p.start()
        sources = sorted(out_q.get(timeout=60) for _ in procs)
        for p in procs:
            p.join(timeout=10)
        assert sources == ["built", "disk-cache"]
