"""End-to-end service semantics: the PR's acceptance criteria.

* Determinism: a job through a 4-worker service — queued, batched, cached,
  even crashed and rerun — yields bit-identical per-batch k-effective to
  the same settings run directly through ``Simulation``.
* Library cache: 8 jobs sharing one fingerprint build the library exactly
  once; the hit rate is observable in the metrics JSON.
* Backpressure: a full queue rejects with a typed retry-after error.
* Drain: shutdown loses no jobs and duplicates none.
"""

import json

import pytest

from repro.errors import JobError, QueueFullError
from repro.resilience.recovery import RetryPolicy
from repro.serve import JobSpec, SimulationService
from repro.transport import Settings, Simulation


def job_settings(seed):
    return {
        "n_particles": 24,
        "n_inactive": 0,
        "n_active": 2,
        "seed": seed,
        "mode": "event",
        "pincell": True,
    }


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """One 4-worker service run shared by the acceptance assertions:
    8 jobs, one shared library fingerprint, two distinct seeds, one
    injected mid-job worker crash."""
    cache_dir = tmp_path_factory.mktemp("xs-cache")
    specs = []
    for i in range(8):
        specs.append(
            JobSpec(
                job_id=f"job{i}",
                settings=job_settings(seed=1 + i % 2),
                # job3 hard-kills its first worker mid-job (after dispatch,
                # before any result), exercising requeue + rerun.
                fault_crash_attempts=1 if i == 3 else 0,
            )
        )
    service = SimulationService(
        n_workers=4, cache_dir=str(cache_dir), capacity=16
    )
    results = service.run(specs)
    service.shutdown()
    return service, specs, results


@pytest.fixture(scope="module")
def direct_traces():
    """Reference trajectories from direct Simulation runs (no service)."""
    from repro.data import LibraryConfig, build_library

    library = build_library("hm-small", LibraryConfig.tiny())
    traces = {}
    for seed in (1, 2):
        result = Simulation(library, Settings(**job_settings(seed))).run()
        traces[seed] = result.statistics
    return traces


class TestDeterminism:
    def test_all_jobs_complete_in_submission_order(self, served):
        _, specs, results = served
        assert [r.job_id for r in results] == [s.job_id for s in specs]
        assert all(r.status == "done" for r in results)

    def test_service_results_bit_identical_to_direct_runs(
        self, served, direct_traces
    ):
        _, specs, results = served
        for spec, result in zip(specs, results):
            stats = direct_traces[spec.settings["seed"]]
            assert result.k_collision == stats.k_collision, spec.job_id
            assert result.k_absorption == stats.k_absorption, spec.job_id
            assert result.k_track == stats.k_track, spec.job_id
            assert result.entropy == stats.entropy, spec.job_id

    def test_crashed_job_reran_and_stayed_bit_identical(
        self, served, direct_traces
    ):
        service, _, results = served
        crashed = next(r for r in results if r.job_id == "job3")
        assert crashed.attempts == 2
        assert crashed.status == "done"
        assert crashed.k_collision == direct_traces[2].k_collision
        assert service.metrics.counter("worker_crashes").value >= 1
        assert service.metrics.counter("jobs_requeued").value == 1

    def test_json_payload_round_trips_the_trajectory(self, served):
        _, _, results = served
        from repro.serve import JobResult

        again = JobResult.from_json(results[0].to_json())
        assert again.k_collision == results[0].k_collision


class TestLibraryCache:
    def test_library_built_exactly_once_for_shared_fingerprint(self, served):
        service, _, results = served
        assert service.metrics.counter("library_builds").value == 1
        sources = sorted(r.library_source for r in results)
        assert sources.count("built") == 1
        assert all(s in ("built", "disk-cache", "memory") for s in sources)

    def test_cache_hit_rate_observable_in_metrics_json(self, served):
        service, _, _ = served
        doc = json.loads(service.metrics.to_json())
        hit_rate = doc["metrics"]["cache_hit_rate"]["value"]
        assert hit_rate == pytest.approx(7 / 8)

    def test_latency_histograms_populated(self, served):
        service, _, _ = served
        doc = json.loads(service.metrics.to_json())
        for name in ("queue_wait_seconds", "service_seconds",
                     "dispatch_overhead_seconds"):
            assert doc["metrics"][name]["count"] > 0, name
        assert doc["metrics"]["build_seconds"]["count"] == 1

    def test_profile_projection_includes_service_routines(self, served):
        service, _, _ = served
        profile = service.metrics.to_profile()
        assert "service" in profile.routines
        assert profile.routines["service"].calls == 8


class TestDrain:
    def test_no_lost_or_duplicated_jobs(self, served):
        service, specs, results = served
        assert len(results) == len(specs)
        assert len({r.job_id for r in results}) == len(specs)
        assert len(service.queue) == 0
        assert len(service.batcher) == 0
        assert service.pool.in_flight() == 0

    def test_shutdown_stopped_all_workers(self, served):
        service, _, _ = served
        assert service.pool.alive_count() == 0

    def test_utilization_accounted_for_every_job(self, served):
        service, _, results = served
        rows = service.batcher.utilization_dict()
        assert sum(row["jobs_done"] for row in rows) >= len(results)
        assert all(row["busy_seconds"] >= 0.0 for row in rows)


class TestBackpressure:
    def test_full_queue_raises_typed_retry_after(self):
        service = SimulationService(n_workers=1, capacity=2)
        service.submit(JobSpec(settings=job_settings(1)))
        service.submit(JobSpec(settings=job_settings(1)))
        with pytest.raises(QueueFullError) as err:
            service.submit(JobSpec(settings=job_settings(1)))
        assert err.value.retry_after_s > 0
        assert service.metrics.counter("queue_rejections").value == 1
        assert service.metrics.counter("jobs_submitted").value == 2
        service.shutdown()

    def test_duplicate_job_id_rejected(self):
        service = SimulationService(n_workers=1, capacity=4)
        service.submit(JobSpec(job_id="dup", settings=job_settings(1)))
        with pytest.raises(JobError, match="duplicate"):
            service.submit(JobSpec(job_id="dup", settings=job_settings(1)))
        service.shutdown()


class TestDrainDeadline:
    def test_overrunning_drain_raises_typed_error(self):
        from repro.errors import DeadlineExceededError

        service = SimulationService(n_workers=1, drain_deadline_s=1.0e-6)
        with pytest.raises(DeadlineExceededError, match="serve drain"):
            service.run([JobSpec(job_id="slow", settings=job_settings(1))])
        service.shutdown(graceful=False)

    def test_generous_deadline_drains_normally(self):
        service = SimulationService(n_workers=1, drain_deadline_s=300.0)
        (result,) = service.run(
            [JobSpec(job_id="ok", settings=job_settings(1))]
        )
        service.shutdown()
        assert result.status == "done"


class TestFailurePaths:
    def test_retry_budget_exhaustion_fails_the_job(self):
        service = SimulationService(
            n_workers=1, capacity=4,
            retry_policy=RetryPolicy(max_attempts=2),
        )
        spec = JobSpec(
            job_id="doomed", settings=job_settings(1),
            fault_crash_attempts=99,
        )
        (result,) = service.run([spec])
        service.shutdown()
        assert result.status == "failed"
        assert result.attempts == 2
        assert "retry budget" in result.error
        assert service.metrics.counter("worker_crashes").value == 2
        assert service.metrics.counter("jobs_failed").value == 1

    def test_invalid_settings_fail_in_worker_not_service(self):
        service = SimulationService(n_workers=1, capacity=4)
        spec = JobSpec(
            job_id="badjob",
            settings={"mode": "delta", "tally_power": True,
                      "n_particles": 8, "n_active": 1},
        )
        (result,) = service.run([spec])
        service.shutdown()
        assert result.status == "failed"
        assert "ExecutionError" in result.error
        assert service.metrics.counter("jobs_failed").value == 1

    def test_expired_job_never_dispatches(self):
        import time

        service = SimulationService(n_workers=1, capacity=4)
        spec = JobSpec(
            job_id="late", settings=job_settings(1),
            deadline_s=0.5, submitted_at=time.time() - 10.0,
        )
        (result,) = service.run([spec])
        service.shutdown()
        assert result.status == "expired"
        assert "deadline" in result.error
        assert service.metrics.counter("jobs_expired").value == 1
        assert service.metrics.counter("jobs_completed").value == 0
