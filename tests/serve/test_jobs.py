"""JobSpec/JobResult: JSON round trip, validation, fingerprints."""

import pytest

from repro.data import LibraryConfig, library_fingerprint
from repro.errors import JobError
from repro.resilience.checkpoint import settings_fingerprint
from repro.serve import JobResult, JobSpec
from repro.transport import Settings, Simulation

SETTINGS = {
    "n_particles": 30,
    "n_inactive": 0,
    "n_active": 2,
    "seed": 11,
    "mode": "event",
    "pincell": True,
}


class TestJobSpec:
    def test_json_round_trip_is_exact(self):
        spec = JobSpec(
            job_id="rt1", settings=dict(SETTINGS), priority=3,
            deadline_s=12.5, submitted_at=1722945600.123456,
        )
        again = JobSpec.from_json(spec.to_json())
        assert again == spec

    def test_generated_ids_are_unique(self):
        assert JobSpec().job_id != JobSpec().job_id

    def test_unknown_settings_key_rejected(self):
        with pytest.raises(JobError, match="unknown settings keys"):
            JobSpec(settings={"n_partcles": 10})

    def test_checkpoint_settings_are_not_job_settings(self):
        with pytest.raises(JobError, match="checkpoint_every"):
            JobSpec(settings={"checkpoint_every": 2})

    def test_unknown_field_rejected(self):
        with pytest.raises(JobError, match="unknown job spec fields"):
            JobSpec.from_dict({"job_id": "x", "nope": 1})

    def test_bad_fidelity_rejected(self):
        with pytest.raises(JobError, match="fidelity"):
            JobSpec(fidelity="huge")

    def test_invalid_json_rejected(self):
        with pytest.raises(JobError, match="not valid JSON"):
            JobSpec.from_json("{nope")

    def test_to_settings_reconstructs_exactly(self):
        spec = JobSpec(settings=dict(SETTINGS))
        assert spec.to_settings() == Settings(**SETTINGS)

    def test_settings_fingerprint_matches_checkpoint_subsystem(self):
        spec = JobSpec(settings=dict(SETTINGS))
        assert spec.settings_fingerprint() == settings_fingerprint(
            Settings(**SETTINGS)
        )

    def test_library_fingerprint_keys_on_model_and_config(self):
        base = JobSpec(settings=dict(SETTINGS))
        assert base.library_fingerprint() == library_fingerprint(
            "hm-small", LibraryConfig.tiny()
        )
        other_model = JobSpec(model="hm-large", settings=dict(SETTINGS))
        other_seed = JobSpec(library_seed=7, settings=dict(SETTINGS))
        fps = {
            base.library_fingerprint(),
            other_model.library_fingerprint(),
            other_seed.library_fingerprint(),
        }
        assert len(fps) == 3

    def test_scheduling_fields_do_not_change_fingerprints(self):
        a = JobSpec(job_id="a", settings=dict(SETTINGS), priority=9)
        b = JobSpec(job_id="b", settings=dict(SETTINGS), deadline_s=1.0)
        assert a.settings_fingerprint() == b.settings_fingerprint()
        assert a.library_fingerprint() == b.library_fingerprint()


class TestJobResult:
    def test_from_simulation_carries_exact_traces(self, small_library):
        spec = JobSpec(job_id="payload", settings=dict(SETTINGS))
        result = Simulation(small_library, spec.to_settings()).run()
        payload = JobResult.from_simulation(spec, result, worker_id=2)
        assert payload.k_collision == result.statistics.k_collision
        assert payload.k_track == result.statistics.k_track
        assert payload.entropy == result.statistics.entropy
        assert payload.k_effective == result.k_effective.mean
        assert payload.counters == result.counters.as_dict()
        assert payload.status == "done"
        assert payload.worker_id == 2

    def test_json_round_trip_preserves_float_bits(self, small_library):
        spec = JobSpec(job_id="bits", settings=dict(SETTINGS))
        result = Simulation(small_library, spec.to_settings()).run()
        payload = JobResult.from_simulation(spec, result)
        again = JobResult.from_json(payload.to_json())
        assert again.k_collision == payload.k_collision
        assert again.k_absorption == payload.k_absorption
        assert again.k_track == payload.k_track
        assert again.entropy == payload.entropy
        assert again.to_dict() == payload.to_dict()

    def test_failure_result(self):
        spec = JobSpec(job_id="boom", settings=dict(SETTINGS))
        failed = JobResult.failure(spec, "it broke", attempts=3)
        assert failed.status == "failed"
        assert failed.error == "it broke"
        assert failed.attempts == 3
        assert JobResult.from_json(failed.to_json()).error == "it broke"

    def test_unknown_field_rejected(self):
        with pytest.raises(JobError, match="unknown job result fields"):
            JobResult.from_dict({"job_id": "x", "bogus": 1})
