"""JobSpec/JobResult: JSON round trip, validation, fingerprints."""

import pytest

from repro.data import LibraryConfig, library_fingerprint
from repro.errors import JobError
from repro.resilience.checkpoint import settings_fingerprint
from repro.serve import JobResult, JobSpec
from repro.transport import Settings, Simulation

SETTINGS = {
    "n_particles": 30,
    "n_inactive": 0,
    "n_active": 2,
    "seed": 11,
    "mode": "event",
    "pincell": True,
}


class TestJobSpec:
    def test_json_round_trip_is_exact(self):
        spec = JobSpec(
            job_id="rt1", settings=dict(SETTINGS), priority=3,
            deadline_s=12.5, submitted_at=1722945600.123456,
        )
        again = JobSpec.from_json(spec.to_json())
        assert again == spec

    def test_generated_ids_are_unique(self):
        assert JobSpec().job_id != JobSpec().job_id

    def test_unknown_settings_key_rejected(self):
        with pytest.raises(JobError, match="unknown settings keys"):
            JobSpec(settings={"n_partcles": 10})

    def test_checkpoint_settings_are_not_job_settings(self):
        with pytest.raises(JobError, match="checkpoint_every"):
            JobSpec(settings={"checkpoint_every": 2})

    def test_unknown_field_rejected(self):
        with pytest.raises(JobError, match="unknown job spec fields"):
            JobSpec.from_dict({"job_id": "x", "nope": 1})

    def test_bad_fidelity_rejected(self):
        with pytest.raises(JobError, match="fidelity"):
            JobSpec(fidelity="huge")

    def test_invalid_json_rejected(self):
        with pytest.raises(JobError, match="not valid JSON"):
            JobSpec.from_json("{nope")

    def test_to_settings_reconstructs_exactly(self):
        spec = JobSpec(settings=dict(SETTINGS))
        assert spec.to_settings() == Settings(**SETTINGS)

    def test_settings_fingerprint_matches_checkpoint_subsystem(self):
        spec = JobSpec(settings=dict(SETTINGS))
        assert spec.settings_fingerprint() == settings_fingerprint(
            Settings(**SETTINGS)
        )

    def test_library_fingerprint_keys_on_model_and_config(self):
        base = JobSpec(settings=dict(SETTINGS))
        assert base.library_fingerprint() == library_fingerprint(
            "hm-small", LibraryConfig.tiny()
        )
        other_model = JobSpec(model="hm-large", settings=dict(SETTINGS))
        other_seed = JobSpec(library_seed=7, settings=dict(SETTINGS))
        fps = {
            base.library_fingerprint(),
            other_model.library_fingerprint(),
            other_seed.library_fingerprint(),
        }
        assert len(fps) == 3

    def test_scheduling_fields_do_not_change_fingerprints(self):
        a = JobSpec(job_id="a", settings=dict(SETTINGS), priority=9)
        b = JobSpec(job_id="b", settings=dict(SETTINGS), deadline_s=1.0)
        assert a.settings_fingerprint() == b.settings_fingerprint()
        assert a.library_fingerprint() == b.library_fingerprint()


class TestJobResult:
    def test_from_simulation_carries_exact_traces(self, small_library):
        spec = JobSpec(job_id="payload", settings=dict(SETTINGS))
        result = Simulation(small_library, spec.to_settings()).run()
        payload = JobResult.from_simulation(spec, result, worker_id=2)
        assert payload.k_collision == result.statistics.k_collision
        assert payload.k_track == result.statistics.k_track
        assert payload.entropy == result.statistics.entropy
        assert payload.k_effective == result.k_effective.mean
        assert payload.counters == result.counters.as_dict()
        assert payload.status == "done"
        assert payload.worker_id == 2

    def test_json_round_trip_preserves_float_bits(self, small_library):
        spec = JobSpec(job_id="bits", settings=dict(SETTINGS))
        result = Simulation(small_library, spec.to_settings()).run()
        payload = JobResult.from_simulation(spec, result)
        again = JobResult.from_json(payload.to_json())
        assert again.k_collision == payload.k_collision
        assert again.k_absorption == payload.k_absorption
        assert again.k_track == payload.k_track
        assert again.entropy == payload.entropy
        assert again.to_dict() == payload.to_dict()

    def test_failure_result(self):
        spec = JobSpec(job_id="boom", settings=dict(SETTINGS))
        failed = JobResult.failure(spec, "it broke", attempts=3)
        assert failed.status == "failed"
        assert failed.error == "it broke"
        assert failed.attempts == 3
        assert JobResult.from_json(failed.to_json()).error == "it broke"

    def test_unknown_field_rejected(self):
        with pytest.raises(JobError, match="unknown job result fields"):
            JobResult.from_dict({"job_id": "x", "bogus": 1})


class TestScenarioProvenance:
    """Provenance fields ride along without touching the physics payload."""

    PROVENANCE = {
        "case_id": "sweep:boron_ppm=612.300000000001,backend=event",
        "suite_id": "sweep",
        "scenario_fingerprint": "ab" * 32,
    }

    def test_spec_round_trips_provenance_exactly(self):
        spec = JobSpec(
            job_id="prov", settings=dict(SETTINGS), priority=2,
            library_temperature=565.125, **self.PROVENANCE,
        )
        again = JobSpec.from_json(spec.to_json())
        assert again == spec
        assert again.case_id == self.PROVENANCE["case_id"]
        assert again.suite_id == "sweep"
        assert again.scenario_fingerprint == "ab" * 32
        # Exact-float round trip still holds with provenance present.
        assert again.library_temperature == 565.125

    def test_provenance_does_not_change_fingerprints(self):
        plain = JobSpec(job_id="a", settings=dict(SETTINGS))
        tagged = JobSpec(job_id="b", settings=dict(SETTINGS),
                         **self.PROVENANCE)
        assert plain.settings_fingerprint() == tagged.settings_fingerprint()
        assert plain.library_fingerprint() == tagged.library_fingerprint()

    def test_library_temperature_changes_library_fingerprint(self):
        plain = JobSpec(job_id="a", settings=dict(SETTINGS))
        doppler = JobSpec(job_id="b", settings=dict(SETTINGS),
                          library_temperature=900.0)
        assert plain.library_fingerprint() != doppler.library_fingerprint()
        assert plain.settings_fingerprint() == doppler.settings_fingerprint()

    def test_results_copy_provenance_from_spec(self, small_library):
        spec = JobSpec(job_id="prov2", settings=dict(SETTINGS),
                       **self.PROVENANCE)
        result = Simulation(small_library, spec.to_settings()).run()
        done = JobResult.from_simulation(spec, result)
        failed = JobResult.failure(spec, "boom")
        for payload in (done, failed):
            assert payload.case_id == self.PROVENANCE["case_id"]
            assert payload.suite_id == "sweep"
            assert payload.scenario_fingerprint == "ab" * 32
        again = JobResult.from_json(done.to_json())
        assert again.case_id == done.case_id
        assert again.scenario_fingerprint == done.scenario_fingerprint

    def test_legacy_spec_without_provenance_defaults_empty(self):
        spec = JobSpec.from_dict({"job_id": "old", "settings": dict(SETTINGS)})
        assert spec.case_id == spec.suite_id == spec.scenario_fingerprint == ""
