"""JobQueue: priority order, FIFO fairness, bounded backpressure."""

import threading

import pytest

from repro.errors import QueueFullError, ServeError
from repro.serve import JobQueue, JobSpec


def spec(job_id, priority=0):
    return JobSpec(job_id=job_id, priority=priority)


class TestOrdering:
    def test_higher_priority_dequeues_first(self):
        q = JobQueue(capacity=8)
        q.put(spec("low", priority=0))
        q.put(spec("high", priority=5))
        q.put(spec("mid", priority=2))
        order = [q.get(timeout=0).spec.job_id for _ in range(3)]
        assert order == ["high", "mid", "low"]

    def test_fifo_within_a_priority(self):
        q = JobQueue(capacity=8)
        for i in range(5):
            q.put(spec(f"j{i}", priority=1))
        order = [q.get(timeout=0).spec.job_id for _ in range(5)]
        assert order == [f"j{i}" for i in range(5)]

    def test_requeue_jumps_to_front_of_its_priority(self):
        q = JobQueue(capacity=8)
        q.put(spec("first", priority=1))
        q.put(spec("second", priority=1))
        q.put(spec("urgent", priority=9))
        q.put(spec("recovered", priority=1), attempt=2, front=True)
        order = [(item.spec.job_id, item.attempt) for item in
                 (q.get(timeout=0) for _ in range(4))]
        assert order == [("urgent", 1), ("recovered", 2),
                         ("first", 1), ("second", 1)]


class TestBackpressure:
    def test_full_queue_rejects_with_typed_retry_after(self):
        q = JobQueue(capacity=2)
        q.retry_after_hint = 2.5
        q.put(spec("a"))
        q.put(spec("b"))
        with pytest.raises(QueueFullError) as err:
            q.put(spec("c"))
        assert err.value.retry_after_s == 2.5
        assert "retry" in str(err.value)
        assert len(q) == 2  # the rejected job was not partially admitted

    def test_recovery_requeue_is_exempt_from_capacity(self):
        q = JobQueue(capacity=1)
        q.put(spec("a"))
        q.put(spec("recovered"), attempt=2, front=True)  # must not raise
        assert len(q) == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ServeError):
            JobQueue(capacity=0)


class TestLifecycle:
    def test_get_timeout_returns_none(self):
        q = JobQueue(capacity=2)
        assert q.get(timeout=0.01) is None

    def test_closed_queue_rejects_put_but_drains(self):
        q = JobQueue(capacity=4)
        q.put(spec("a"))
        q.close()
        with pytest.raises(ServeError, match="closed"):
            q.put(spec("b"))
        assert q.get(timeout=0).spec.job_id == "a"
        assert q.get(timeout=0) is None  # closed and empty: no waiting

    def test_get_blocks_until_put_from_another_thread(self):
        q = JobQueue(capacity=2)
        got = []

        def consumer():
            got.append(q.get(timeout=5.0))

        thread = threading.Thread(target=consumer)
        thread.start()
        q.put(spec("late"))
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert got[0].spec.job_id == "late"

    def test_enqueued_at_is_stamped(self):
        q = JobQueue(capacity=2)
        q.put(spec("t"))
        item = q.get(timeout=0)
        assert item.enqueued_at > 0
