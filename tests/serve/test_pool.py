"""WorkerPool mechanics: lifecycle, health/heartbeat, crash respawn."""

import time

import pytest

from repro.errors import ServeError
from repro.serve import JobSpec, WorkerPool
from repro.serve.queue import QueuedJob


def queued(job_id, **spec_kwargs):
    spec_kwargs.setdefault(
        "settings",
        {"n_particles": 16, "n_inactive": 0, "n_active": 1,
         "mode": "event", "pincell": True},
    )
    return QueuedJob(
        JobSpec(job_id=job_id, **spec_kwargs),
        attempt=1,
        enqueued_at=time.monotonic(),
    )


def wait_for(predicate, timeout_s=30.0, poll_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll_s)
    return False


class TestLifecycle:
    def test_start_twice_rejected(self):
        pool = WorkerPool(1)
        pool.start()
        try:
            with pytest.raises(ServeError, match="already started"):
                pool.start()
        finally:
            pool.stop()

    def test_graceful_stop_joins_all_workers(self):
        pool = WorkerPool(2)
        pool.start()
        assert wait_for(lambda: pool.alive_count() == 2)
        pool.stop(graceful=True)
        assert pool.alive_count() == 0

    def test_needs_at_least_one_worker(self):
        with pytest.raises(ServeError):
            WorkerPool(0)


class TestHealth:
    def test_health_reports_liveness_and_heartbeat(self):
        pool = WorkerPool(1, heartbeat_s=0.05)
        pool.start()
        try:
            assert wait_for(lambda: bool(pool.poll(timeout=0.1)) or
                            pool._workers[0].state == "idle")
            health = pool.health()[0]
            assert health["alive"] is True
            assert health["incarnation"] == 1
            assert health["in_flight"] is None
            assert health["last_seen_s"] < 5.0
        finally:
            pool.stop()

    def test_heartbeats_refresh_last_seen_while_idle(self):
        pool = WorkerPool(1, heartbeat_s=0.05)
        pool.start()
        try:
            pool.poll(timeout=0.2)
            time.sleep(0.3)
            pool.poll(timeout=0.2)  # absorb heartbeats
            assert pool.health()[0]["last_seen_s"] < 0.3
        finally:
            pool.stop()


class TestDispatch:
    def test_job_runs_and_returns_done_event(self):
        pool = WorkerPool(1)
        pool.start()
        try:
            pool.dispatch(0, queued("one"))
            events = []
            assert wait_for(
                lambda: events.extend(pool.poll(timeout=0.2)) or
                any(e.kind == "done" for e in events)
            )
            done = next(e for e in events if e.kind == "done")
            assert done.result.job_id == "one"
            assert done.result.status == "done"
            assert pool.in_flight() == 0
        finally:
            pool.stop()

    def test_double_dispatch_to_busy_worker_rejected(self):
        pool = WorkerPool(1)
        pool.start()
        try:
            pool.dispatch(0, queued("first"))
            with pytest.raises(ServeError, match="in flight"):
                pool.dispatch(0, queued("second"))
            assert wait_for(
                lambda: any(e.kind == "done"
                            for e in pool.poll(timeout=0.2))
            )
        finally:
            pool.stop()


class TestCrashRecovery:
    def test_crashed_worker_respawns_and_surfaces_lost_job(self):
        pool = WorkerPool(1)
        pool.start()
        try:
            pool.dispatch(0, queued("victim", fault_crash_attempts=1))
            events = []
            assert wait_for(
                lambda: events.extend(pool.poll(timeout=0.2)) or
                any(e.kind == "crash" for e in events)
            )
            crash = next(e for e in events if e.kind == "crash")
            assert crash.job.spec.job_id == "victim"
            assert wait_for(lambda: pool.alive_count() == 1)
            assert pool.health()[0]["incarnation"] == 2
            # The respawned worker serves the rerun normally.
            crash.job.attempt += 1
            pool.dispatch(0, crash.job)
            events.clear()
            assert wait_for(
                lambda: events.extend(pool.poll(timeout=0.2)) or
                any(e.kind == "done" for e in events)
            )
            done = next(e for e in events if e.kind == "done")
            assert done.result.attempts == 2
        finally:
            pool.stop()
