"""Batcher: fingerprint affinity, age fallback, utilization accounting."""

import time

from repro.serve import Batcher, JobSpec
from repro.serve.queue import QueuedJob


def queued(job_id, *, library_seed=1, priority=0):
    spec = JobSpec(job_id=job_id, library_seed=library_seed, priority=priority)
    return QueuedJob(spec, attempt=1, enqueued_at=time.monotonic())


class TestAffinity:
    def test_cold_worker_gets_oldest_job(self):
        b = Batcher()
        b.add(queued("a", library_seed=1))
        b.add(queued("b", library_seed=2))
        job, hit = b.take_for(0)
        assert job.spec.job_id == "a"
        assert not hit  # cold worker: no warm library yet

    def test_warm_worker_prefers_matching_fingerprint(self):
        b = Batcher()
        b.add(queued("a1", library_seed=1))
        b.add(queued("b1", library_seed=2))
        b.add(queued("a2", library_seed=1))
        first, _ = b.take_for(0)  # takes a1, worker 0 is now warm on seed 1
        assert first.spec.job_id == "a1"
        second, hit = b.take_for(0)
        assert second.spec.job_id == "a2"  # skips b1: affinity
        assert hit
        third, hit = b.take_for(0)
        assert third.spec.job_id == "b1"  # falls back to remaining work
        assert not hit

    def test_two_workers_partition_by_fingerprint(self):
        b = Batcher()
        for i in range(2):
            b.add(queued(f"x{i}", library_seed=1))
            b.add(queued(f"y{i}", library_seed=2))
        (j0, _), (j1, _) = b.take_for(0), b.take_for(1)
        assert j0.spec.job_id == "x0"
        assert j1.spec.job_id == "y0"  # oldest job not matching worker 0
        assert b.take_for(0)[0].spec.job_id == "x1"
        assert b.take_for(1)[0].spec.job_id == "y1"
        assert b.take_for(0) is None

    def test_group_bookkeeping(self):
        b = Batcher()
        assert len(b) == 0
        b.add(queued("a", library_seed=1))
        b.add(queued("b", library_seed=2))
        assert len(b) == 2
        assert b.group_count == 2
        b.take_for(0)
        assert len(b) == 1


class TestUtilization:
    def test_done_accounting(self):
        b = Batcher()
        b.add(queued("a", library_seed=1))
        b.take_for(3)
        b.note_done(3, busy_seconds=1.5)
        util = b.utilization()[3]
        assert util.jobs_done == 1
        assert util.busy_seconds == 1.5
        assert util.dispatches == 1
        assert util.affinity_rate == 0.0

    def test_affinity_rate_counts_warm_dispatches(self):
        b = Batcher()
        for i in range(3):
            b.add(queued(f"j{i}", library_seed=1))
        for _ in range(3):
            b.take_for(0)
            b.note_done(0, busy_seconds=0.1)
        util = b.utilization()[0]
        assert util.dispatches == 3
        assert util.affinity_hits == 2  # first was cold, rest warm
        assert util.affinity_rate == 2 / 3

    def test_respawned_worker_forgets_library(self):
        b = Batcher()
        b.add(queued("a", library_seed=1))
        b.take_for(0)
        b.note_done(0, busy_seconds=0.1)
        b.forget_worker_library(0)
        b.add(queued("b", library_seed=1))
        _, hit = b.take_for(0)
        assert not hit  # fresh incarnation must rebuild/reload

    def test_utilization_dict_shape(self):
        b = Batcher()
        b.add(queued("a"))
        b.take_for(0)
        b.note_done(0, busy_seconds=0.2)
        (row,) = b.utilization_dict()
        assert row["worker_id"] == 0
        assert row["jobs_done"] == 1
        assert 0.0 <= row["utilization"]
        assert set(row) >= {"busy_seconds", "affinity_rate", "fingerprint"}
