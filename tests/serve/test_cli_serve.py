"""The service CLI trio (submit/serve/status) end to end, via main(argv)."""

import json

from repro.cli import main as sim_main
from repro.serve import JobSpec
from repro.serve.service import (
    read_spool_pending,
    spool_status,
    submit_to_spool,
)

RUN_FLAGS = ["--pincell", "--particles", "24", "--batches", "2",
             "--inactive", "0"]


class TestSubmit:
    def test_submit_writes_pending_spec(self, tmp_path, capsys):
        spool = str(tmp_path / "spool")
        rc = sim_main(["submit", "--spool", spool, *RUN_FLAGS,
                       "--job-id", "s1", "--priority", "2"])
        assert rc == 0
        assert "submitted s1" in capsys.readouterr().out
        (spec,) = read_spool_pending(spool)
        assert spec.job_id == "s1"
        assert spec.priority == 2
        assert spec.settings["n_particles"] == 24
        assert spec.settings["pincell"] is True
        assert spec.submitted_at is not None

    def test_duplicate_job_id_fails(self, tmp_path, capsys):
        spool = str(tmp_path / "spool")
        assert sim_main(["submit", "--spool", spool, "--job-id", "dup"]) == 0
        rc = sim_main(["submit", "--spool", spool, "--job-id", "dup"])
        assert rc == 1
        assert "already spooled" in capsys.readouterr().err


class TestServeAndStatus:
    def test_spool_lifecycle(self, tmp_path, capsys):
        """submit N -> serve -> status: results filed, metrics exported."""
        spool = str(tmp_path / "spool")
        cache = str(tmp_path / "cache")
        for i in range(3):
            assert sim_main(["submit", "--spool", spool, *RUN_FLAGS,
                             "--seed", "5", "--job-id", f"job{i}"]) == 0
        capsys.readouterr()

        rc = sim_main(["serve", "--spool", spool, "--workers", "2",
                       "--cache", cache])
        assert rc == 0
        out = capsys.readouterr().out
        assert "served 3 jobs" in out
        assert "3 done" in out

        status = spool_status(spool)
        assert status["counts"] == {"pending": 0, "done": 3, "failed": 0}
        assert len(status["results"]) == 3
        # All three shared a fingerprint: exactly one build in the metrics.
        metrics = status["metrics"]["metrics"]["metrics"]
        assert metrics["library_builds"]["value"] == 1
        assert metrics["jobs_completed"]["value"] == 3

        rc = sim_main(["status", "--spool", spool])
        assert rc == 0
        out = capsys.readouterr().out
        assert "0 pending, 3 done, 0 failed" in out
        assert "cache hit rate" in out

        rc = sim_main(["status", "--spool", spool, "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["counts"]["done"] == 3

    def test_serve_jobs_file_with_json_output(self, tmp_path, capsys):
        jobs = tmp_path / "jobs.jsonl"
        spec = JobSpec(job_id="f1", settings={
            "n_particles": 24, "n_inactive": 0, "n_active": 2,
            "seed": 5, "mode": "event", "pincell": True,
        })
        jobs.write_text(spec.to_json() + "\n")
        rc = sim_main(["serve", "--jobs", str(jobs), "--workers", "1",
                       "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        (result,) = doc["results"]
        assert result["job_id"] == "f1"
        assert result["status"] == "done"
        assert len(result["k_collision"]) == 2
        assert "cache_hit_rate" in doc["metrics"]["metrics"]
        assert doc["workers"][0]["jobs_done"] == 1

    def test_serve_json_array_input(self, tmp_path, capsys):
        jobs = tmp_path / "jobs.json"
        specs = [JobSpec(job_id=f"a{i}", settings={
            "n_particles": 16, "n_inactive": 0, "n_active": 1,
            "mode": "event", "pincell": True,
        }).to_dict() for i in range(2)]
        jobs.write_text(json.dumps(specs))
        rc = sim_main(["serve", "--jobs", str(jobs), "--workers", "1"])
        assert rc == 0
        assert "served 2 jobs" in capsys.readouterr().out

    def test_serve_empty_spool_fails(self, tmp_path, capsys):
        rc = sim_main(["serve", "--spool", str(tmp_path / "nothing")])
        assert rc == 1
        assert "no jobs" in capsys.readouterr().err

    def test_serve_malformed_jobs_file_fails(self, tmp_path, capsys):
        jobs = tmp_path / "bad.jsonl"
        jobs.write_text('{"job_id": "x", "bogus_field": 1}\n')
        rc = sim_main(["serve", "--jobs", str(jobs)])
        assert rc == 1
        assert "cannot read jobs" in capsys.readouterr().err

    def test_failed_job_sets_exit_code_and_files_failure(
        self, tmp_path, capsys
    ):
        jobs = tmp_path / "jobs.jsonl"
        spec = JobSpec(job_id="bad1", settings={
            "mode": "delta", "tally_power": True,
            "n_particles": 8, "n_active": 1,
        })
        jobs.write_text(spec.to_json() + "\n")
        rc = sim_main(["serve", "--jobs", str(jobs), "--workers", "1"])
        assert rc == 1
        assert "failed" in capsys.readouterr().out

    def test_status_round_trips_provenance_and_retry_hint(
        self, tmp_path, capsys
    ):
        """Scenario provenance survives spool -> serve -> status, and the
        adaptive retry-after hint surfaces at the top level of the JSON."""
        spool = str(tmp_path / "spool")
        submit_to_spool(spool, JobSpec(
            job_id="prov1",
            settings={"n_particles": 24, "n_inactive": 0, "n_active": 2,
                      "seed": 5, "mode": "event", "pincell": True},
            case_id="hm0p5-t293", suite_id="hm-tiny-sweep",
            scenario_fingerprint="deadbeef" * 8,
        ))
        assert sim_main(["serve", "--spool", spool, "--workers", "1",
                         "--cache", str(tmp_path / "cache")]) == 0
        capsys.readouterr()

        status = spool_status(spool)
        (entry,) = status["results"]
        assert entry["case_id"] == "hm0p5-t293"
        assert entry["suite_id"] == "hm-tiny-sweep"
        assert entry["scenario_fingerprint"] == "deadbeef" * 8
        assert status["retry_after_s"] > 0

        rc = sim_main(["status", "--spool", spool, "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        (entry,) = doc["results"]
        assert entry["case_id"] == "hm0p5-t293"
        assert entry["suite_id"] == "hm-tiny-sweep"
        assert doc["retry_after_s"] > 0

        rc = sim_main(["status", "--spool", spool])
        assert rc == 0
        out = capsys.readouterr().out
        assert "suite=hm-tiny-sweep case=hm0p5-t293" in out
        assert "retry-after hint" in out

    def test_status_on_untouched_spool(self, tmp_path, capsys):
        rc = sim_main(["status", "--spool", str(tmp_path / "fresh")])
        assert rc == 0
        assert "0 pending, 0 done, 0 failed" in capsys.readouterr().out


class TestPriorityOrdering:
    def test_higher_priority_spooled_jobs_serve_first(self, tmp_path):
        spool = str(tmp_path / "spool")
        sim_main(["submit", "--spool", spool, "--job-id", "low",
                  "--priority", "0"])
        sim_main(["submit", "--spool", spool, "--job-id", "high",
                  "--priority", "9"])
        specs = read_spool_pending(spool)
        assert [s.job_id for s in specs] == ["high", "low"]
