"""MetricsRegistry: counters/gauges/histograms, JSON, Profile projection."""

import json
import threading

import pytest

from repro.errors import ServeError
from repro.profiling.timers import Profile
from repro.serve import MetricsRegistry


class TestCounterGauge:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert reg.counter("jobs") is c  # get-or-create

    def test_negative_increment_rejected(self):
        with pytest.raises(ServeError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_set_and_add(self):
        g = MetricsRegistry().gauge("depth")
        g.set(7)
        g.add(-2)
        assert g.value == 5.0

    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ServeError, match="already registered"):
            reg.gauge("x")


class TestHistogram:
    def test_observations_land_in_buckets(self):
        h = MetricsRegistry().histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count == 5
        assert h.counts == [1, 2, 1, 1]  # last is +Inf overflow
        assert h.sum == pytest.approx(56.05)
        assert h.min == 0.05 and h.max == 50.0

    def test_quantile_upper_bound(self):
        h = MetricsRegistry().histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in [0.05] * 9 + [5.0]:
            h.observe(v)
        assert h.quantile(0.5) == 0.1
        assert h.quantile(0.99) == 10.0

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ServeError):
            MetricsRegistry().histogram("bad", buckets=(1.0, 0.1))


class TestInfo:
    def test_set_replaces_the_whole_document(self):
        info = MetricsRegistry().info("breaker")
        assert info.value == {}
        info.set({"open": ["j1"], "threshold": 3})
        info.set({"open": []})
        assert info.value == {"open": []}

    def test_scrapers_get_a_copy(self):
        info = MetricsRegistry().info("breaker")
        doc = {"open": ["j1"]}
        info.set(doc)
        doc["open"].append("j2")  # caller's mutation is invisible
        snapshot = info.value
        snapshot["open"].append("j3")  # scraper's mutation too
        assert info.value == {"open": ["j1"]}

    def test_non_json_value_rejected(self):
        with pytest.raises(ServeError, match="JSON"):
            MetricsRegistry().info("bad").set({"obj": object()})

    def test_registry_export_includes_info(self):
        reg = MetricsRegistry()
        reg.info("breaker").set({"open": ["x"]})
        doc = json.loads(reg.to_json())
        assert doc["metrics"]["breaker"] == {
            "type": "info", "value": {"open": ["x"]},
        }


class TestExport:
    def test_json_round_trip(self):
        reg = MetricsRegistry("svc")
        reg.counter("jobs").inc(3)
        reg.gauge("depth").set(2.5)
        reg.info("breaker").set({"open": ["j"], "threshold": 3})
        h = reg.histogram("wait_seconds", buckets=(0.01, 0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        again = MetricsRegistry.from_json(reg.to_json())
        assert again.as_dict() == reg.as_dict()

    def test_export_is_valid_json_document(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        doc = json.loads(reg.to_json())
        assert doc["metrics"]["a"] == {"type": "counter", "value": 1}

    def test_malformed_json_rejected(self):
        with pytest.raises(ServeError):
            MetricsRegistry.from_json("{}")

    def test_to_profile_projects_second_histograms(self):
        reg = MetricsRegistry("svc")
        h = reg.histogram("service_seconds")
        h.observe(1.0)
        h.observe(2.0)
        reg.histogram("empty_seconds")  # zero observations: omitted
        reg.counter("jobs").inc()  # not a histogram: omitted
        profile = reg.to_profile()
        assert set(profile.routines) == {"service"}
        assert profile.routines["service"].calls == 2
        assert profile.routines["service"].total_seconds == pytest.approx(3.0)

    def test_profile_merges_with_transport_profile(self):
        reg = MetricsRegistry("svc")
        reg.histogram("dispatch_overhead_seconds").observe(0.25)
        transport = Profile("sim")
        transport.record("transport_generation", 4.75)
        merged = transport.merge(reg.to_profile(), label="combined")
        assert merged.fraction("dispatch_overhead") == pytest.approx(0.05)


class TestThreadSafety:
    def test_concurrent_increments_do_not_lose_updates(self):
        reg = MetricsRegistry()
        c = reg.counter("hits")
        h = reg.histogram("lat_seconds")

        def work():
            for _ in range(1000):
                c.inc()
                h.observe(0.001)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 4000
        assert h.count == 4000
