"""Circuit-breaker acceptance: poison jobs are quarantined, not looped.

A job whose spec deterministically kills its worker would, under plain
respawn-and-requeue, burn one fresh worker per attempt forever (or until
the retry budget intervenes).  The pool's :class:`CircuitBreaker` trips
after three consecutive worker deaths with the same job in flight: the job
comes back as a typed-``PoisonedJobError`` failure (status ``poisoned``),
the pool stays healthy, the remaining jobs complete bit-identically, and
the breaker state is visible in the metrics registry.
"""

import json

import pytest

from repro.errors import PoisonedJobError, ServeError
from repro.resilience.recovery import RetryPolicy
from repro.serve import JobSpec, SimulationService
from repro.transport import Settings, Simulation


def job_settings(seed):
    return {
        "n_particles": 24,
        "n_inactive": 0,
        "n_active": 2,
        "seed": seed,
        "mode": "event",
        "pincell": True,
    }


@pytest.fixture(scope="module")
def quarantined(tmp_path_factory):
    """One service run: a poison job (crashes every attempt) among healthy
    jobs, with a retry budget wide enough that only the breaker can stop
    the loop."""
    specs = [
        JobSpec(job_id="healthy0", settings=job_settings(1)),
        JobSpec(
            job_id="poison", settings=job_settings(1),
            fault_crash_attempts=99,
        ),
        JobSpec(job_id="healthy1", settings=job_settings(2)),
    ]
    service = SimulationService(
        n_workers=2,
        cache_dir=str(tmp_path_factory.mktemp("xs-cache")),
        retry_policy=RetryPolicy(max_attempts=6),
    )
    results = service.run(specs)
    alive_before_shutdown = service.pool.alive_count()
    service.shutdown()
    return service, results, alive_before_shutdown


@pytest.fixture(scope="module")
def direct_traces():
    from repro.data import LibraryConfig, build_library

    library = build_library("hm-small", LibraryConfig.tiny())
    return {
        seed: Simulation(library, Settings(**job_settings(seed))).run()
        for seed in (1, 2)
    }


class TestQuarantine:
    def test_three_consecutive_crashes_trip_the_breaker(self, quarantined):
        service, results, _ = quarantined
        poisoned = next(r for r in results if r.job_id == "poison")
        assert poisoned.status == "poisoned"
        assert poisoned.attempts == 3
        assert "PoisonedJobError" in poisoned.error
        assert "3 consecutive times" in poisoned.error
        assert service.pool.breaker.is_open("poison")
        assert service.pool.breaker.failures("poison") == 3

    def test_first_two_crashes_were_ordinary_requeues(self, quarantined):
        service, _, _ = quarantined
        assert service.metrics.counter("jobs_requeued").value == 2
        assert service.metrics.counter("worker_crashes").value == 3

    def test_pool_stays_healthy(self, quarantined):
        service, _, alive_before_shutdown = quarantined
        assert alive_before_shutdown == service.pool.n_workers
        assert service.pool.in_flight() == 0

    def test_remaining_jobs_complete_bit_identical(
        self, quarantined, direct_traces
    ):
        _, results, _ = quarantined
        for job_id, seed in (("healthy0", 1), ("healthy1", 2)):
            result = next(r for r in results if r.job_id == job_id)
            stats = direct_traces[seed].statistics
            assert result.status == "done", job_id
            assert result.k_collision == stats.k_collision, job_id
            assert result.k_absorption == stats.k_absorption, job_id
            assert result.entropy == stats.entropy, job_id

    def test_drain_contract_holds(self, quarantined):
        service, results, _ = quarantined
        assert sorted(r.job_id for r in results) == [
            "healthy0", "healthy1", "poison",
        ]
        assert len(service.queue) == 0
        assert service.pool.in_flight() == 0


class TestBreakerMetrics:
    def test_breaker_state_exported_through_registry(self, quarantined):
        service, _, _ = quarantined
        doc = json.loads(service.metrics.to_json())
        assert doc["metrics"]["jobs_poisoned"]["value"] == 1
        assert doc["metrics"]["circuits_open"]["value"] == 1
        breaker = doc["metrics"]["circuit_breaker"]["value"]
        assert breaker["open"] == ["poison"]
        assert breaker["keys"]["poison"]["state"] == "open"
        assert breaker["keys"]["poison"]["consecutive_failures"] == 3

    def test_healthy_jobs_never_touch_the_breaker_export(self, quarantined):
        service, _, _ = quarantined
        state = service.pool.breaker.as_dict()
        assert "healthy0" not in state["keys"]
        assert "healthy1" not in state["keys"]


class TestPoisonedJobError:
    def test_error_carries_job_id_and_crash_count(self):
        err = PoisonedJobError("job j quarantined", job_id="j", crashes=3)
        assert err.job_id == "j"
        assert err.crashes == 3
        assert isinstance(err, ServeError)


class TestNarrowBudgetStillWins:
    def test_retry_budget_fires_before_the_breaker(self):
        """With max_attempts=2 the budget exhausts at the second crash —
        one below the breaker threshold — so the job fails the ordinary
        way (the pre-breaker behaviour is preserved)."""
        service = SimulationService(
            n_workers=1, retry_policy=RetryPolicy(max_attempts=2)
        )
        spec = JobSpec(
            job_id="doomed", settings=job_settings(1),
            fault_crash_attempts=99,
        )
        (result,) = service.run([spec])
        service.shutdown()
        assert result.status == "failed"
        assert "retry budget" in result.error
        assert not service.pool.breaker.is_open("doomed")
        assert service.metrics.counter("jobs_poisoned").value == 0
