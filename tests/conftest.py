"""Shared fixtures: tiny libraries/grids built once per test session."""

import numpy as np
import pytest

from repro.data import LibraryConfig, UnionizedGrid, build_library


@pytest.fixture(scope="session")
def tiny_config():
    return LibraryConfig.tiny()


@pytest.fixture(scope="session")
def small_library(tiny_config):
    """H.M. Small library at tiny fidelity (43 nuclides)."""
    return build_library("hm-small", tiny_config)


@pytest.fixture(scope="session")
def large_library(tiny_config):
    """H.M. Large library at tiny fidelity (329 nuclides)."""
    return build_library("hm-large", tiny_config)


@pytest.fixture(scope="session")
def small_union(small_library):
    return UnionizedGrid(small_library)


@pytest.fixture()
def rng():
    return np.random.default_rng(987)
