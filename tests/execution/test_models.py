"""Tests for the offload / native / symmetric execution models."""

import pytest

from repro.errors import ExecutionError
from repro.execution.native import NativeModel, alpha
from repro.execution.offload import OffloadCostModel
from repro.execution.symmetric import SymmetricNode
from repro.machine.presets import JLSE_HOST, MIC_7120A, PCIE_GEN2_X16


@pytest.fixture(scope="module")
def offload_small():
    return OffloadCostModel(JLSE_HOST, MIC_7120A, PCIE_GEN2_X16, "hm-small")


@pytest.fixture(scope="module")
def offload_large():
    return OffloadCostModel(JLSE_HOST, MIC_7120A, PCIE_GEN2_X16, "hm-large")


class TestOffloadTableII:
    """Table II anchors at 1e5 particles."""

    def test_banking_host(self, offload_small, offload_large):
        assert offload_small.banking_time_host(100_000) == pytest.approx(
            0.004, rel=0.05
        )
        # Host banking is model-independent (base state only).
        assert offload_large.banking_time_host(100_000) == pytest.approx(
            0.004, rel=0.05
        )

    def test_banking_mic(self, offload_small, offload_large):
        assert offload_small.banking_time_mic(100_000) == pytest.approx(
            0.021, rel=0.10
        )
        assert offload_large.banking_time_mic(100_000) == pytest.approx(
            0.034, rel=0.05
        )

    def test_transfer(self, offload_small, offload_large):
        assert offload_small.transfer_time(100_000) == pytest.approx(0.46, rel=0.2)
        assert offload_large.transfer_time(100_000) == pytest.approx(2.21, rel=0.05)

    def test_mic_compute(self, offload_small, offload_large):
        assert offload_small.mic_compute_time(100_000) == pytest.approx(
            0.017, rel=0.05
        )
        assert offload_large.mic_compute_time(100_000) == pytest.approx(
            0.101, rel=0.05
        )

    def test_grid_transfer_5gb_per_s(self, offload_large):
        """Paper: ~1 second per 5 GB, grid is 8.37 GB."""
        assert offload_large.grid_transfer_time() == pytest.approx(1.7, rel=0.15)


class TestOffloadCrossover:
    def test_crossover_near_1e4(self, offload_small):
        """Fig. 3: offload profitable above ~10,000 particles."""
        n = offload_small.crossover_particles()
        assert 3_000 < n < 30_000

    def test_unprofitable_below(self, offload_small):
        assert not offload_small.profitable(1_000)

    def test_profitable_above(self, offload_small):
        assert offload_small.profitable(1_000_000)

    def test_ratio_trends(self, offload_small):
        """Fig. 3's trends: transfer ratio falls, host-XS ratio rises,
        MIC-compute ratio falls as N grows."""
        lo = offload_small.normalized_ratios(1_000)
        hi = offload_small.normalized_ratios(1_000_000)
        assert hi["transfer"] < lo["transfer"]
        assert hi["host_xs_compute"] > lo["host_xs_compute"]
        assert hi["mic_compute"] <= lo["mic_compute"]

    def test_rejects_ooo_target(self):
        with pytest.raises(ExecutionError):
            OffloadCostModel(JLSE_HOST, JLSE_HOST, PCIE_GEN2_X16, "hm-small")


class TestNative:
    def test_fig4_speedup(self):
        """Fig. 4: MIC native total time ~1.5x faster than host."""
        host = NativeModel(JLSE_HOST, "hm-large")
        mic = NativeModel(MIC_7120A, "hm-large")
        ratio = host.total_time(10_000_000, 2, 8) / mic.total_time(
            10_000_000, 2, 8
        )
        assert 1.4 < ratio < 1.75

    def test_alpha_function(self):
        a = alpha(JLSE_HOST, MIC_7120A, "hm-large", 100_000)
        assert a == pytest.approx(0.62, abs=0.02)

    def test_alpha_stable_above_1e4(self):
        """Fig. 5: alpha consistent when simulating at least 1e4 particles
        (the paper quotes 0.61-0.62; the model stays within a narrow band)."""
        values = [
            alpha(JLSE_HOST, MIC_7120A, "hm-large", n)
            for n in (10_000, 30_000, 100_000, 1_000_000)
        ]
        assert max(values) - min(values) < 0.06
        assert all(0.58 < v < 0.68 for v in values)

    def test_alpha_drifts_below_1e4(self):
        """Fig. 6's 1024-node tail mechanism: with ~1e4 particles or fewer
        per node, alpha rises (the MIC starves first)."""
        assert alpha(JLSE_HOST, MIC_7120A, "hm-large", 1_000) > 1.1 * alpha(
            JLSE_HOST, MIC_7120A, "hm-large", 100_000
        )

    def test_active_batches_slightly_slower(self):
        m = NativeModel(MIC_7120A, "hm-large")
        assert m.calculation_rate(100_000, active=True) < m.calculation_rate(
            100_000, active=False
        )

    def test_oom_returns_zero(self):
        m = NativeModel(MIC_7120A, "hm-large")
        assert m.calculation_rate(10**9) == 0.0

    def test_small_model_faster(self):
        small = NativeModel(MIC_7120A, "hm-small")
        large = NativeModel(MIC_7120A, "hm-large")
        assert small.calculation_rate(100_000) > large.calculation_rate(100_000)


class TestSymmetricTableIII:
    @pytest.fixture(scope="class")
    def nodes(self):
        return {
            "cpu": SymmetricNode(JLSE_HOST, [], "hm-large"),
            "1mic": SymmetricNode(JLSE_HOST, [MIC_7120A], "hm-large"),
            "2mic": SymmetricNode(JLSE_HOST, [MIC_7120A, MIC_7120A], "hm-large"),
        }

    def test_cpu_only_anchor(self, nodes):
        assert nodes["cpu"].calculation_rate(100_000) == pytest.approx(
            4050, rel=0.05
        )

    def test_equal_split_loses_to_ideal(self, nodes):
        """Table III: static equal split under-performs the sum of rates."""
        for key in ("1mic", "2mic"):
            node = nodes[key]
            assert node.calculation_rate(100_000, "equal") < node.ideal_rate(
                100_000
            )

    def test_alpha_balancing_recovers(self, nodes):
        """Load balancing with alpha=0.62 recovers most of the gap."""
        for key in ("1mic", "2mic"):
            node = nodes[key]
            equal = node.calculation_rate(100_000, "equal")
            balanced = node.calculation_rate(100_000, "alpha", 0.62)
            assert balanced > equal

    def test_2mic_balanced_near_17k(self, nodes):
        """The paper's headline: 17,098 n/s with CPU + 2 MICs balanced."""
        rate = nodes["2mic"].calculation_rate(100_000, "alpha", 0.62)
        assert rate == pytest.approx(17_098, rel=0.08)

    def test_2mic_vs_cpu_factor_4(self, nodes):
        """Abstract: '4x higher when balancing load between the CPU and
        2 MICs'."""
        ratio = nodes["2mic"].calculation_rate(100_000, "alpha", 0.62) / nodes[
            "cpu"
        ].calculation_rate(100_000)
        assert ratio == pytest.approx(4.0, abs=0.5)

    def test_1mic_vs_cpu_factor_2_5(self, nodes):
        """Abstract: '2.5x higher when balancing load between CPU and 1 MIC'."""
        ratio = nodes["1mic"].calculation_rate(100_000, "alpha", 0.62) / nodes[
            "cpu"
        ].calculation_rate(100_000)
        assert ratio == pytest.approx(2.5, abs=0.3)

    def test_unknown_strategy(self, nodes):
        with pytest.raises(ExecutionError):
            nodes["1mic"].calculation_rate(1000, "magic")

    def test_alpha_strategy_requires_alpha(self, nodes):
        with pytest.raises(ExecutionError):
            nodes["1mic"].calculation_rate(1000, "alpha")
