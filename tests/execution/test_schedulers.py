"""Cross-backend equivalence under every execution model.

The schedulers (native, offload, symmetric) are *schedules over a
backend*: whichever backend an :class:`ExecutionContext` carries, the
scheduler must preserve the history/event equivalence contract —
tally floats to the summation-order tolerance (rel 1e-12, the same
contract as ``tests/transport/test_equivalence.py``), work counters,
bank contents, and queue-trace column totals exactly.  The symmetric
split must additionally be **bit-identical** to the unsplit run of the
same backend (global-id RNG keying + canonical bank ordering), and the
equivalence must survive a mid-run crash + checkpoint resume.
"""

import numpy as np
import pytest

from repro.data.unionized import UnionizedGrid
from repro.execution import (
    ExecutionContext,
    NativeScheduler,
    OffloadScheduler,
    SymmetricScheduler,
)
from repro.execution.offload import OffloadCostModel
from repro.machine.presets import JLSE_HOST, MIC_7120A, PCIE_GEN2_X16
from repro.resilience import FaultKind, FaultPlan, SimulatedCrash, latest_checkpoint
from repro.transport import Settings, Simulation
from repro.transport.context import TransportContext


SCHEDULERS = {
    "native": lambda: NativeScheduler(),
    "offload": lambda: OffloadScheduler(),
    "symmetric": lambda: SymmetricScheduler(n_ranks=3),
}


@pytest.fixture(scope="module")
def union(small_library):
    return UnionizedGrid(small_library)


def source(n, seed=5):
    rng = np.random.default_rng(seed)
    pos = np.column_stack(
        [
            rng.uniform(-0.3, 0.3, n),
            rng.uniform(-0.3, 0.3, n),
            rng.uniform(-150, 150, n),
        ]
    )
    return pos, np.full(n, 1.0)


def run_scheduled(small_library, union, backend, scheduler, n=60):
    ctx = TransportContext.create(
        small_library, pincell=True, union=union, master_seed=7
    )
    ec = ExecutionContext.create(
        transport=ctx, backend=backend, record_stats=True
    )
    tallies = ec.new_tallies()
    pos, en = source(n)
    bank = scheduler.run_generation(ec, pos, en, tallies, 1.0, 0)
    return ctx, ec, tallies, bank


class TestHistoryEventEquivalence:
    """Satellite contract: history vs event fingerprints under each model."""

    @pytest.mark.parametrize("name", sorted(SCHEDULERS))
    def test_tallies_counters_and_banks(self, small_library, union, name):
        ch, eh, th, bh = run_scheduled(
            small_library, union, "history", SCHEDULERS[name]()
        )
        ce, ee, te, be = run_scheduled(
            small_library, union, "event", SCHEDULERS[name]()
        )
        # Tally floats: identical game, different summation order.
        assert te.collision == pytest.approx(th.collision, rel=1e-12)
        assert te.absorption == pytest.approx(th.absorption, rel=1e-12)
        assert te.track_length == pytest.approx(th.track_length, rel=1e-12)
        # Integer fingerprints: exact.
        assert te.n_collisions == th.n_collisions
        assert te.n_leaks == th.n_leaks
        assert ch.counters.as_dict() == ce.counters.as_dict()
        # Fission banks: same sites in the same canonical order.
        assert len(bh) == len(be)
        np.testing.assert_allclose(
            bh.positions, be.positions, rtol=1e-12, atol=1e-12
        )
        np.testing.assert_allclose(bh.energies, be.energies, rtol=1e-12)

    @pytest.mark.parametrize("name", sorted(SCHEDULERS))
    def test_queue_trace_column_totals(self, small_library, union, name):
        """Both backends record the same total work per stage, whatever
        the schedule chops it into."""
        _, eh, _, _ = run_scheduled(
            small_library, union, "history", SCHEDULERS[name]()
        )
        _, ee, _, _ = run_scheduled(
            small_library, union, "event", SCHEDULERS[name]()
        )
        for col in ("lookup_counts", "collision_counts", "crossing_counts"):
            assert int(getattr(eh.stats, col).sum()) == int(
                getattr(ee.stats, col).sum()
            )


class TestSymmetricSplitInvariance:
    @pytest.mark.parametrize("backend", ["history", "event"])
    @pytest.mark.parametrize("n_ranks", [2, 4])
    def test_split_bit_identical_to_unsplit(
        self, small_library, union, backend, n_ranks
    ):
        """Same backend, split vs unsplit: banks and counters are exactly
        equal — RNG streams are keyed by global particle id and the bank's
        (parent, seq) ordering is split-invariant.  Tally floats see one
        more partial-sum reassociation (per-rank accumulate, then merge),
        so they carry the usual summation-order tolerance."""
        c1, _, t1, b1 = run_scheduled(
            small_library, union, backend, NativeScheduler()
        )
        c2, _, t2, b2 = run_scheduled(
            small_library, union, backend,
            SymmetricScheduler(n_ranks=n_ranks),
        )
        assert t1.collision == pytest.approx(t2.collision, rel=1e-12)
        assert t1.absorption == pytest.approx(t2.absorption, rel=1e-12)
        assert t1.track_length == pytest.approx(t2.track_length, rel=1e-12)
        assert t1.n_collisions == t2.n_collisions
        assert c1.counters.as_dict() == c2.counters.as_dict()
        assert len(b1) == len(b2)
        np.testing.assert_array_equal(b1.positions, b2.positions)
        np.testing.assert_array_equal(b1.energies, b2.energies)

    def test_uneven_split_covers_every_particle(self, small_library, union):
        """61 particles over 3 ranks: remainder slices still partition."""
        c1, _, _, b1 = run_scheduled(
            small_library, union, "event", NativeScheduler(), n=61
        )
        c2, _, _, b2 = run_scheduled(
            small_library, union, "event",
            SymmetricScheduler(n_ranks=3), n=61,
        )
        assert c1.counters.as_dict() == c2.counters.as_dict()
        np.testing.assert_array_equal(b1.energies, b2.energies)


class TestOffloadPricing:
    def test_priced_trace_from_either_backend(self, small_library, union):
        model = OffloadCostModel(
            JLSE_HOST, MIC_7120A, PCIE_GEN2_X16, "hm-small"
        )
        scheduler = OffloadScheduler(model=model)
        totals = {}
        for backend in ("history", "event"):
            ctx = TransportContext.create(
                small_library, pincell=True, union=union, master_seed=7
            )
            ec = ExecutionContext.create(
                transport=ctx, backend=backend, record_stats=True
            )
            pos, en = source(50)
            scheduler.run_generation(ec, pos, en, ec.new_tallies(), 1.0, 0)
            trace = scheduler.priced_trace(ec)
            assert trace.n_iterations == ec.stats.iterations
            assert trace.total_s > 0
            totals[backend] = sum(trace.bank_sizes)
        # Same lookups overall, so the same banked-particle total is priced.
        assert totals["history"] == totals["event"]

    def test_priced_trace_requires_stats(self, small_library, union):
        ctx = TransportContext.create(
            small_library, pincell=True, union=union, master_seed=7
        )
        ec = ExecutionContext.create(transport=ctx, backend="event")
        with pytest.raises(ValueError, match="record_stats"):
            ec.offload_trace(
                OffloadCostModel(JLSE_HOST, MIC_7120A, PCIE_GEN2_X16,
                                 "hm-small")
            )


class TestEquivalenceSurvivesResume:
    """The history/event contract holds through a crash + resume."""

    BASE = dict(n_particles=60, n_inactive=1, n_active=3, pincell=True,
                seed=11)

    def _crashed_resumed(self, library, tmp_path, mode):
        settings = Settings(
            **self.BASE, mode=mode,
            checkpoint_every=1, checkpoint_dir=str(tmp_path / mode),
        )
        plan = FaultPlan.single(FaultKind.MID_BATCH_KILL, batch=2)
        with pytest.raises(SimulatedCrash):
            Simulation(library, settings).run(fault_plan=plan)
        ckpt = latest_checkpoint(tmp_path / mode)
        assert ckpt is not None
        return Simulation(library, settings).run(resume_from=ckpt)

    def test_history_vs_event_after_resume(self, small_library, tmp_path):
        rh = self._crashed_resumed(small_library, tmp_path, "history")
        re_ = self._crashed_resumed(small_library, tmp_path, "event")
        assert re_.statistics.k_collision == pytest.approx(
            rh.statistics.k_collision, rel=1e-12
        )
        assert re_.statistics.k_absorption == pytest.approx(
            rh.statistics.k_absorption, rel=1e-12
        )
        assert re_.statistics.entropy == pytest.approx(
            rh.statistics.entropy, rel=1e-12
        )
        assert re_.counters.as_dict() == rh.counters.as_dict()

    @pytest.mark.parametrize("mode", ["history", "event"])
    def test_resume_matches_uninterrupted(self, small_library, tmp_path, mode):
        reference = Simulation(
            small_library, Settings(**self.BASE, mode=mode)
        ).run()
        resumed = self._crashed_resumed(small_library, tmp_path, mode)
        assert resumed.statistics.k_collision == reference.statistics.k_collision
        assert resumed.counters.as_dict() == reference.counters.as_dict()
