"""Tests for Eq. 3 load balancing and the adaptive alpha controller."""

import pytest

from repro.errors import ExecutionError
from repro.execution.loadbalance import (
    AdaptiveAlphaController,
    alpha_split,
    equal_split,
)


class TestEqualSplit:
    def test_even(self):
        assert equal_split(100, 4) == [25, 25, 25, 25]

    def test_remainder_to_first(self):
        assert equal_split(10, 3) == [4, 3, 3]

    def test_single_rank(self):
        assert equal_split(7, 1) == [7]

    def test_invalid(self):
        with pytest.raises(ExecutionError):
            equal_split(10, 0)


class TestAlphaSplit:
    def test_paper_example(self):
        """Paper §III-B3: 1e7 particles, alpha=0.62 -> (6172840, 3827160)."""
        n_mic, n_cpu = alpha_split(10_000_000, 1, 1, 0.62)
        assert n_mic == 6_172_840
        assert n_cpu == 3_827_160

    def test_total_conserved(self):
        for alpha in (0.3, 0.62, 1.0, 2.0):
            for p_mic, p_cpu in [(1, 1), (2, 1), (2, 2), (4, 2)]:
                n_mic, n_cpu = alpha_split(1_000_003, p_mic, p_cpu, alpha)
                assert p_mic * n_mic + p_cpu * n_cpu <= 1_000_003
                # Rounding loses at most p_mic particles.
                assert p_mic * n_mic + p_cpu * n_cpu > 1_000_003 - p_mic

    def test_alpha_one_is_nearly_equal(self):
        n_mic, n_cpu = alpha_split(1000, 1, 1, 1.0)
        assert abs(n_mic - n_cpu) <= 1

    def test_small_alpha_gives_mic_more(self):
        n_mic, n_cpu = alpha_split(1000, 1, 1, 0.5)
        assert n_mic > n_cpu
        assert n_cpu / n_mic == pytest.approx(0.5, abs=0.01)

    def test_no_mics(self):
        n_mic, n_cpu = alpha_split(1000, 0, 2, 0.62)
        assert n_mic == 0 and n_cpu == 500

    def test_validation(self):
        with pytest.raises(ExecutionError):
            alpha_split(100, 0, 0, 0.5)
        with pytest.raises(ExecutionError):
            alpha_split(100, 1, 1, -0.1)


class TestAdaptiveAlpha:
    def test_starts_equal(self):
        ctrl = AdaptiveAlphaController(p_mic=1, p_cpu=1)
        n_mic, n_cpu = ctrl.split(1000)
        assert n_mic == n_cpu == 500

    def test_first_observation_sets_alpha(self):
        ctrl = AdaptiveAlphaController(p_mic=1, p_cpu=1)
        a = ctrl.observe(cpu_rate=4050.0, mic_rate=6641.0)
        assert a == pytest.approx(0.61, abs=0.005)

    def test_split_after_observation(self):
        ctrl = AdaptiveAlphaController(p_mic=1, p_cpu=1)
        ctrl.observe(4050.0, 6641.0)
        n_mic, n_cpu = ctrl.split(100_000)
        assert n_mic > n_cpu
        assert n_cpu / n_mic == pytest.approx(0.61, abs=0.01)

    def test_smoothing(self):
        ctrl = AdaptiveAlphaController(p_mic=1, p_cpu=1, smoothing=0.5)
        ctrl.observe(1000.0, 1000.0)  # alpha = 1
        a = ctrl.observe(500.0, 1000.0)  # measured 0.5
        assert a == pytest.approx(0.75)

    def test_converges_to_true_alpha(self):
        ctrl = AdaptiveAlphaController(p_mic=1, p_cpu=1, smoothing=0.5)
        for _ in range(12):
            ctrl.observe(4050.0, 6641.0)
        assert ctrl.alpha == pytest.approx(4050 / 6641, rel=1e-6)

    def test_rejects_bad_rates(self):
        ctrl = AdaptiveAlphaController(p_mic=1, p_cpu=1)
        with pytest.raises(ExecutionError):
            ctrl.observe(0.0, 100.0)
