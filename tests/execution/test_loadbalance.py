"""Tests for Eq. 3 load balancing, its N-way fleet generalization, and
the adaptive alpha controller."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.execution.loadbalance import (
    AdaptiveAlphaController,
    alpha_split,
    alpha_split_counts,
    equal_split,
    fleet_split,
)


class TestEqualSplit:
    def test_even(self):
        assert equal_split(100, 4) == [25, 25, 25, 25]

    def test_remainder_to_first(self):
        assert equal_split(10, 3) == [4, 3, 3]

    def test_single_rank(self):
        assert equal_split(7, 1) == [7]

    def test_invalid(self):
        with pytest.raises(ExecutionError):
            equal_split(10, 0)


class TestAlphaSplit:
    def test_paper_example(self):
        """Paper §III-B3: 1e7 particles, alpha=0.62 -> (6172840, 3827160)."""
        n_mic, n_cpu = alpha_split(10_000_000, 1, 1, 0.62)
        assert n_mic == 6_172_840
        assert n_cpu == 3_827_160

    def test_total_conserved(self):
        for alpha in (0.3, 0.62, 1.0, 2.0):
            for p_mic, p_cpu in [(1, 1), (2, 1), (2, 2), (4, 2)]:
                n_mic, n_cpu = alpha_split(1_000_003, p_mic, p_cpu, alpha)
                assert p_mic * n_mic + p_cpu * n_cpu <= 1_000_003
                # Rounding loses at most p_mic particles.
                assert p_mic * n_mic + p_cpu * n_cpu > 1_000_003 - p_mic

    def test_alpha_one_is_nearly_equal(self):
        n_mic, n_cpu = alpha_split(1000, 1, 1, 1.0)
        assert abs(n_mic - n_cpu) <= 1

    def test_small_alpha_gives_mic_more(self):
        n_mic, n_cpu = alpha_split(1000, 1, 1, 0.5)
        assert n_mic > n_cpu
        assert n_cpu / n_mic == pytest.approx(0.5, abs=0.01)

    def test_no_mics(self):
        n_mic, n_cpu = alpha_split(1000, 0, 2, 0.62)
        assert n_mic == 0 and n_cpu == 500

    def test_validation(self):
        with pytest.raises(ExecutionError):
            alpha_split(100, 0, 0, 0.5)
        with pytest.raises(ExecutionError):
            alpha_split(100, 1, 1, -0.1)

    def test_no_cpus(self):
        """p_cpu == 0 degenerate branch: everything goes to the MICs."""
        n_mic, n_cpu = alpha_split(1001, 2, 0, 0.62)
        assert n_cpu == 0
        assert n_mic == equal_split(1001, 2)[0] == 501

    def test_no_mics_takes_ceil_not_floor(self):
        """p_mic == 0 branch uses the equal split's first-rank (ceil)
        count, so no particle is silently dropped."""
        n_mic, n_cpu = alpha_split(1001, 0, 2, 0.62)
        assert (n_mic, n_cpu) == (0, 501)

    def test_extreme_alpha_clamps_instead_of_negative_mic(self):
        """Rounding with an extreme alpha and many CPU ranks used to
        drive the MIC count negative; the clamp keeps it at zero."""
        n_mic, n_cpu = alpha_split(8, 1, 9, 10.0)
        assert (n_mic, n_cpu) == (8, 0)
        assert n_mic >= 0 and n_cpu >= 0

    @given(
        n=st.integers(min_value=0, max_value=10**7),
        p_mic=st.integers(min_value=0, max_value=6),
        p_cpu=st.integers(min_value=0, max_value=6),
        alpha=st.floats(min_value=1e-3, max_value=1e3),
    )
    @settings(max_examples=200, deadline=None)
    def test_never_negative_and_never_overcommits(
        self, n, p_mic, p_cpu, alpha
    ):
        if p_mic + p_cpu == 0:
            return
        n_mic, n_cpu = alpha_split(n, p_mic, p_cpu, alpha)
        assert n_mic >= 0 and n_cpu >= 0
        if p_mic > 0 and p_cpu > 0:
            assert p_mic * n_mic + p_cpu * n_cpu <= n
        elif p_mic == 0:
            # Degenerate class: first-rank (ceil) count of the equal split.
            assert n_cpu == equal_split(n, p_cpu)[0]
        else:
            assert n_mic == equal_split(n, p_mic)[0]


class TestAlphaSplitCounts:
    def test_sums_exactly(self):
        """Unlike scalar alpha_split (which floors the per-MIC count),
        the per-rank counts always sum to exactly n_total."""
        mic_counts, cpu_counts = alpha_split_counts(1_000_003, 3, 2, 0.62)
        assert sum(mic_counts) + sum(cpu_counts) == 1_000_003
        assert len(mic_counts) == 3 and len(cpu_counts) == 2

    def test_cpu_count_bit_identical_to_scalar(self):
        for n, alpha in [(10_000_000, 0.62), (999_999, 1.7), (12345, 0.3)]:
            _, n_cpu = alpha_split(n, 2, 3, alpha)
            _, cpu_counts = alpha_split_counts(n, 2, 3, alpha)
            assert cpu_counts == [n_cpu] * 3

    def test_mic_remainder_spread_equal_split_style(self):
        mic_counts, _ = alpha_split_counts(1_000_001, 3, 1, 0.62)
        assert max(mic_counts) - min(mic_counts) <= 1
        assert mic_counts == sorted(mic_counts, reverse=True)

    def test_degenerate_classes(self):
        assert alpha_split_counts(10, 0, 3, 0.5) == ([], [4, 3, 3])
        assert alpha_split_counts(10, 3, 0, 0.5) == ([4, 3, 3], [])

    @given(
        n=st.integers(min_value=0, max_value=10**7),
        p_mic=st.integers(min_value=1, max_value=6),
        p_cpu=st.integers(min_value=1, max_value=6),
        alpha=st.floats(min_value=1e-3, max_value=1e3),
    )
    @settings(max_examples=200, deadline=None)
    def test_rounding_invariant(self, n, p_mic, p_cpu, alpha):
        """The satellite's rounding invariant: per-rank counts are
        non-negative and sum to exactly n_total, for any alpha."""
        mic_counts, cpu_counts = alpha_split_counts(n, p_mic, p_cpu, alpha)
        assert all(c >= 0 for c in (*mic_counts, *cpu_counts))
        assert sum(mic_counts) + sum(cpu_counts) == n


class TestFleetSplit:
    def test_n2_bit_identical_to_alpha_split_paper_example(self):
        """Eq. 3 is the N=2 special case: weights [1, alpha] reproduce
        alpha_split bit-for-bit (same float expression, same rounding)."""
        n_mic, n_cpu = alpha_split(10_000_000, 1, 1, 0.62)
        assert fleet_split(10_000_000, [1.0, 0.62]) == [n_mic, n_cpu]
        assert fleet_split(10_000_000, [1.0, 0.62]) == [6_172_840, 3_827_160]

    @given(
        n=st.integers(min_value=0, max_value=10**7),
        alpha=st.floats(min_value=1e-3, max_value=1e3),
    )
    @settings(max_examples=300, deadline=None)
    def test_n2_bit_identity_sweep(self, n, alpha):
        n_mic, n_cpu = alpha_split(n, 1, 1, alpha)
        if n_mic < 0:  # pragma: no cover - clamped away in alpha_split
            return
        assert fleet_split(n, [1.0, alpha]) == [n_mic, n_cpu]

    def test_scale_invariant(self):
        """Weights are rates on any scale; only ratios matter."""
        w = [4050.0, 6641.0, 1234.5]
        assert fleet_split(10**6, w) == fleet_split(
            10**6, [x / 4050.0 for x in w]
        )

    def test_proportionality(self):
        counts = fleet_split(1_000_000, [1.0, 2.0, 3.0])
        assert sum(counts) == 1_000_000
        assert counts[1] / counts[0] == pytest.approx(2.0, rel=1e-4)
        assert counts[2] / counts[0] == pytest.approx(3.0, rel=1e-4)

    def test_zero_weight_rank_gets_nothing(self):
        counts = fleet_split(1000, [1.0, 0.0, 1.0])
        assert counts[1] == 0
        assert sum(counts) == 1000

    def test_zero_weight_anchor_skipped(self):
        """The anchor (remainder absorber) is the first *positive* rank."""
        counts = fleet_split(7, [0.0, 1.0, 1.0])
        assert counts[0] == 0
        assert sum(counts) == 7

    def test_single_rank(self):
        assert fleet_split(42, [3.0]) == [42]

    def test_zero_particles(self):
        assert fleet_split(0, [1.0, 2.0]) == [0, 0]

    def test_overshoot_decrements_deterministically(self):
        """When rounding overcommits, counts are walked back from the
        largest (ties to the lowest rank) until the anchor is whole."""
        for n in range(1, 200):
            counts = fleet_split(n, [1e-6, 1.0, 1.0, 1.0])
            assert all(c >= 0 for c in counts)
            assert sum(counts) == n

    def test_validation(self):
        with pytest.raises(ExecutionError):
            fleet_split(-1, [1.0])
        with pytest.raises(ExecutionError):
            fleet_split(10, [])
        with pytest.raises(ExecutionError):
            fleet_split(10, [1.0, -0.5])
        with pytest.raises(ExecutionError):
            fleet_split(10, [0.0, 0.0])

    @given(
        n=st.integers(min_value=0, max_value=10**7),
        weights=st.lists(
            st.floats(min_value=0.0, max_value=1e6),
            min_size=1,
            max_size=12,
        ),
    )
    @settings(max_examples=300, deadline=None)
    def test_rounding_invariant(self, n, weights):
        """The satellite's rounding invariant, N-way: counts are
        non-negative, zero-weight ranks idle, and the sum is exact."""
        if sum(weights) <= 0:
            with pytest.raises(ExecutionError):
                fleet_split(n, weights)
            return
        counts = fleet_split(n, weights)
        assert len(counts) == len(weights)
        assert all(c >= 0 for c in counts)
        assert sum(counts) == n
        assert all(c == 0 for c, w in zip(counts, weights) if w == 0)


class TestAdaptiveAlpha:
    def test_starts_equal(self):
        ctrl = AdaptiveAlphaController(p_mic=1, p_cpu=1)
        n_mic, n_cpu = ctrl.split(1000)
        assert n_mic == n_cpu == 500

    def test_first_observation_sets_alpha(self):
        ctrl = AdaptiveAlphaController(p_mic=1, p_cpu=1)
        a = ctrl.observe(cpu_rate=4050.0, mic_rate=6641.0)
        assert a == pytest.approx(0.61, abs=0.005)

    def test_split_after_observation(self):
        ctrl = AdaptiveAlphaController(p_mic=1, p_cpu=1)
        ctrl.observe(4050.0, 6641.0)
        n_mic, n_cpu = ctrl.split(100_000)
        assert n_mic > n_cpu
        assert n_cpu / n_mic == pytest.approx(0.61, abs=0.01)

    def test_smoothing(self):
        ctrl = AdaptiveAlphaController(p_mic=1, p_cpu=1, smoothing=0.5)
        ctrl.observe(1000.0, 1000.0)  # alpha = 1
        a = ctrl.observe(500.0, 1000.0)  # measured 0.5
        assert a == pytest.approx(0.75)

    def test_converges_to_true_alpha(self):
        ctrl = AdaptiveAlphaController(p_mic=1, p_cpu=1, smoothing=0.5)
        for _ in range(12):
            ctrl.observe(4050.0, 6641.0)
        assert ctrl.alpha == pytest.approx(4050 / 6641, rel=1e-6)

    def test_rejects_bad_rates(self):
        ctrl = AdaptiveAlphaController(p_mic=1, p_cpu=1)
        with pytest.raises(ExecutionError):
            ctrl.observe(0.0, 100.0)


class TestRateShift:
    """Satellite: a mid-run regime change (device throttles 4x at batch k)
    snaps alpha to the measured ratio instead of EMA-crawling to it — the
    split re-converges within two batches."""

    def test_four_x_shift_converges_within_two_batches(self):
        ctrl = AdaptiveAlphaController(p_mic=1, p_cpu=1, smoothing=0.5)
        for _ in range(6):
            ctrl.observe(cpu_rate=4000.0, mic_rate=6600.0)
        settled = ctrl.alpha
        assert settled == pytest.approx(4000 / 6600, rel=1e-2)
        # Batch k: the MIC throttles 4x — the measured ratio quadruples,
        # far outside the shift window, so alpha snaps to it immediately.
        shifted = ctrl.observe(cpu_rate=4000.0, mic_rate=1650.0)
        true_alpha = 4000 / 1650
        assert shifted == pytest.approx(true_alpha)
        # Batch k+1 confirms the new regime; the split is converged.
        again = ctrl.observe(cpu_rate=4000.0, mic_rate=1650.0)
        assert again == pytest.approx(true_alpha, rel=1e-6)
        n_mic, n_cpu = ctrl.split(100_000)
        assert n_cpu / n_mic == pytest.approx(true_alpha, rel=1e-3)

    def test_ema_alone_would_not_converge_in_two_batches(self):
        """The control case motivating the snap: with the shift detector
        off, two post-shift batches still sit far from the new ratio."""
        ctrl = AdaptiveAlphaController(
            p_mic=1, p_cpu=1, smoothing=0.5, shift_factor=1.0
        )
        for _ in range(6):
            ctrl.observe(4000.0, 6600.0)
        for _ in range(2):
            ctrl.observe(4000.0, 1650.0)
        true_alpha = 4000 / 1650
        assert abs(ctrl.alpha - true_alpha) / true_alpha > 0.15

    def test_in_window_noise_still_smooths(self):
        """Ordinary batch noise (well inside the 2x window) keeps the EMA
        behaviour — the snap only fires on regime changes."""
        ctrl = AdaptiveAlphaController(p_mic=1, p_cpu=1, smoothing=0.5)
        ctrl.observe(1000.0, 1000.0)  # alpha = 1.0
        a = ctrl.observe(1100.0, 1000.0)  # measured 1.1: in-window
        assert a == pytest.approx(0.5 * 1.1 + 0.5 * 1.0)

    def test_shift_down_also_snaps(self):
        ctrl = AdaptiveAlphaController(p_mic=1, p_cpu=1, smoothing=0.5)
        ctrl.observe(1000.0, 1000.0)  # alpha = 1.0
        a = ctrl.observe(250.0, 1000.0)  # CPU throttles 4x
        assert a == pytest.approx(0.25)
