"""Tests for Eq. 3 load balancing and the adaptive alpha controller."""

import pytest

from repro.errors import ExecutionError
from repro.execution.loadbalance import (
    AdaptiveAlphaController,
    alpha_split,
    equal_split,
)


class TestEqualSplit:
    def test_even(self):
        assert equal_split(100, 4) == [25, 25, 25, 25]

    def test_remainder_to_first(self):
        assert equal_split(10, 3) == [4, 3, 3]

    def test_single_rank(self):
        assert equal_split(7, 1) == [7]

    def test_invalid(self):
        with pytest.raises(ExecutionError):
            equal_split(10, 0)


class TestAlphaSplit:
    def test_paper_example(self):
        """Paper §III-B3: 1e7 particles, alpha=0.62 -> (6172840, 3827160)."""
        n_mic, n_cpu = alpha_split(10_000_000, 1, 1, 0.62)
        assert n_mic == 6_172_840
        assert n_cpu == 3_827_160

    def test_total_conserved(self):
        for alpha in (0.3, 0.62, 1.0, 2.0):
            for p_mic, p_cpu in [(1, 1), (2, 1), (2, 2), (4, 2)]:
                n_mic, n_cpu = alpha_split(1_000_003, p_mic, p_cpu, alpha)
                assert p_mic * n_mic + p_cpu * n_cpu <= 1_000_003
                # Rounding loses at most p_mic particles.
                assert p_mic * n_mic + p_cpu * n_cpu > 1_000_003 - p_mic

    def test_alpha_one_is_nearly_equal(self):
        n_mic, n_cpu = alpha_split(1000, 1, 1, 1.0)
        assert abs(n_mic - n_cpu) <= 1

    def test_small_alpha_gives_mic_more(self):
        n_mic, n_cpu = alpha_split(1000, 1, 1, 0.5)
        assert n_mic > n_cpu
        assert n_cpu / n_mic == pytest.approx(0.5, abs=0.01)

    def test_no_mics(self):
        n_mic, n_cpu = alpha_split(1000, 0, 2, 0.62)
        assert n_mic == 0 and n_cpu == 500

    def test_validation(self):
        with pytest.raises(ExecutionError):
            alpha_split(100, 0, 0, 0.5)
        with pytest.raises(ExecutionError):
            alpha_split(100, 1, 1, -0.1)


class TestAdaptiveAlpha:
    def test_starts_equal(self):
        ctrl = AdaptiveAlphaController(p_mic=1, p_cpu=1)
        n_mic, n_cpu = ctrl.split(1000)
        assert n_mic == n_cpu == 500

    def test_first_observation_sets_alpha(self):
        ctrl = AdaptiveAlphaController(p_mic=1, p_cpu=1)
        a = ctrl.observe(cpu_rate=4050.0, mic_rate=6641.0)
        assert a == pytest.approx(0.61, abs=0.005)

    def test_split_after_observation(self):
        ctrl = AdaptiveAlphaController(p_mic=1, p_cpu=1)
        ctrl.observe(4050.0, 6641.0)
        n_mic, n_cpu = ctrl.split(100_000)
        assert n_mic > n_cpu
        assert n_cpu / n_mic == pytest.approx(0.61, abs=0.01)

    def test_smoothing(self):
        ctrl = AdaptiveAlphaController(p_mic=1, p_cpu=1, smoothing=0.5)
        ctrl.observe(1000.0, 1000.0)  # alpha = 1
        a = ctrl.observe(500.0, 1000.0)  # measured 0.5
        assert a == pytest.approx(0.75)

    def test_converges_to_true_alpha(self):
        ctrl = AdaptiveAlphaController(p_mic=1, p_cpu=1, smoothing=0.5)
        for _ in range(12):
            ctrl.observe(4050.0, 6641.0)
        assert ctrl.alpha == pytest.approx(4050 / 6641, rel=1e-6)

    def test_rejects_bad_rates(self):
        ctrl = AdaptiveAlphaController(p_mic=1, p_cpu=1)
        with pytest.raises(ExecutionError):
            ctrl.observe(0.0, 100.0)


class TestRateShift:
    """Satellite: a mid-run regime change (device throttles 4x at batch k)
    snaps alpha to the measured ratio instead of EMA-crawling to it — the
    split re-converges within two batches."""

    def test_four_x_shift_converges_within_two_batches(self):
        ctrl = AdaptiveAlphaController(p_mic=1, p_cpu=1, smoothing=0.5)
        for _ in range(6):
            ctrl.observe(cpu_rate=4000.0, mic_rate=6600.0)
        settled = ctrl.alpha
        assert settled == pytest.approx(4000 / 6600, rel=1e-2)
        # Batch k: the MIC throttles 4x — the measured ratio quadruples,
        # far outside the shift window, so alpha snaps to it immediately.
        shifted = ctrl.observe(cpu_rate=4000.0, mic_rate=1650.0)
        true_alpha = 4000 / 1650
        assert shifted == pytest.approx(true_alpha)
        # Batch k+1 confirms the new regime; the split is converged.
        again = ctrl.observe(cpu_rate=4000.0, mic_rate=1650.0)
        assert again == pytest.approx(true_alpha, rel=1e-6)
        n_mic, n_cpu = ctrl.split(100_000)
        assert n_cpu / n_mic == pytest.approx(true_alpha, rel=1e-3)

    def test_ema_alone_would_not_converge_in_two_batches(self):
        """The control case motivating the snap: with the shift detector
        off, two post-shift batches still sit far from the new ratio."""
        ctrl = AdaptiveAlphaController(
            p_mic=1, p_cpu=1, smoothing=0.5, shift_factor=1.0
        )
        for _ in range(6):
            ctrl.observe(4000.0, 6600.0)
        for _ in range(2):
            ctrl.observe(4000.0, 1650.0)
        true_alpha = 4000 / 1650
        assert abs(ctrl.alpha - true_alpha) / true_alpha > 0.15

    def test_in_window_noise_still_smooths(self):
        """Ordinary batch noise (well inside the 2x window) keeps the EMA
        behaviour — the snap only fires on regime changes."""
        ctrl = AdaptiveAlphaController(p_mic=1, p_cpu=1, smoothing=0.5)
        ctrl.observe(1000.0, 1000.0)  # alpha = 1.0
        a = ctrl.observe(1100.0, 1000.0)  # measured 1.1: in-window
        assert a == pytest.approx(0.5 * 1.1 + 0.5 * 1.0)

    def test_shift_down_also_snaps(self):
        ctrl = AdaptiveAlphaController(p_mic=1, p_cpu=1, smoothing=0.5)
        ctrl.observe(1000.0, 1000.0)  # alpha = 1.0
        a = ctrl.observe(250.0, 1000.0)  # CPU throttles 4x
        assert a == pytest.approx(0.25)
