"""Work-stealing rebalancer: plan unit tests + on-contract scheduler runs.

The acceptance claims (ISSUE 9): the plan is a pure function of
``(n, alive, rates)``; with equal rates the rebalanced run is *fully*
bitwise identical to the static run; with skewed rates the rebalanced
run's banks and work counters stay bit-identical to an unsplit serial
run (tallies to the repo's rel 1e-12 summation-order tolerance), because
every stolen slice keeps its global particle ids; and a mid-run 4x rate
shift is reflected in the assignment within two batches.
"""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.execution import (
    ExecutionContext,
    NativeScheduler,
    SymmetricScheduler,
    WorkStealingRebalancer,
)
from repro.execution.loadbalance import equal_split, fleet_split
from repro.supervise import SupervisionPolicy, Supervisor
from repro.transport.context import TransportContext

#: Straggler eviction off: these tests exercise rebalancing, not eviction,
#: and wall-clock noise on tiny slices must not evict anyone.
LENIENT = SupervisionPolicy(straggler_factor=1.0e9)


def _covered(plan):
    ids = []
    for _, sl in plan:
        ids.extend(range(sl.start, sl.stop))
    return ids


class TestPlan:
    def test_covers_exactly_once_in_global_order(self):
        plan = WorkStealingRebalancer().plan(
            0, 1000, [0, 1, 2], [1.0, 1.0, 4.0]
        )
        assert _covered(plan) == list(range(1000))
        starts = [sl.start for _, sl in plan]
        assert starts == sorted(starts)

    def test_counts_match_fleet_split_targets(self):
        rates = [1.0, 1.0, 2.0]
        plan = WorkStealingRebalancer().plan(0, 100, [0, 1, 2], rates)
        counts = [0, 0, 0]
        for rank, sl in plan:
            counts[rank] += sl.stop - sl.start
        assert counts == fleet_split(100, rates)

    def test_no_rates_runs_equal(self):
        """First batch (no measurements yet): the static equal split."""
        rebal = WorkStealingRebalancer()
        plan = rebal.plan(0, 100, [0, 1, 2], None)
        assert [sl.stop - sl.start for _, sl in plan] == equal_split(100, 3)
        assert rebal.events == []

    def test_equal_rates_are_a_noop(self):
        rebal = WorkStealingRebalancer()
        plan = rebal.plan(0, 99, [0, 1, 2], [7.0, 7.0, 7.0])
        assert [sl.stop - sl.start for _, sl in plan] == equal_split(99, 3)
        assert rebal.events == []

    def test_below_min_move_fraction_is_a_noop(self):
        """Sub-threshold imbalance is barrier noise — leave the split."""
        rebal = WorkStealingRebalancer(min_move_fraction=0.10)
        plan = rebal.plan(0, 1000, [0, 1], [1.0, 1.05])
        assert [sl.stop - sl.start for _, sl in plan] == [500, 500]
        assert rebal.events == []

    def test_donors_release_tails_receivers_absorb(self):
        """Slow ranks keep the *head* of their equal slice; only tails
        move, so most particles never change rank."""
        rebal = WorkStealingRebalancer()
        plan = rebal.plan(3, 100, [0, 1, 2], [1.0, 1.0, 2.0])
        by_rank = {}
        for rank, sl in plan:
            by_rank.setdefault(rank, []).append((sl.start, sl.stop))
        # Equal base was [34, 33, 33]; targets [25, 25, 50].
        assert by_rank[0][0] == (0, 25)
        assert by_rank[1][0] == (34, 59)
        assert all(ev.batch == 3 for ev in rebal.events)
        assert {ev.receiver for ev in rebal.events} == {2}
        assert {ev.donor for ev in rebal.events} == {0, 1}
        moved = sum(ev.count for ev in rebal.events)
        assert moved == (34 - 25) + (33 - 25)

    def test_plan_is_deterministic_and_stateless(self):
        a = WorkStealingRebalancer().plan(0, 12345, [0, 2, 5], [3.0, 1.0, 2.0])
        b = WorkStealingRebalancer().plan(7, 12345, [0, 2, 5], [3.0, 1.0, 2.0])
        assert a == b

    def test_alive_subset_uses_alive_ranks_only(self):
        plan = WorkStealingRebalancer().plan(0, 90, [1, 3], [1.0, 2.0])
        assert {rank for rank, _ in plan} <= {1, 3}
        assert _covered(plan) == list(range(90))

    def test_no_alive_ranks_rejected(self):
        with pytest.raises(ExecutionError):
            WorkStealingRebalancer().plan(0, 10, [], [1.0])

    def test_summary_aggregates_steal_traffic(self):
        rebal = WorkStealingRebalancer()
        rebal.plan(0, 100, [0, 1, 2], [1.0, 1.0, 2.0])
        rebal.plan(1, 100, [0, 1, 2], [1.0, 1.0, 2.0])
        s = rebal.summary()
        assert s["batches"] == 2
        assert s["steals"] == len(rebal.events)
        assert s["particles_moved"] == sum(ev.count for ev in rebal.events)
        assert set(s["pairs"]) == {"0->2", "1->2"}


# -- Scheduler integration ----------------------------------------------------


@pytest.fixture(scope="module")
def union(small_library):
    from repro.data.unionized import UnionizedGrid

    return UnionizedGrid(small_library)


def source(n, seed=5):
    rng = np.random.default_rng(seed)
    pos = np.column_stack(
        [
            rng.uniform(-0.3, 0.3, n),
            rng.uniform(-0.3, 0.3, n),
            rng.uniform(-150, 150, n),
        ]
    )
    return pos, np.full(n, 1.0)


def run_batches(
    library, union, scheduler, *, n_batches=3, n=48,
    supervisor=None, rebalancer=None, on_batch=None,
):
    """Run ``n_batches`` event-mode generations, each sourced from the
    previous bank; ``on_batch(i)`` runs before batch ``i`` (rate shifts)."""
    ctx = TransportContext.create(
        library, pincell=True, union=union, master_seed=7
    )
    ec = ExecutionContext.create(
        transport=ctx, backend="event",
        supervisor=supervisor, rebalancer=rebalancer,
    )
    tallies = ec.new_tallies()
    pos, en = source(n)
    banks = []
    for i in range(n_batches):
        if on_batch is not None:
            on_batch(i)
        bank = scheduler.run_generation(ec, pos, en, tallies, 1.0, 0)
        banks.append(bank)
        assert len(bank) > 0
        pos, en = bank.positions.copy(), bank.energies.copy()
    return ctx, tallies, banks


def assert_on_contract(ref, rebalanced):
    """Banks + counters exact, tallies to summation-order tolerance."""
    (c1, t1, b1), (c2, t2, b2) = ref, rebalanced
    assert c1.counters.as_dict() == c2.counters.as_dict()
    for bank1, bank2 in zip(b1, b2):
        assert len(bank1) == len(bank2)
        np.testing.assert_array_equal(bank1.positions, bank2.positions)
        np.testing.assert_array_equal(bank1.energies, bank2.energies)
    assert t2.collision == pytest.approx(t1.collision, rel=1e-12)
    assert t2.absorption == pytest.approx(t1.absorption, rel=1e-12)
    assert t2.track_length == pytest.approx(t1.track_length, rel=1e-12)
    assert t2.n_collisions == t1.n_collisions
    assert t2.n_leaks == t1.n_leaks


class TestSupervisedRebalancing:
    def test_skewed_run_on_contract_with_serial(self, small_library, union):
        """Rebalanced run (rank 2 measured 4x faster) vs the unsplit
        serial run: banks and counters bit-identical, tallies 1e-12 —
        stolen slices keep their global ids."""
        rates = {0: 100.0, 1: 100.0, 2: 400.0}
        rebal = WorkStealingRebalancer(rate_source=rates.get)
        rebalanced = run_batches(
            small_library, union, SymmetricScheduler(n_ranks=3),
            supervisor=Supervisor(n_ranks=3, policy=LENIENT),
            rebalancer=rebal,
        )
        serial = run_batches(small_library, union, NativeScheduler())
        assert_on_contract(serial, rebalanced)
        assert rebal.summary()["particles_moved"] > 0
        assert {ev.receiver for ev in rebal.events} == {2}

    def test_skewed_run_on_contract_with_static_final_assignment(
        self, small_library, union
    ):
        """The acceptance criterion verbatim: the work-stealing run vs a
        static run pinned to the same final assignment (a second
        rebalancer fed the same fixed rates plans identically, so the
        'static' reference executes exactly the converged assignment)."""
        rates = {0: 100.0, 1: 100.0, 2: 400.0}
        ws = WorkStealingRebalancer(rate_source=rates.get)
        rebalanced = run_batches(
            small_library, union, SymmetricScheduler(n_ranks=3),
            supervisor=Supervisor(n_ranks=3, policy=LENIENT),
            rebalancer=ws,
        )
        static = WorkStealingRebalancer(rate_source=rates.get)
        pinned = run_batches(
            small_library, union, SymmetricScheduler(n_ranks=3),
            supervisor=Supervisor(n_ranks=3, policy=LENIENT),
            rebalancer=static,
        )
        # Same plan both times, and on this static-rate run the contract
        # is exact equality, not just tolerance.
        assert ws.events == static.events
        assert_on_contract(pinned, rebalanced)
        (_, t1, _), (_, t2, _) = pinned, rebalanced
        assert (t1.collision, t1.absorption, t1.track_length) == (
            t2.collision, t2.absorption, t2.track_length
        )

    def test_equal_rates_fully_bitwise_vs_static_scheduler(
        self, small_library, union
    ):
        """Equal measured rates: the plan *is* the equal split, so the
        rebalanced run is the static supervised run, bit for bit
        (tallies included — same partition, same merge order)."""
        rebal = WorkStealingRebalancer(rate_source=lambda rank: 250.0)
        rebalanced = run_batches(
            small_library, union, SymmetricScheduler(n_ranks=3),
            supervisor=Supervisor(n_ranks=3, policy=LENIENT),
            rebalancer=rebal,
        )
        static = run_batches(
            small_library, union, SymmetricScheduler(n_ranks=3),
            supervisor=Supervisor(n_ranks=3, policy=LENIENT),
        )
        assert rebal.events == []
        assert_on_contract(static, rebalanced)
        (_, t1, _), (_, t2, _) = static, rebalanced
        assert (t1.collision, t1.absorption, t1.track_length) == (
            t2.collision, t2.absorption, t2.track_length
        )

    def test_monitor_rates_drive_the_plan_without_rate_source(
        self, small_library, union
    ):
        """Without a rate_source the plan reads the supervisor's health
        monitor EMA; the run completes on-contract with serial."""
        sup = Supervisor(n_ranks=3, policy=LENIENT)
        rebalanced = run_batches(
            small_library, union, SymmetricScheduler(n_ranks=3),
            supervisor=sup, rebalancer=WorkStealingRebalancer(),
            n_batches=4,
        )
        serial = run_batches(
            small_library, union, NativeScheduler(), n_batches=4
        )
        assert_on_contract(serial, rebalanced)
        assert sup.report()["batches"] == 4


class TestMidRunRateShift:
    """Satellite 3: a device throttles 4x mid-run; the measured-rate
    feed (the AdaptiveAlphaController pathway generalized N-way) moves
    the assignment within two batches, and the run stays on-contract."""

    def test_straggler_slice_reassigned_within_two_batches(
        self, small_library, union
    ):
        rates = {0: 400.0, 1: 400.0, 2: 400.0}
        rebal = WorkStealingRebalancer(rate_source=rates.get)

        def shift(batch):
            if batch == 2:  # rank 0 throttles 4x before batch 2
                rates[0] = 100.0

        rebalanced = run_batches(
            small_library, union, SymmetricScheduler(n_ranks=3),
            supervisor=Supervisor(n_ranks=3, policy=LENIENT),
            rebalancer=rebal, n_batches=4, on_batch=shift,
        )
        # Batches 0-1: balanced, no steals.  Batch 2 (first batch at the
        # new rates, i.e. within one barrier of the shift): rank 0
        # donates; it never receives.
        batches_with_steals = sorted({ev.batch for ev in rebal.events})
        assert batches_with_steals == [2, 3]
        assert all(
            ev.donor == 0 for ev in rebal.events if ev.batch == 2
        )
        assert all(ev.receiver != 0 for ev in rebal.events)
        # And the physics is untouched: on-contract with serial.
        serial = run_batches(
            small_library, union, NativeScheduler(), n_batches=4
        )
        assert_on_contract(serial, rebalanced)

    def test_shift_changes_assignment_not_results(
        self, small_library, union
    ):
        """The same run with and without the shift transports identical
        histories — partitioning is invisible to the physics."""
        rates = {0: 400.0, 1: 400.0, 2: 400.0}

        def shift(batch):
            if batch == 2:
                rates[0] = 100.0

        shifted = run_batches(
            small_library, union, SymmetricScheduler(n_ranks=3),
            supervisor=Supervisor(n_ranks=3, policy=LENIENT),
            rebalancer=WorkStealingRebalancer(rate_source=rates.get),
            n_batches=4, on_batch=shift,
        )
        steady = run_batches(
            small_library, union, SymmetricScheduler(n_ranks=3),
            supervisor=Supervisor(n_ranks=3, policy=LENIENT),
            rebalancer=WorkStealingRebalancer(
                rate_source=lambda rank: 400.0
            ),
            n_batches=4,
        )
        assert_on_contract(steady, shifted)
