"""Tests for the offload pipeline trace (measured banks x modelled costs)."""

import numpy as np
import pytest

from repro.data.unionized import UnionizedGrid
from repro.errors import ExecutionError
from repro.execution.offload import OffloadCostModel
from repro.execution.trace import trace_offload
from repro.machine.presets import JLSE_HOST, MIC_7120A, PCIE_GEN2_X16
from repro.transport.context import TransportContext
from repro.transport.events import EventLoopStats, run_generation_event
from repro.transport.tally import GlobalTallies


@pytest.fixture(scope="module")
def model():
    return OffloadCostModel(JLSE_HOST, MIC_7120A, PCIE_GEN2_X16, "hm-small")


@pytest.fixture(scope="module")
def stats(small_library):
    union = UnionizedGrid(small_library)
    ctx = TransportContext.create(
        small_library, pincell=True, union=union, master_seed=2
    )
    st = EventLoopStats()
    rng = np.random.default_rng(3)
    pos = np.column_stack(
        [rng.uniform(-0.3, 0.3, 120), rng.uniform(-0.3, 0.3, 120),
         rng.uniform(-100, 100, 120)]
    )
    run_generation_event(
        ctx, pos, np.ones(120), GlobalTallies(), 1.0, 0, stats=st
    )
    return st


class TestTrace:
    def test_one_offload_per_iteration(self, stats, model):
        trace = trace_offload(stats, model)
        assert trace.n_iterations == stats.iterations
        assert trace.bank_sizes == list(stats.lookup_counts)

    def test_total_positive_and_decomposes(self, stats, model):
        trace = trace_offload(stats, model)
        assert trace.total_s > 0
        assert trace.total_s == pytest.approx(
            sum(trace.banking_s) + sum(trace.transfer_s)
            + sum(trace.compute_s) + sum(trace.fixed_s)
        )

    def test_per_particle_cost_rises_toward_tail(self, stats, model):
        """Shrinking banks amortize the fixed overhead worse — the
        measured form of Fig. 3's >=10k-particle advice."""
        trace = trace_offload(stats, model)
        per = trace.per_particle_cost()
        assert per[-1] > per[0]

    def test_fixed_fraction_dominates_small_banks(self, stats, model):
        """At these tiny demo banks the fixed overhead is nearly all of
        the cost (which is exactly why the paper banks 1e5 particles)."""
        trace = trace_offload(stats, model)
        assert trace.fixed_fraction > 0.5

    def test_empty_trace_rejected(self, model):
        with pytest.raises(ExecutionError):
            trace_offload(EventLoopStats(), model)

    def test_large_bank_amortizes(self, model):
        """A synthetic trace with one 1e6-particle bank has a small fixed
        fraction."""
        st = EventLoopStats()
        st.record(1_000_000, 0, 0)
        trace = trace_offload(st, model)
        assert trace.fixed_fraction < 0.1
