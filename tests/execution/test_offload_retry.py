"""PCIe stall recovery through the offload scheduler.

An injected ``TRANSFER_STALL`` makes the bank shipment hang past the retry
policy's stall timeout; the runtime aborts the shipment (typed
``DeadlineExceededError``, before any transport runs) and re-issues it
under ``with_retry``.  Exactly one attempt executes real transport, so the
retried run is **bit-identical** to an unstalled one, and the re-issue
count lands in ``TransportStats.retries`` (plus the supervisor's tally
when one is attached).
"""

import numpy as np
import pytest

from repro.data.unionized import UnionizedGrid
from repro.execution import ExecutionContext, OffloadScheduler
from repro.resilience import FaultKind, FaultPlan
from repro.resilience.recovery import RetryPolicy
from repro.supervise import SupervisionPolicy, Supervisor
from repro.transport.context import TransportContext

STALL = FaultPlan.single(
    FaultKind.TRANSFER_STALL, batch=1, magnitude=5.0
)


@pytest.fixture(scope="module")
def union(small_library):
    return UnionizedGrid(small_library)


def source(n, seed=5):
    rng = np.random.default_rng(seed)
    pos = np.column_stack(
        [
            rng.uniform(-0.3, 0.3, n),
            rng.uniform(-0.3, 0.3, n),
            rng.uniform(-150, 150, n),
        ]
    )
    return pos, np.full(n, 1.0)


def run_offload(
    library, union, *, n_batches=3, n=48,
    fault_plan=None, retry_policy=None, supervisor=None,
):
    ctx = TransportContext.create(
        library, pincell=True, union=union, master_seed=7
    )
    ec = ExecutionContext.create(
        transport=ctx, backend="event", record_stats=True,
        fault_plan=fault_plan, retry_policy=retry_policy,
        supervisor=supervisor,
    )
    scheduler = OffloadScheduler()
    tallies = ec.new_tallies()
    pos, en = source(n)
    banks = []
    for _ in range(n_batches):
        bank = scheduler.run_generation(ec, pos, en, tallies, 1.0, 0)
        banks.append(bank)
        pos, en = bank.positions.copy(), bank.energies.copy()
    return ctx, ec, tallies, banks


class TestStallRetry:
    def test_retried_run_bit_identical_to_unstalled(
        self, small_library, union
    ):
        c1, e1, t1, b1 = run_offload(small_library, union)
        c2, e2, t2, b2 = run_offload(
            small_library, union,
            fault_plan=STALL, retry_policy=RetryPolicy(),
        )
        # One rank, one attempt of real transport: everything is exact.
        assert c1.counters.as_dict() == c2.counters.as_dict()
        assert t1.collision == t2.collision
        assert t1.absorption == t2.absorption
        assert t1.track_length == t2.track_length
        assert t1.n_collisions == t2.n_collisions
        for bank1, bank2 in zip(b1, b2):
            np.testing.assert_array_equal(bank1.positions, bank2.positions)
            np.testing.assert_array_equal(bank1.energies, bank2.energies)

    def test_retry_count_lands_in_transport_stats(
        self, small_library, union
    ):
        _, ec, _, _ = run_offload(
            small_library, union,
            fault_plan=STALL, retry_policy=RetryPolicy(),
        )
        assert ec.stats.retries == 1
        assert ec.stats.summary()["retries"] == 1

    def test_unstalled_run_records_no_retries(self, small_library, union):
        _, ec, _, _ = run_offload(small_library, union)
        assert ec.stats.retries == 0
        assert ec.stats.summary()["retries"] == 0

    def test_supervisor_counts_the_reissue(self, small_library, union):
        sup = Supervisor(
            n_ranks=1, policy=SupervisionPolicy(straggler_factor=1.0e9)
        )
        run_offload(
            small_library, union,
            fault_plan=STALL, retry_policy=RetryPolicy(), supervisor=sup,
        )
        assert sup.retries == 1
        assert sup.report()["retries"] == 1

    def test_stall_without_policy_runs_plain(self, small_library, union):
        """No retry policy: the execution path ignores the stall (its cost
        lives in the offload cost model's transfer pricing)."""
        c1, _, t1, b1 = run_offload(small_library, union)
        c2, ec, t2, b2 = run_offload(
            small_library, union, fault_plan=STALL
        )
        assert ec.stats.retries == 0
        assert c1.counters.as_dict() == c2.counters.as_dict()
        assert t1.collision == t2.collision
        np.testing.assert_array_equal(b1[-1].energies, b2[-1].energies)
