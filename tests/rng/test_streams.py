"""Tests for vectorized multi-stream generation (the VSL analogue)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng import lcg
from repro.rng.streams import Partition, ScalarRandR, VectorStreams, fill_uniform


def master_sequence(seed: int, n: int) -> list[float]:
    """The first n uniforms of the master LCG sequence."""
    out = []
    s = seed
    for _ in range(n):
        s = lcg.lcg_next(s)
        out.append(s / float(1 << 63))
    return out


class TestSkipAheadPartition:
    def test_blocks_are_master_subsequences(self):
        """Stream k emits master positions [k*B, k*B + count)."""
        block = 100
        streams = VectorStreams(nstreams=3, seed=5, block=block)
        out = streams.uniform_block(4)
        # Build master sequence long enough to cover all three blocks.
        master = master_sequence(5, 2 * block + 4)
        for k in range(3):
            np.testing.assert_allclose(out[k], master[k * block : k * block + 4])

    def test_successive_calls_continue_streams(self):
        streams = VectorStreams(nstreams=2, seed=5, block=50)
        first = streams.uniform_block(3)
        second = streams.uniform_block(3)
        master = master_sequence(5, 56)
        np.testing.assert_allclose(np.concatenate([first[0], second[0]]), master[:6])
        np.testing.assert_allclose(
            np.concatenate([first[1], second[1]]), master[50:56]
        )


class TestLeapfrogPartition:
    def test_interleaves_master_sequence(self):
        """Stream k emits master positions k, k+K, k+2K, ..."""
        nstreams = 4
        streams = VectorStreams(nstreams=nstreams, seed=9, partition=Partition.LEAPFROG)
        out = streams.uniform_block(5)
        master = master_sequence(9, nstreams * 5)
        for k in range(nstreams):
            np.testing.assert_allclose(out[k], master[k :: nstreams][:5])

    def test_single_stream_leapfrog_is_master(self):
        streams = VectorStreams(nstreams=1, seed=11, partition=Partition.LEAPFROG)
        out = streams.uniform_block(10)
        np.testing.assert_allclose(out[0], master_sequence(11, 10))


class TestFill:
    def test_fill_layout(self):
        streams = VectorStreams(nstreams=4, seed=3, block=1000)
        out = np.empty(40)
        streams.fill(out)
        blocks = out.reshape(4, 10)
        master = master_sequence(3, 3010)
        for k in range(4):
            np.testing.assert_allclose(blocks[k], master[k * 1000 : k * 1000 + 10])

    def test_fill_requires_divisible_length(self):
        streams = VectorStreams(nstreams=3, seed=3)
        with pytest.raises(ValueError):
            streams.fill(np.empty(10))

    def test_fill_uniform_convenience(self):
        out = fill_uniform(24, nstreams=4, seed=2)
        assert out.shape == (24,)
        assert np.all((out >= 0) & (out < 1))

    def test_deterministic(self):
        a = fill_uniform(32, nstreams=8, seed=77)
        b = fill_uniform(32, nstreams=8, seed=77)
        np.testing.assert_array_equal(a, b)

    def test_nstreams_changes_layout_not_values_within_block(self):
        """The set of values depends on partitioning, but every value is a
        master-sequence value."""
        out = fill_uniform(16, nstreams=2, seed=1, partition=Partition.LEAPFROG)
        master = set(np.round(master_sequence(1, 16), 15))
        assert set(np.round(out, 15)) == master


class TestStatistics:
    @given(seed=st.integers(min_value=1, max_value=2**40))
    @settings(max_examples=10, deadline=None)
    def test_uniform_moments(self, seed):
        out = fill_uniform(4096, nstreams=4, seed=seed)
        assert abs(out.mean() - 0.5) < 0.03
        assert abs(out.var() - 1 / 12) < 0.02

    def test_streams_uncorrelated(self):
        streams = VectorStreams(nstreams=2, seed=13, block=1 << 20)
        out = streams.uniform_block(4096)
        corr = np.corrcoef(out[0], out[1])[0, 1]
        assert abs(corr) < 0.05


class TestScalarRandR:
    def test_matches_master_sequence(self):
        gen = ScalarRandR(seed=21)
        out = np.empty(8)
        gen.fill(out)
        np.testing.assert_allclose(out, master_sequence(21, 8))

    def test_next_and_fill_agree(self):
        g1 = ScalarRandR(seed=4)
        g2 = ScalarRandR(seed=4)
        singles = [g1.next() for _ in range(6)]
        arr = np.empty(6)
        g2.fill(arr)
        np.testing.assert_allclose(singles, arr)

    def test_state_persists_across_fills(self):
        g = ScalarRandR(seed=4)
        a, b = np.empty(3), np.empty(3)
        g.fill(a)
        g.fill(b)
        np.testing.assert_allclose(np.concatenate([a, b]), master_sequence(4, 6))


class TestInvalidConfig:
    def test_zero_streams_rejected(self):
        with pytest.raises(ValueError):
            VectorStreams(nstreams=0)
