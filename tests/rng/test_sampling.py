"""Scalar vs banked CDF sampling: one discrete distribution, two entry
points.  The history loop calls :func:`sample_index` per particle; the
event loop calls :func:`sample_index_many` per bank.  Equivalence here is
what lets the two schedules draw identical nuclides from identical RNG
streams."""

import numpy as np
import pytest

from repro.rng import sample_index, sample_index_many


def test_scalar_basic():
    w = np.array([1.0, 3.0, 6.0])
    assert sample_index(w, 0.05) == 0  # cdf: 0.1, 0.4, 1.0
    assert sample_index(w, 0.25) == 1
    assert sample_index(w, 0.95) == 2


def test_scalar_boundaries():
    w = np.array([1.0, 1.0])
    # xi*total exactly on a cumsum edge takes the *next* bin (side="right").
    assert sample_index(w, 0.5) == 1
    assert sample_index(w, 0.0) == 0
    # xi -> 1 stays in range.
    assert sample_index(w, 1.0) == 1


def test_scalar_degenerate_weights():
    assert sample_index(np.array([0.0, 0.0, 0.0]), 0.7) == 0
    assert sample_index(np.array([0.0, 2.0, 0.0]), 0.99) == 1


def test_banked_matches_scalar_exhaustively():
    rng = np.random.default_rng(3)
    n_choices, n_particles = 5, 400
    weights = rng.random((n_choices, n_particles))
    weights[rng.random((n_choices, n_particles)) < 0.2] = 0.0
    # Keep totals positive (the documented banked-path domain).
    weights[0, weights.sum(axis=0) == 0.0] = 1.0
    xi = rng.random(n_particles)
    banked = sample_index_many(weights, xi)
    scalar = np.array(
        [sample_index(weights[:, j], xi[j]) for j in range(n_particles)]
    )
    np.testing.assert_array_equal(banked, scalar)


def test_banked_edge_xi():
    w = np.tile(np.array([[2.0], [2.0]]), (1, 3))
    xi = np.array([0.0, 0.5, 1.0])
    np.testing.assert_array_equal(
        sample_index_many(w, xi), [0, 1, 1]
    )


def test_single_choice():
    assert sample_index(np.array([4.2]), 0.9) == 0
    np.testing.assert_array_equal(
        sample_index_many(np.array([[4.2, 4.2]]), np.array([0.1, 0.9])),
        [0, 0],
    )


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_distribution_proportional_to_weights(seed):
    rng = np.random.default_rng(seed)
    w = np.array([1.0, 2.0, 7.0])
    xi = rng.random(20_000)
    counts = np.bincount(
        sample_index_many(np.tile(w[:, None], (1, xi.size)), xi),
        minlength=3,
    )
    np.testing.assert_allclose(counts / xi.size, w / w.sum(), atol=0.02)
