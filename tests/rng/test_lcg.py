"""Tests for the 63-bit LCG and its skip-ahead machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng import lcg


def advance_slow(seed: int, n: int) -> int:
    for _ in range(n):
        seed = lcg.lcg_next(seed)
    return seed


class TestScalarLCG:
    def test_next_matches_recurrence(self):
        s = 12345
        expected = (lcg.LCG_MULT * s + 1) & lcg.LCG_MASK
        assert lcg.lcg_next(s) == expected

    def test_state_stays_in_range(self):
        s = lcg.DEFAULT_SEED
        for _ in range(1000):
            s = lcg.lcg_next(s)
            assert 0 <= s < (1 << 63)

    def test_prn_in_unit_interval(self):
        stream = lcg.RandomStream(seed=7)
        values = [stream.prn() for _ in range(1000)]
        assert all(0.0 <= v < 1.0 for v in values)

    def test_prn_nonzero_never_zero(self):
        # State 0 would map to uniform ~0; prn_nonzero must avoid exactly 0.
        stream = lcg.RandomStream(seed=0)
        assert stream.prn_nonzero() > 0.0

    def test_mean_approximately_half(self):
        stream = lcg.RandomStream(seed=42)
        values = np.array([stream.prn() for _ in range(20000)])
        assert abs(values.mean() - 0.5) < 0.01
        assert abs(values.var() - 1.0 / 12.0) < 0.01


class TestSkipAhead:
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 17, 100, 1023, 5000])
    def test_matches_sequential_advance(self, n):
        seed = 987654321
        assert lcg.skip_ahead(seed, n) == advance_slow(seed, n)

    def test_composition(self):
        seed = 31337
        assert lcg.skip_ahead(lcg.skip_ahead(seed, 1000), 234) == lcg.skip_ahead(
            seed, 1234
        )

    def test_negative_jump_inverts(self):
        seed = 555
        ahead = lcg.skip_ahead(seed, 100)
        assert lcg.skip_ahead(ahead, -100) == seed

    @given(
        seed=st.integers(min_value=0, max_value=lcg.LCG_MASK),
        n=st.integers(min_value=0, max_value=2000),
    )
    @settings(max_examples=30, deadline=None)
    def test_skip_ahead_property(self, seed, n):
        assert lcg.skip_ahead(seed, n) == advance_slow(seed, n)


class TestSkipAheadArray:
    def test_matches_scalar(self):
        seed = 424242
        ns = np.array([0, 1, 5, 63, 64, 1000, 152917], dtype=np.uint64)
        got = lcg.skip_ahead_array(seed, ns)
        expected = np.array([lcg.skip_ahead(seed, int(n)) for n in ns], dtype=np.uint64)
        np.testing.assert_array_equal(got, expected)

    def test_large_counts(self):
        seed = 1
        ns = np.array([2**40, 2**55 + 12345], dtype=np.uint64)
        got = lcg.skip_ahead_array(seed, ns)
        expected = np.array([lcg.skip_ahead(seed, int(n)) for n in ns], dtype=np.uint64)
        np.testing.assert_array_equal(got, expected)

    def test_empty(self):
        out = lcg.skip_ahead_array(1, np.array([], dtype=np.uint64))
        assert out.shape == (0,)


class TestParticleSeeds:
    def test_matches_set_particle(self):
        ids = np.arange(10, dtype=np.uint64)
        seeds = lcg.particle_seeds(lcg.DEFAULT_SEED, ids)
        stream = lcg.RandomStream()
        for i in range(10):
            stream.set_particle(lcg.DEFAULT_SEED, i)
            assert stream.seed == seeds[i]

    def test_streams_distinct(self):
        ids = np.arange(1000, dtype=np.uint64)
        seeds = lcg.particle_seeds(99, ids)
        assert len(np.unique(seeds)) == 1000

    def test_scheduling_independence(self):
        """Drawing particle histories in any order yields identical variates."""
        stream = lcg.RandomStream()
        draws_forward = {}
        for pid in range(5):
            stream.set_particle(7, pid)
            draws_forward[pid] = [stream.prn() for _ in range(3)]
        draws_backward = {}
        for pid in reversed(range(5)):
            stream.set_particle(7, pid)
            draws_backward[pid] = [stream.prn() for _ in range(3)]
        assert draws_forward == draws_backward


class TestPrnArray:
    def test_matches_scalar_step(self):
        states = np.array([1, 2, 3, 12345], dtype=np.uint64)
        new, u = lcg.prn_array(states)
        for i, s in enumerate([1, 2, 3, 12345]):
            expected = lcg.lcg_next(s)
            assert new[i] == expected
            assert u[i] == pytest.approx(expected / float(1 << 63))

    def test_input_not_modified(self):
        states = np.array([10, 20], dtype=np.uint64)
        lcg.prn_array(states)
        np.testing.assert_array_equal(states, [10, 20])


class TestRandomStreamSpawn:
    def test_spawn_is_strided(self):
        parent = lcg.RandomStream(seed=123)
        child = parent.spawn(2)
        assert child.seed == lcg.skip_ahead(123, 2 * lcg.STREAM_STRIDE)


class TestSkipAheadEdgeCases:
    """Boundary behavior the checkpoint/resume path depends on."""

    def test_zero_jump_is_identity(self):
        for seed in (0, 1, 31337, lcg.LCG_MASK):
            assert lcg.skip_ahead(seed, 0) == seed

    def test_zero_jump_array_is_identity(self):
        seed = 777
        out = lcg.skip_ahead_array(seed, np.zeros(5, dtype=np.uint64))
        np.testing.assert_array_equal(out, np.full(5, seed, dtype=np.uint64))

    def test_huge_jump_2_to_62(self):
        """n = 2**62 composes: two half-period jumps equal one full period."""
        seed = 9001
        half = lcg.skip_ahead(seed, 2**62)
        assert 0 <= half <= lcg.LCG_MASK
        # Doubling up to 2**63 wraps the full period back to the seed.
        assert lcg.skip_ahead(half, 2**62 + 2**62) == half
        assert lcg.skip_ahead(lcg.skip_ahead(half, 2**62), 2**62) == half

    def test_full_period_jump_wraps_to_seed(self):
        seed = 424242
        assert lcg.skip_ahead(seed, 2**63) == seed
        assert lcg.skip_ahead(seed, 2**63 + 5) == lcg.skip_ahead(seed, 5)

    @pytest.mark.parametrize(
        "a,b",
        [(0, 0), (1, 0), (152_917, 152_917), (2**40, 2**41),
         (2**62, 2**62 - 1), (123_456_789, 2**55)],
    )
    def test_chained_jumps_equal_single_jump(self, a, b):
        """skip_ahead(seed, a+b) == two chained jumps — THE property that
        lets a resumed run re-derive any particle's stream position."""
        seed = 31337
        chained = lcg.skip_ahead(lcg.skip_ahead(seed, a), b)
        assert chained == lcg.skip_ahead(seed, a + b)

    def test_chained_jump_array_equivalence(self):
        seed = 555
        a = np.array([0, 3, 2**40, 2**62], dtype=np.uint64)
        b = np.array([7, 2**62, 5, 2**62 - 1], dtype=np.uint64)
        step1 = lcg.skip_ahead_array(seed, a)
        chained = np.array(
            [lcg.skip_ahead(int(s), int(n)) for s, n in zip(step1, b)],
            dtype=np.uint64,
        )
        with np.errstate(over="ignore"):
            total = (a + b) & np.uint64(lcg.LCG_MASK)
        expected = lcg.skip_ahead_array(seed, total)
        np.testing.assert_array_equal(chained, expected)

    def test_array_accepts_small_dtypes(self):
        """int32/int16 step counts must upcast, not overflow."""
        seed = 1
        small = np.array([0, 1, 1000, 2**31 - 1], dtype=np.int32)
        wide = small.astype(np.uint64)
        np.testing.assert_array_equal(
            lcg.skip_ahead_array(seed, small),
            lcg.skip_ahead_array(seed, wide),
        )

    def test_array_near_uint64_boundary(self):
        """Counts at the period boundary reduce mod 2**63 like the scalar."""
        seed = 12345
        ns = np.array([2**63 - 1, 2**62, 2**63 % (2**64)], dtype=np.uint64)
        got = lcg.skip_ahead_array(seed, ns)
        expected = np.array(
            [lcg.skip_ahead(seed, int(n)) for n in ns], dtype=np.uint64
        )
        np.testing.assert_array_equal(got, expected)

    def test_stride_overflow_in_particle_seeds(self):
        """Global ids large enough that id * STRIDE exceeds 2**63 still give
        each particle a well-defined (wrapped) stream."""
        big_id = (2**63) // lcg.STREAM_STRIDE + 3
        ids = np.array([big_id], dtype=np.uint64)
        seeds = lcg.particle_seeds(7, ids)
        with np.errstate(over="ignore"):
            n_steps = int(
                (np.uint64(big_id) * np.uint64(lcg.STREAM_STRIDE))
                & np.uint64(lcg.LCG_MASK)
            )
        assert seeds[0] == lcg.skip_ahead(7, n_steps)
