"""Tests for the 63-bit LCG and its skip-ahead machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng import lcg


def advance_slow(seed: int, n: int) -> int:
    for _ in range(n):
        seed = lcg.lcg_next(seed)
    return seed


class TestScalarLCG:
    def test_next_matches_recurrence(self):
        s = 12345
        expected = (lcg.LCG_MULT * s + 1) & lcg.LCG_MASK
        assert lcg.lcg_next(s) == expected

    def test_state_stays_in_range(self):
        s = lcg.DEFAULT_SEED
        for _ in range(1000):
            s = lcg.lcg_next(s)
            assert 0 <= s < (1 << 63)

    def test_prn_in_unit_interval(self):
        stream = lcg.RandomStream(seed=7)
        values = [stream.prn() for _ in range(1000)]
        assert all(0.0 <= v < 1.0 for v in values)

    def test_prn_nonzero_never_zero(self):
        # State 0 would map to uniform ~0; prn_nonzero must avoid exactly 0.
        stream = lcg.RandomStream(seed=0)
        assert stream.prn_nonzero() > 0.0

    def test_mean_approximately_half(self):
        stream = lcg.RandomStream(seed=42)
        values = np.array([stream.prn() for _ in range(20000)])
        assert abs(values.mean() - 0.5) < 0.01
        assert abs(values.var() - 1.0 / 12.0) < 0.01


class TestSkipAhead:
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 17, 100, 1023, 5000])
    def test_matches_sequential_advance(self, n):
        seed = 987654321
        assert lcg.skip_ahead(seed, n) == advance_slow(seed, n)

    def test_composition(self):
        seed = 31337
        assert lcg.skip_ahead(lcg.skip_ahead(seed, 1000), 234) == lcg.skip_ahead(
            seed, 1234
        )

    def test_negative_jump_inverts(self):
        seed = 555
        ahead = lcg.skip_ahead(seed, 100)
        assert lcg.skip_ahead(ahead, -100) == seed

    @given(
        seed=st.integers(min_value=0, max_value=lcg.LCG_MASK),
        n=st.integers(min_value=0, max_value=2000),
    )
    @settings(max_examples=30, deadline=None)
    def test_skip_ahead_property(self, seed, n):
        assert lcg.skip_ahead(seed, n) == advance_slow(seed, n)


class TestSkipAheadArray:
    def test_matches_scalar(self):
        seed = 424242
        ns = np.array([0, 1, 5, 63, 64, 1000, 152917], dtype=np.uint64)
        got = lcg.skip_ahead_array(seed, ns)
        expected = np.array([lcg.skip_ahead(seed, int(n)) for n in ns], dtype=np.uint64)
        np.testing.assert_array_equal(got, expected)

    def test_large_counts(self):
        seed = 1
        ns = np.array([2**40, 2**55 + 12345], dtype=np.uint64)
        got = lcg.skip_ahead_array(seed, ns)
        expected = np.array([lcg.skip_ahead(seed, int(n)) for n in ns], dtype=np.uint64)
        np.testing.assert_array_equal(got, expected)

    def test_empty(self):
        out = lcg.skip_ahead_array(1, np.array([], dtype=np.uint64))
        assert out.shape == (0,)


class TestParticleSeeds:
    def test_matches_set_particle(self):
        ids = np.arange(10, dtype=np.uint64)
        seeds = lcg.particle_seeds(lcg.DEFAULT_SEED, ids)
        stream = lcg.RandomStream()
        for i in range(10):
            stream.set_particle(lcg.DEFAULT_SEED, i)
            assert stream.seed == seeds[i]

    def test_streams_distinct(self):
        ids = np.arange(1000, dtype=np.uint64)
        seeds = lcg.particle_seeds(99, ids)
        assert len(np.unique(seeds)) == 1000

    def test_scheduling_independence(self):
        """Drawing particle histories in any order yields identical variates."""
        stream = lcg.RandomStream()
        draws_forward = {}
        for pid in range(5):
            stream.set_particle(7, pid)
            draws_forward[pid] = [stream.prn() for _ in range(3)]
        draws_backward = {}
        for pid in reversed(range(5)):
            stream.set_particle(7, pid)
            draws_backward[pid] = [stream.prn() for _ in range(3)]
        assert draws_forward == draws_backward


class TestPrnArray:
    def test_matches_scalar_step(self):
        states = np.array([1, 2, 3, 12345], dtype=np.uint64)
        new, u = lcg.prn_array(states)
        for i, s in enumerate([1, 2, 3, 12345]):
            expected = lcg.lcg_next(s)
            assert new[i] == expected
            assert u[i] == pytest.approx(expected / float(1 << 63))

    def test_input_not_modified(self):
        states = np.array([10, 20], dtype=np.uint64)
        lcg.prn_array(states)
        np.testing.assert_array_equal(states, [10, 20])


class TestRandomStreamSpawn:
    def test_spawn_is_strided(self):
        parent = lcg.RandomStream(seed=123)
        child = parent.spawn(2)
        assert child.seed == lcg.skip_ahead(123, 2 * lcg.STREAM_STRIDE)
