"""Tests for the XSBench and RSBench proxy applications."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.proxy.rsbench import RSBench, RSBenchConfig
from repro.proxy.xsbench import XSBench


@pytest.fixture(scope="module")
def xsbench(small_library):
    return XSBench(small_library)


@pytest.fixture(scope="module")
def rsbench():
    return RSBench(RSBenchConfig(n_nuclides=3, resonances_per_nuclide=12))


class TestXSBench:
    def test_lookup_generation_deterministic(self, xsbench):
        a = xsbench.generate_lookups(100, seed=1)
        b = xsbench.generate_lookups(100, seed=1)
        np.testing.assert_allclose(a.energies, b.energies)
        np.testing.assert_array_equal(a.material_ids, b.material_ids)

    def test_fuel_weighted(self, xsbench):
        s = xsbench.generate_lookups(5000)
        frac_fuel = np.mean(s.material_ids == 0)
        assert frac_fuel == pytest.approx(0.60, abs=0.05)

    def test_energies_span_domain(self, xsbench):
        s = xsbench.generate_lookups(5000)
        assert s.energies.min() < 1e-9
        assert s.energies.max() > 1.0

    def test_implementations_agree(self, xsbench):
        """The banked kernel computes exactly the history kernel's answer."""
        s = xsbench.generate_lookups(300)
        assert xsbench.verify(s) < 1e-12

    def test_banked_faster_than_history(self, xsbench):
        """The measured Python analogue of the paper's vectorization win."""
        s = xsbench.generate_lookups(1500)
        t_hist, _ = xsbench.run_history(s)
        t_bank, _ = xsbench.run_banked(s)
        assert t_bank < t_hist / 3

    def test_inner_beats_outer(self, xsbench):
        """The paper's loop-choice finding: vectorizing the inner (nuclide)
        loop beats forcing vectorization across the outer (particle) loop."""
        s = xsbench.generate_lookups(1500)
        t_bank, _ = xsbench.run_banked(s)
        t_outer, _ = xsbench.run_banked_outer(s)
        assert t_bank < t_outer

    def test_counters_equal_work(self, xsbench):
        s = xsbench.generate_lookups(200)
        _, c_hist = xsbench.run_history(s)
        _, c_bank = xsbench.run_banked(s)
        assert c_hist.lookups == c_bank.lookups == 200
        assert c_hist.nuclide_iterations == c_bank.nuclide_iterations

    def test_run_dispatch(self, xsbench):
        s = xsbench.generate_lookups(50)
        for impl in ("history", "banked", "banked-outer"):
            t, _ = xsbench.run(impl, s)
            assert t > 0
        with pytest.raises(ExecutionError):
            xsbench.run("gpu", s)

    def test_aos_layout_runs(self, small_library):
        bench = XSBench(small_library, layout="aos")
        s = bench.generate_lookups(100)
        t, c = bench.run_banked(s)
        assert c.lookups == 100


class TestRSBench:
    def test_lookup_generation(self, rsbench):
        which, e = rsbench.generate_lookups(500)
        assert which.shape == e.shape == (500,)
        for i, mp in enumerate(rsbench.nuclides):
            mask = which == i
            if mask.any():
                assert e[mask].min() >= mp.emin
                assert e[mask].max() <= mp.emax

    def test_variants_agree(self, rsbench):
        """Fixed-poles-per-window vectorization changes performance, not
        physics."""
        assert rsbench.verify(150) < 1e-10

    def test_vectorized_faster(self, rsbench):
        which, e = rsbench.generate_lookups(800)
        t_orig, _ = rsbench.run_original(which, e)
        t_vec, _ = rsbench.run_vectorized(which, e)
        assert t_vec < t_orig / 3

    def test_run_dispatch(self, rsbench):
        which, e = rsbench.generate_lookups(50)
        for impl in ("original", "vectorized"):
            t, out = rsbench.run(impl, which, e)
            assert out.shape == (50,)
        with pytest.raises(ExecutionError):
            rsbench.run("cuda", which, e)

    def test_results_positive(self, rsbench):
        which, e = rsbench.generate_lookups(200)
        _, out = rsbench.run_vectorized(which, e)
        assert np.all(out >= 0)

    def test_memory_compression_headline(self, rsbench):
        """The multipole data is tiny — RSBench's 'reduced data movement'."""
        assert rsbench.nbytes < 1e6

    def test_deterministic_construction(self):
        a = RSBench(RSBenchConfig(n_nuclides=2, resonances_per_nuclide=8))
        b = RSBench(RSBenchConfig(n_nuclides=2, resonances_per_nuclide=8))
        np.testing.assert_allclose(a.nuclides[0].poles, b.nuclides[0].poles)
