"""Tests for recovery policies and the rank-failure recovery path."""

import numpy as np
import pytest

from repro.cluster.distributed import DistributedSimulation
from repro.cluster.simcomm import SimulatedComm
from repro.errors import ClusterError, CommunicationError, ReproError
from repro.resilience import FaultPlan, RetryPolicy, redistribute_slice, with_retry
from repro.resilience.faults import FaultKind
from repro.transport import Settings, Simulation

SETTINGS = Settings(
    n_particles=90, n_inactive=1, n_active=3, pincell=True,
    mode="event", seed=17,
)


@pytest.fixture(scope="module")
def serial(small_library):
    return Simulation(small_library, SETTINGS).run()


class TestRetryPolicy:
    def test_exponential_backoff(self):
        policy = RetryPolicy(base_delay_s=0.1, backoff_factor=3.0)
        assert policy.delay_s(1) == pytest.approx(0.1)
        assert policy.delay_s(2) == pytest.approx(0.3)
        assert policy.delay_s(3) == pytest.approx(0.9)
        assert policy.total_backoff_s(3) == pytest.approx(1.3)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ReproError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ReproError):
            RetryPolicy(backoff_factor=0.5)

    def test_with_retry_succeeds_after_failures(self):
        def flaky(attempt):
            if attempt < 3:
                raise ReproError("transient")
            return "ok"

        result, attempts = with_retry(flaky, RetryPolicy(max_attempts=4))
        assert result == "ok"
        assert attempts == 3

    def test_with_retry_exhausts(self):
        def always(attempt):
            raise ReproError("permanent")

        with pytest.raises(ReproError, match="after 2 attempts"):
            with_retry(always, RetryPolicy(max_attempts=2))


class TestRedistributeSlice:
    def test_covers_exactly_once_in_order(self):
        parts = redistribute_slice(slice(30, 60), survivors=[0, 2, 3])
        starts = [sub.start for _, sub in parts]
        assert starts == sorted(starts)
        covered = []
        for _, sub in parts:
            covered.extend(range(sub.start, sub.stop))
        assert covered == list(range(30, 60))

    def test_remainder_goes_to_earlier_survivors(self):
        parts = redistribute_slice(slice(0, 10), survivors=[4, 7, 9])
        sizes = [sub.stop - sub.start for _, sub in parts]
        assert sizes == [4, 3, 3]
        assert [rank for rank, _ in parts] == [4, 7, 9]

    def test_more_survivors_than_particles(self):
        parts = redistribute_slice(slice(5, 7), survivors=[1, 2, 3])
        assert [(r, (s.start, s.stop)) for r, s in parts] == [
            (1, (5, 6)), (2, (6, 7)),
        ]

    def test_empty_slice(self):
        assert redistribute_slice(slice(4, 4), survivors=[0]) == []

    def test_no_survivors_rejected(self):
        with pytest.raises(ClusterError):
            redistribute_slice(slice(0, 10), survivors=[])


class TestWeightedRedistributeSlice:
    """The work-stealing rebalance path: proportional splitting of a
    released slice by rate weight (largest-remainder apportionment)."""

    def test_covers_exactly_once_in_order(self):
        parts = redistribute_slice(
            slice(100, 200), survivors=[0, 1, 2], weights=[1.0, 2.0, 7.0]
        )
        covered = []
        for _, sub in parts:
            covered.extend(range(sub.start, sub.stop))
        assert covered == list(range(100, 200))
        starts = [sub.start for _, sub in parts]
        assert starts == sorted(starts)

    def test_proportional_counts(self):
        parts = redistribute_slice(
            slice(0, 100), survivors=[3, 5], weights=[1.0, 3.0]
        )
        sizes = {rank: sub.stop - sub.start for rank, sub in parts}
        assert sizes == {3: 25, 5: 75}

    def test_largest_remainder_ties_to_earlier_survivor(self):
        # 10 particles at weights [1, 1, 1]: floors 3/3/3, one leftover
        # with equal fractional parts -> earliest survivor.
        parts = redistribute_slice(
            slice(0, 10), survivors=[4, 7, 9], weights=[1.0, 1.0, 1.0]
        )
        sizes = [sub.stop - sub.start for _, sub in parts]
        assert sizes == [4, 3, 3]

    def test_zero_weight_survivor_receives_nothing(self):
        parts = redistribute_slice(
            slice(0, 9), survivors=[0, 1, 2], weights=[2.0, 0.0, 1.0]
        )
        assert {rank for rank, _ in parts} == {0, 2}
        assert sum(sub.stop - sub.start for _, sub in parts) == 9

    def test_unweighted_path_unchanged_by_weighted_extension(self):
        """weights=None keeps the original rank-loss recovery behaviour
        exactly (the bit-identity contract depends on it)."""
        assert redistribute_slice(
            slice(30, 60), survivors=[0, 2, 3]
        ) == redistribute_slice(slice(30, 60), survivors=[0, 2, 3], weights=None)

    def test_validation(self):
        with pytest.raises(ClusterError, match="weights for"):
            redistribute_slice(slice(0, 10), survivors=[0, 1], weights=[1.0])
        with pytest.raises(ClusterError, match="negative"):
            redistribute_slice(
                slice(0, 10), survivors=[0, 1], weights=[1.0, -1.0]
            )
        with pytest.raises(ClusterError, match="positive weight"):
            redistribute_slice(
                slice(0, 10), survivors=[0, 1], weights=[0.0, 0.0]
            )

    def test_exact_sum_over_many_shapes(self):
        for n in (1, 2, 7, 97, 1000):
            for weights in ([0.3, 0.7], [5.0, 1.0, 1.0], [1e-6, 1.0, 1e6]):
                parts = redistribute_slice(
                    slice(11, 11 + n),
                    survivors=list(range(len(weights))),
                    weights=weights,
                )
                assert sum(sub.stop - sub.start for _, sub in parts) == n


class TestRankFailureRecovery:
    """A crashed rank's slice is re-run by survivors — results unchanged.

    The trajectory (fission bank, source sites, entropy) is bit-identical
    to the serial run; the summed k-estimators agree to the repo's
    established bit-equivalence bound (1e-12, reduction grouping only).
    """

    def test_single_crash_matches_serial(self, small_library, serial):
        plan = FaultPlan.single(FaultKind.RANK_CRASH, batch=2, rank=1)
        dist = DistributedSimulation(
            small_library, SETTINGS, 4, fault_plan=plan
        ).run()
        assert dist.failed_ranks == [1]
        assert dist.surviving_ranks == 3
        assert dist.recovery_time > 0.0
        assert dist.statistics.entropy == serial.statistics.entropy
        np.testing.assert_allclose(
            dist.statistics.k_collision, serial.statistics.k_collision,
            rtol=1e-12,
        )
        np.testing.assert_allclose(
            dist.statistics.k_absorption, serial.statistics.k_absorption,
            rtol=1e-12,
        )
        np.testing.assert_allclose(
            dist.statistics.k_track, serial.statistics.k_track, rtol=1e-12
        )

    def test_two_crashes_still_match(self, small_library, serial):
        plan = FaultPlan(
            events=(
                *FaultPlan.single(FaultKind.RANK_CRASH, batch=1, rank=0).events,
                *FaultPlan.single(FaultKind.RANK_CRASH, batch=3, rank=3).events,
            )
        )
        dist = DistributedSimulation(
            small_library, SETTINGS, 4, fault_plan=plan
        ).run()
        assert dist.failed_ranks == [0, 3]
        assert dist.surviving_ranks == 2
        assert dist.statistics.entropy == serial.statistics.entropy
        np.testing.assert_allclose(
            dist.statistics.k_collision, serial.statistics.k_collision,
            rtol=1e-12,
        )

    def test_recovery_is_deterministic(self, small_library):
        plan = FaultPlan.single(FaultKind.RANK_CRASH, batch=2, rank=1)
        a = DistributedSimulation(
            small_library, SETTINGS, 4, fault_plan=plan
        ).run()
        b = DistributedSimulation(
            small_library, SETTINGS, 4, fault_plan=plan
        ).run()
        assert a.statistics.k_collision == b.statistics.k_collision
        assert a.recovery_time == b.recovery_time
        assert a.failed_ranks == b.failed_ranks

    def test_crash_of_out_of_range_rank_ignored(self, small_library, serial):
        plan = FaultPlan.single(FaultKind.RANK_CRASH, batch=2, rank=7)
        dist = DistributedSimulation(
            small_library, SETTINGS, 2, fault_plan=plan
        ).run()
        assert dist.failed_ranks == []
        assert dist.surviving_ranks == 2
        np.testing.assert_allclose(
            dist.statistics.k_collision, serial.statistics.k_collision,
            rtol=1e-12,
        )

    def test_last_rank_crash_unrecoverable(self, small_library):
        plan = FaultPlan.single(FaultKind.RANK_CRASH, batch=1, rank=0)
        with pytest.raises(ClusterError, match="no survivors"):
            DistributedSimulation(
                small_library, SETTINGS, 1, fault_plan=plan
            ).run()


class TestCommunicatorHardening:
    def test_shrink_preserves_time(self):
        comm = SimulatedComm(4)
        comm.allreduce_sum([np.ones(8)] * 4)
        before = comm.comm_time
        assert before > 0.0
        small = comm.shrink(3)
        assert small.n_ranks == 3
        assert small.comm_time == before

    def test_shrink_bounds(self):
        with pytest.raises(CommunicationError):
            SimulatedComm(4).shrink(0)
        with pytest.raises(CommunicationError):
            SimulatedComm(4).shrink(5)

    def test_wrong_buffer_count_typed(self):
        with pytest.raises(CommunicationError, match="rank buffers"):
            SimulatedComm(3).allreduce_sum([np.ones(4)] * 2)

    def test_empty_collective_typed(self):
        with pytest.raises(CommunicationError, match="no rank buffers"):
            SimulatedComm(1).allreduce_sum([])

    def test_shape_mismatch_typed(self):
        with pytest.raises(CommunicationError, match="share a shape"):
            SimulatedComm(2).allreduce_sum([np.ones(4), np.ones(5)])

    def test_non_finite_payload_typed(self):
        with pytest.raises(CommunicationError, match="non-finite"):
            SimulatedComm(2).allreduce_sum([np.ones(4), np.array([1.0, np.nan, 2.0, 3.0])])

    def test_non_numeric_payload_typed(self):
        with pytest.raises(CommunicationError, match="not numeric"):
            SimulatedComm(2).reduce_sum([np.ones(2), np.array(["a", "b"])])

    def test_negative_site_counts_typed(self):
        with pytest.raises(CommunicationError, match="non-negative"):
            SimulatedComm(2).exchange_bank([5, -1])

    def test_wrong_site_count_length_typed(self):
        with pytest.raises(CommunicationError, match="one entry per rank"):
            SimulatedComm(2).exchange_bank([5])
