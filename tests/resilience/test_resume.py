"""The headline guarantee: a killed-and-resumed run is bit-identical.

These tests kill a serial :class:`Simulation` mid-run with an injected
``MID_BATCH_KILL`` (a full generation transported, nothing recorded — the
worst checkpoint loss), then resume a **fresh** ``Simulation`` from the
latest checkpoint and demand exact ``==`` equality of the per-batch
k-estimates, entropy trace, and work counters against an uninterrupted run.
No tolerance: the RNG-by-global-id design makes the resumed trajectory the
same bit pattern, and any drift here is a bug.
"""

import numpy as np
import pytest

from repro.errors import CheckpointError, ExecutionError
from repro.resilience import (
    FaultKind,
    FaultPlan,
    SimulatedCrash,
    latest_checkpoint,
)
from repro.transport import Settings, Simulation

BASE = dict(
    n_particles=80, n_inactive=1, n_active=4, pincell=True, seed=11
)


def crash_and_resume(library, tmp_path, kill_batch, **overrides):
    """Run to a crash at ``kill_batch``, then resume from latest checkpoint."""
    settings = Settings(
        **{**BASE, **overrides},
        checkpoint_every=1,
        checkpoint_dir=str(tmp_path),
    )
    plan = FaultPlan.single(FaultKind.MID_BATCH_KILL, batch=kill_batch)
    with pytest.raises(SimulatedCrash):
        Simulation(library, settings).run(fault_plan=plan)
    ckpt = latest_checkpoint(tmp_path)
    assert ckpt is not None
    # A fresh Simulation models the restarted process: no carried state.
    return Simulation(library, settings).run(resume_from=ckpt), ckpt


class TestBitIdenticalResume:
    @pytest.mark.parametrize("mode", ["event", "history"])
    def test_resumed_equals_uninterrupted(self, small_library, tmp_path, mode):
        reference = Simulation(
            small_library, Settings(**BASE, mode=mode)
        ).run()
        resumed, ckpt = crash_and_resume(
            small_library, tmp_path, kill_batch=3, mode=mode
        )
        assert ckpt.name == "ckpt-000003.rpk"
        # Exact equality — bit-identical, not merely close.
        assert resumed.statistics.k_collision == reference.statistics.k_collision
        assert (
            resumed.statistics.k_absorption
            == reference.statistics.k_absorption
        )
        assert resumed.statistics.k_track == reference.statistics.k_track
        assert resumed.statistics.entropy == reference.statistics.entropy
        assert resumed.counters.as_dict() == reference.counters.as_dict()

    def test_kill_at_first_checkpointable_batch(self, small_library, tmp_path):
        reference = Simulation(
            small_library, Settings(**BASE, mode="event")
        ).run()
        resumed, ckpt = crash_and_resume(
            small_library, tmp_path, kill_batch=1, mode="event"
        )
        assert ckpt.name == "ckpt-000001.rpk"
        assert resumed.statistics.k_collision == reference.statistics.k_collision
        assert resumed.statistics.entropy == reference.statistics.entropy

    def test_power_tally_survives_resume(self, small_library, tmp_path):
        reference = Simulation(
            small_library, Settings(**BASE, mode="event", tally_power=True)
        ).run()
        resumed, _ = crash_and_resume(
            small_library, tmp_path, kill_batch=3, mode="event",
            tally_power=True,
        )
        np.testing.assert_array_equal(
            resumed.power.mean, reference.power.mean
        )
        assert resumed.power.n_batches == reference.power.n_batches

    def test_resumed_profile_merges_segments(self, small_library, tmp_path):
        resumed, _ = crash_and_resume(
            small_library, tmp_path, kill_batch=3, mode="event"
        )
        routines = resumed.profile.routines
        # 5 recorded generations across both segments (the crashed batch's
        # transport died with the first process and is not profiled).
        assert routines["transport_generation"].calls == 5
        assert routines["checkpoint_restore"].calls == 1
        assert routines["checkpoint_write"].calls >= 3

    def test_resumed_wall_time_includes_prior_segment(
        self, small_library, tmp_path
    ):
        resumed, ckpt = crash_and_resume(
            small_library, tmp_path, kill_batch=3, mode="event"
        )
        from repro.resilience import load_checkpoint

        prior = load_checkpoint(ckpt).elapsed_seconds
        assert prior > 0.0
        assert resumed.wall_time > prior


class TestResumeGuards:
    def test_wrong_settings_refused(self, small_library, tmp_path):
        settings = Settings(
            **BASE, mode="event",
            checkpoint_every=1, checkpoint_dir=str(tmp_path),
        )
        plan = FaultPlan.single(FaultKind.MID_BATCH_KILL, batch=2)
        with pytest.raises(SimulatedCrash):
            Simulation(small_library, settings).run(fault_plan=plan)
        other = Settings(**{**BASE, "seed": 99}, mode="event")
        with pytest.raises(CheckpointError, match="different settings"):
            Simulation(small_library, other).run(
                resume_from=latest_checkpoint(tmp_path)
            )

    def test_checkpoint_settings_validated(self):
        with pytest.raises(ExecutionError):
            Settings(checkpoint_every=-1)
        with pytest.raises(ExecutionError):
            Settings(checkpoint_every=2)  # no directory given

    def test_cadence_controls_file_count(self, small_library, tmp_path):
        settings = Settings(
            **BASE, mode="event",
            checkpoint_every=2, checkpoint_dir=str(tmp_path),
        )
        Simulation(small_library, settings).run()
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["ckpt-000002.rpk", "ckpt-000004.rpk"]
