"""Tests for the checkpoint file format: round trip, integrity, atomicity."""

import numpy as np
import pytest

from repro.errors import CheckpointError
from repro.profiling.timers import TimerRegistry
from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointState,
    checkpoint_path,
    latest_checkpoint,
    load_checkpoint,
    save_checkpoint,
    settings_fingerprint,
)
from repro.transport import Settings


def make_state(batches_done=3, power=None) -> CheckpointState:
    rng = np.random.default_rng(5)
    return CheckpointState(
        batches_done=batches_done,
        id_offset=batches_done * 100,
        n_inactive=1,
        fingerprint="f" * 64,
        positions=rng.normal(size=(100, 3)),
        energies=rng.uniform(0.1, 2.0, 100),
        k_collision=[0.9, 1.0, 1.1],
        k_absorption=[0.91, 1.01, 1.11],
        k_track=[0.92, 1.02, 1.12],
        entropy=[3.5, 3.4, 3.45],
        source_rng_state=np.random.default_rng(5).bit_generator.state,
        counters={"lookups": 1234, "collisions": 56},
        elapsed_seconds=7.25,
        profile_json='{"label": "seg", "routines": {}}',
        power=power,
    )


class TestRoundTrip:
    def test_exact_round_trip(self, tmp_path):
        state = make_state()
        path = save_checkpoint(state, tmp_path / "c.rpk")
        loaded = load_checkpoint(path)
        np.testing.assert_array_equal(loaded.positions, state.positions)
        np.testing.assert_array_equal(loaded.energies, state.energies)
        assert loaded.k_collision == state.k_collision
        assert loaded.k_absorption == state.k_absorption
        assert loaded.k_track == state.k_track
        assert loaded.entropy == state.entropy
        assert loaded.batches_done == state.batches_done
        assert loaded.id_offset == state.id_offset
        assert loaded.counters == state.counters
        assert loaded.elapsed_seconds == state.elapsed_seconds
        assert loaded.profile_json == state.profile_json
        assert loaded.version == CHECKPOINT_VERSION

    def test_rng_state_round_trip_restores_generator(self, tmp_path):
        gen = np.random.default_rng(42)
        gen.random(17)  # advance past the seed state
        state = make_state()
        state.source_rng_state = gen.bit_generator.state
        loaded = load_checkpoint(save_checkpoint(state, tmp_path / "c.rpk"))
        restored = np.random.default_rng(0)
        restored.bit_generator.state = loaded.source_rng_state
        np.testing.assert_array_equal(restored.random(8), gen.random(8))

    def test_power_round_trip(self, tmp_path):
        power = {
            "shape": (17, 17),
            "half_width": 10.71,
            "n_batches": 4,
            "sum": np.arange(289.0).reshape(17, 17),
            "sum_sq": np.arange(289.0).reshape(17, 17) ** 2,
        }
        loaded = load_checkpoint(
            save_checkpoint(make_state(power=power), tmp_path / "c.rpk")
        )
        assert loaded.power["shape"] == (17, 17)
        assert loaded.power["n_batches"] == 4
        np.testing.assert_array_equal(loaded.power["sum"], power["sum"])
        np.testing.assert_array_equal(loaded.power["sum_sq"], power["sum_sq"])

    def test_timers_record_write_and_restore(self, tmp_path):
        timers = TimerRegistry("ckpt")
        path = save_checkpoint(make_state(), tmp_path / "c.rpk", timers=timers)
        load_checkpoint(path, timers=timers)
        assert timers.profile.routines["checkpoint_write"].calls == 1
        assert timers.profile.routines["checkpoint_restore"].calls == 1


class TestIntegrity:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(tmp_path / "nope.rpk")

    def test_corrupt_payload_rejected(self, tmp_path):
        path = save_checkpoint(make_state(), tmp_path / "c.rpk")
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointError, match="integrity"):
            load_checkpoint(path)

    def test_truncated_rejected(self, tmp_path):
        path = save_checkpoint(make_state(), tmp_path / "c.rpk")
        path.write_bytes(path.read_bytes()[:40])
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "c.rpk"
        path.write_bytes(b"NOTACKPT" + b"\x00" * 64)
        with pytest.raises(CheckpointError, match="magic"):
            load_checkpoint(path)

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        path = save_checkpoint(make_state(), tmp_path / "c.rpk")
        with pytest.raises(CheckpointError, match="different settings"):
            load_checkpoint(path, expect_fingerprint="0" * 64)

    def test_matching_fingerprint_accepted(self, tmp_path):
        path = save_checkpoint(make_state(), tmp_path / "c.rpk")
        assert load_checkpoint(path, expect_fingerprint="f" * 64).batches_done == 3


class TestAtomicity:
    def test_no_temp_file_left_behind(self, tmp_path):
        save_checkpoint(make_state(), tmp_path / "c.rpk")
        assert [p.name for p in tmp_path.iterdir()] == ["c.rpk"]

    def test_overwrite_is_replace(self, tmp_path):
        path = save_checkpoint(make_state(batches_done=1), tmp_path / "c.rpk")
        save_checkpoint(make_state(batches_done=2), path)
        assert load_checkpoint(path).batches_done == 2


class TestDirectoryLayout:
    def test_checkpoint_path_format(self, tmp_path):
        assert checkpoint_path(tmp_path, 7).name == "ckpt-000007.rpk"

    def test_latest_checkpoint_picks_highest(self, tmp_path):
        for b in (1, 3, 2):
            save_checkpoint(make_state(batches_done=b), checkpoint_path(tmp_path, b))
        assert latest_checkpoint(tmp_path).name == "ckpt-000003.rpk"

    def test_latest_checkpoint_empty(self, tmp_path):
        assert latest_checkpoint(tmp_path) is None
        assert latest_checkpoint(tmp_path / "missing") is None


class TestSettingsFingerprint:
    def test_physics_change_changes_fingerprint(self):
        a = settings_fingerprint(Settings(seed=1, pincell=True))
        b = settings_fingerprint(Settings(seed=2, pincell=True))
        assert a != b

    def test_checkpoint_cadence_does_not_change_fingerprint(self, tmp_path):
        a = settings_fingerprint(Settings(pincell=True))
        b = settings_fingerprint(
            Settings(
                pincell=True, checkpoint_every=2, checkpoint_dir=str(tmp_path)
            )
        )
        assert a == b
