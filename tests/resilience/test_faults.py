"""Tests for deterministic fault-injection plans and their wiring."""

import pytest

from repro.errors import FaultInjectionError
from repro.execution.offload import OffloadCostModel
from repro.machine.presets import JLSE_HOST, MIC_7120A, PCIE_GEN2_X16
from repro.resilience import FaultPlan, RetryPolicy
from repro.resilience.faults import FaultEvent, FaultKind


class TestPlanGeneration:
    def test_fixed_seed_fixed_schedule(self):
        kwargs = dict(
            n_batches=100, n_ranks=16,
            p_rank_crash=0.1, p_transfer_stall=0.2, p_mid_batch_kill=0.05,
        )
        assert FaultPlan.generate(7, **kwargs) == FaultPlan.generate(7, **kwargs)

    def test_different_seeds_differ(self):
        kwargs = dict(n_batches=200, n_ranks=8, p_rank_crash=0.3)
        assert FaultPlan.generate(1, **kwargs) != FaultPlan.generate(2, **kwargs)

    def test_zero_probabilities_mean_no_events(self):
        assert FaultPlan.generate(3, n_batches=1000).events == ()

    def test_certain_crash_hits_every_batch(self):
        plan = FaultPlan.generate(5, n_batches=20, n_ranks=4, p_rank_crash=1.0)
        assert len(plan.events) == 20
        assert all(e.kind is FaultKind.RANK_CRASH for e in plan.events)
        assert all(0 <= e.rank < 4 for e in plan.events)

    def test_victim_ranks_spread(self):
        plan = FaultPlan.generate(9, n_batches=400, n_ranks=4, p_rank_crash=1.0)
        assert {e.rank for e in plan.events} == {0, 1, 2, 3}

    def test_invalid_probability_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan.generate(1, n_batches=10, p_rank_crash=1.5)

    def test_invalid_shape_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan.generate(1, n_batches=10, n_ranks=0)


class TestPlanQueries:
    def test_single_and_queries(self):
        plan = FaultPlan.single(FaultKind.MID_BATCH_KILL, batch=4)
        assert plan.kills_at(4)
        assert not plan.kills_at(3)
        assert plan.crashed_rank(4) is None

    def test_crashed_rank(self):
        plan = FaultPlan.single(FaultKind.RANK_CRASH, batch=2, rank=5)
        assert plan.crashed_rank(2) == 5
        assert plan.crashed_rank(1) is None

    def test_stall_seconds_sum(self):
        plan = FaultPlan(
            events=(
                FaultEvent(FaultKind.TRANSFER_STALL, 3, magnitude=0.2),
                FaultEvent(FaultKind.TRANSFER_STALL, 3, magnitude=0.3),
                FaultEvent(FaultKind.TRANSFER_STALL, 5, magnitude=1.0),
            )
        )
        assert plan.stall_seconds(3) == pytest.approx(0.5)
        assert plan.stall_seconds(4) == 0.0


class TestOffloadStalls:
    """PCIe transfer stalls wired into the offload pipeline model."""

    def make_model(self, plan=None, policy=None):
        return OffloadCostModel(
            host=JLSE_HOST, mic=MIC_7120A, link=PCIE_GEN2_X16,
            model="hm-small", fault_plan=plan, retry_policy=policy,
        )

    def test_no_plan_is_clean(self):
        clean = self.make_model().transfer_time(10_000)
        assert self.make_model().transfer_time(10_000, iteration=3) == clean

    def test_stall_without_retry_hangs_full_duration(self):
        plan = FaultPlan.single(
            FaultKind.TRANSFER_STALL, batch=3, magnitude=0.4
        )
        model = self.make_model(plan)
        clean = model.transfer_time(10_000)
        assert model.transfer_time(10_000, iteration=3) == pytest.approx(
            clean + 0.4
        )
        assert model.transfer_time(10_000, iteration=2) == clean

    def test_retry_policy_caps_stall_at_timeout(self):
        plan = FaultPlan.single(
            FaultKind.TRANSFER_STALL, batch=3, magnitude=5.0
        )
        policy = RetryPolicy(stall_timeout_s=0.1, base_delay_s=0.05)
        model = self.make_model(plan, policy)
        clean = model.transfer_time(10_000)
        faulted = model.transfer_time(10_000, iteration=3)
        # Abort at timeout + one backoff + clean re-ship: far below 5 s.
        assert faulted == pytest.approx(0.1 + 0.05 + clean)

    def test_offload_time_includes_stall(self):
        plan = FaultPlan.single(
            FaultKind.TRANSFER_STALL, batch=1, magnitude=0.25
        )
        model = self.make_model(plan)
        assert model.offload_time(5_000, iteration=1) == pytest.approx(
            model.offload_time(5_000) + 0.25
        )
