"""SIMD anatomy: lane machines, layouts, and the two proxy kernels.

Demonstrates the mechanics behind the paper's performance arguments:

1. the counting lane machine executes Algorithm 4's intrinsics pipeline
   and shows the vector-vs-scalar instruction gap;
2. masked branchy physics (URR) wastes lanes — the measured lane
   efficiency quantifies why the paper stripped those blocks;
3. AoS vs SoA data layout changes the banked lookup kernel's speed;
4. XSBench and RSBench: measured vectorized-vs-scalar wall-clock ratios.

Run:  python examples/simd_vectorization.py
"""

import time

import numpy as np

from repro.data import LibraryConfig, build_library
from repro.proxy.rsbench import RSBench, RSBenchConfig
from repro.proxy.xsbench import XSBench
from repro.simd.analysis import queue_lane_efficiency
from repro.simd.kernels import instruction_ratio, masked_lookup_kernel
from repro.simd.lanes import VectorUnit


def main() -> None:
    print("=== 1. Instruction counts: Algorithm 4 on a 16-lane machine ===")
    stats = instruction_ratio(16 * 1000, width=16)
    print(f"  vector instructions: {stats['vector_instructions']:8,.0f}")
    print(f"  scalar instructions: {stats['scalar_instructions']:8,.0f}")
    print(f"  scalar/vector ratio: {stats['ratio']:.1f}x "
          "(3 vector ops per 16 elements vs 1 scalar op each)")

    print("\n=== 2. Branchy physics under masking (why URR blocks SIMD) ===")
    for frac in (1.0, 0.25, 0.05):
        vu = VectorUnit(width=16)
        n = 1600
        mask = np.zeros(n, dtype=bool)
        mask[: int(frac * n)] = True
        masked_lookup_kernel(vu, np.ones(n), mask, np.full(n, 1.1))
        print(f"  URR branch taken by {frac:5.0%} of lanes -> "
              f"lane efficiency {vu.counters.lane_efficiency:.0%}")

    print("\n=== 3. Event-queue drain: lane efficiency over a generation ===")
    draining = [2000, 1400, 900, 500, 260, 120, 50, 18, 6, 2, 1]
    print(f"  queue sizes {draining}")
    print(f"  aggregate 16-lane efficiency: "
          f"{queue_lane_efficiency(draining, 16):.1%} "
          "(why banking wants LARGE banks)")

    library = build_library("hm-large", LibraryConfig.tiny())
    print("\n=== 4. AoS vs SoA layout (the paper's key data transformation) ===")
    sample_n = 4000
    times = {}
    for layout in ("soa", "aos"):
        bench = XSBench(library, layout=layout)
        sample = bench.generate_lookups(sample_n)
        bench.run_banked(sample)  # warm
        t, _ = bench.run_banked(sample)
        times[layout] = t
        print(f"  banked lookups, {layout.upper()} layout: {t * 1e3:7.1f} ms")
    print(f"  SoA/AoS time ratio: {times['soa'] / times['aos']:.2f}")
    print(
        "  NOTE: NumPy fancy indexing is a *gather* either way, so AoS's\n"
        "  per-record cache locality can even win here.  The paper's SoA\n"
        "  advantage comes from unit-stride vector loads across lanes,\n"
        "  which only real SIMD hardware expresses — see the machine model\n"
        "  and EXPERIMENTS.md for the modelled effect."
    )

    print("\n=== 5. Proxy kernels: measured vectorization wins ===")
    bench = XSBench(library)
    small = bench.generate_lookups(600)
    t_hist, _ = bench.run_history(small)
    big = bench.generate_lookups(sample_n)
    t_bank, _ = bench.run_banked(big)
    print(f"  XSBench: history {600 / t_hist:9,.0f} lookups/s  "
          f"banked {sample_n / t_bank:11,.0f} lookups/s  "
          f"({(sample_n / t_bank) / (600 / t_hist):.0f}x)")

    rs = RSBench(RSBenchConfig(n_nuclides=6, resonances_per_nuclide=30))
    which, energies = rs.generate_lookups(3000)
    t_orig, _ = rs.run_original(which, energies)
    t_vec, _ = rs.run_vectorized(which, energies)
    print(f"  RSBench: original {3000 / t_orig:9,.0f} lookups/s  "
          f"vectorized {3000 / t_vec:8,.0f} lookups/s  "
          f"({t_orig / t_vec:.0f}x); data footprint {rs.nbytes / 1e3:.0f} KB")


if __name__ == "__main__":
    main()
