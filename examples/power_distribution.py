"""Assembly power distribution — what the H.M. benchmark is actually for.

The Hoogenboom-Martin benchmark was specified for "detailed power density
calculation in a full size reactor core".  This example runs the full-core
model with the event-based loop and survival biasing (implicit capture —
longer histories, lower variance) and prints the 17x17 assembly power map
as ASCII art, with per-assembly relative errors.

Run:  python examples/power_distribution.py
"""

import numpy as np

from repro import LibraryConfig, Settings, Simulation, build_library
from repro.geometry.hoogenboom import hm_core_pattern


def main() -> None:
    library = build_library("hm-small", LibraryConfig.tiny())
    sim = Simulation(
        library,
        Settings(
            n_particles=600,
            n_inactive=2,
            n_active=6,
            pincell=False,
            mode="event",
            seed=42,
            survival_biasing=True,
            tally_power=True,
        ),
    )
    print("Transporting 8 batches x 600 particles through the full core "
          "(event mode, survival biasing)...")
    result = sim.run()
    print(f"k-effective = {result.k_effective}")
    print(f"rate        = {result.calculation_rate:,.0f} neutrons/s\n")

    power = result.power.normalized_power()
    pattern = hm_core_pattern()
    print("Normalized assembly power (x100, '..' = no assembly):")
    for iy in range(16, -1, -1):  # print north at top
        row = []
        for ix in range(17):
            if not pattern[iy, ix]:
                row.append("  ..")
            else:
                row.append(f"{power[iy, ix] * 100:4.0f}")
        print(" ".join(row))

    fueled = power[pattern]
    print(f"\npeaking factor (max/avg): {fueled.max():.2f}")
    print(f"edge/center power tilt:   "
          f"{power[8, 1] / max(power[8, 8], 1e-9):.2f}")
    err = result.power.rel_err[pattern & (result.power.mean > 0)]
    print(f"median assembly rel. err: {np.median(err):.1%} "
          f"({result.power.n_batches} active batches)")
    print(
        "\nAt this demo scale the map is statistics-dominated (note the "
        "relative errors); increase n_particles/n_active for a converged "
        "center-peaked distribution."
    )


if __name__ == "__main__":
    main()
