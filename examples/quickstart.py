"""Quickstart: a pin-cell eigenvalue calculation, both transport algorithms.

Builds a synthetic H.M. Small nuclide library, runs a reflected PWR pin
cell with the history-based (OpenMC-style) and event-based (banked,
vectorized) transport loops, and shows that the two algorithms produce
*identical* results — the core correctness claim of the banking method —
while the banked loop runs substantially faster in Python (NumPy
vectorization standing in for SIMD).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import LibraryConfig, Settings, Simulation, build_library


def main() -> None:
    print("Building H.M. Small synthetic library (tiny fidelity)...")
    library = build_library("hm-small", LibraryConfig.tiny())
    print(f"  {len(library)} nuclides, {library.nbytes / 1e6:.1f} MB pointwise data")

    common = dict(
        n_particles=300, n_inactive=2, n_active=4, pincell=True, seed=2015
    )

    results = {}
    for mode in ("history", "event"):
        print(f"\nRunning {mode}-based transport...")
        sim = Simulation(library, Settings(mode=mode, **common))
        results[mode] = sim.run()
        r = results[mode]
        print(f"  k-effective          = {r.k_effective}")
        print(f"  calculation rate     = {r.calculation_rate:,.0f} neutrons/s")
        print(f"  collisions processed = {r.counters.collisions:,}")
        print(f"  XS lookups           = {r.counters.lookups:,}")

    kh = results["history"].statistics.k_collision
    ke = results["event"].statistics.k_collision
    identical = np.allclose(kh, ke, rtol=1e-12)
    print("\nPer-batch collision-estimator k values:")
    for b, (a, c) in enumerate(zip(kh, ke)):
        print(f"  batch {b}: history {a:.9f}   event {c:.9f}")
    print(f"\nHistory and event runs bit-identical: {identical}")
    speedup = (
        results["history"].wall_time / results["event"].wall_time
    )
    print(f"Event-based (vectorized) speedup over history: {speedup:.1f}x")


if __name__ == "__main__":
    main()
