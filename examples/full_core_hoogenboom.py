"""The Hoogenboom-Martin full-core benchmark, end to end.

Builds the 241-assembly PWR core (17x17 pins per assembly, guide tubes,
reflectors), verifies the two geometry engines agree, transports a
generation of fission neutrons through the full core with the event-based
loop, and compares this Python implementation's measured behaviour with the
machine model's prediction of the paper's hardware (Table III rates).

Run:  python examples/full_core_hoogenboom.py
"""

import numpy as np

from repro import LibraryConfig, Settings, Simulation, build_library
from repro.execution.native import NativeModel
from repro.execution.symmetric import SymmetricNode
from repro.geometry.hoogenboom import FastCoreGeometry, build_hm_geometry
from repro.machine.kernels import WorkPerParticle
from repro.machine.presets import JLSE_HOST, MIC_7120A


def main() -> None:
    print("=== Geometry: the Hoogenboom-Martin core ===")
    hm = build_hm_geometry("hm-small")
    fast = FastCoreGeometry()
    rng = np.random.default_rng(1)
    pts = np.column_stack(
        [rng.uniform(-200, 200, 2000) for _ in range(3)]
    )
    ids = fast.locate_many(pts)
    labels = {0: "fuel", 1: "cladding", 2: "water", -1: "outside"}
    for mid in (-1, 0, 1, 2):
        frac = np.mean(ids == mid)
        print(f"  {labels[mid]:9s}: {frac:6.1%} of sampled points")

    print("\n=== Transport: one active generation on the full core ===")
    library = build_library("hm-small", LibraryConfig.tiny())
    sim = Simulation(
        library,
        Settings(
            n_particles=200, n_inactive=1, n_active=2, pincell=False,
            mode="event", seed=7,
        ),
    )
    result = sim.run()
    print(f"  k-effective (vacuum-bounded core) = {result.k_effective}")
    print(f"  leaks: {result.counters.flights - result.counters.collisions:,} "
          f"flight segments ended at surfaces")
    work = WorkPerParticle.from_counters(result.counters,
                                         200 * result.n_batches)
    print(f"  measured work/particle: {work.lookups:.1f} lookups, "
          f"{work.collisions:.1f} collisions")

    print("\n=== Machine model: the paper's hardware on this workload ===")
    for label, model in (
        ("JLSE host (2x E5-2687W)", NativeModel(JLSE_HOST, "hm-large")),
        ("Xeon Phi 7120a (native)", NativeModel(MIC_7120A, "hm-large")),
    ):
        print(f"  {label:28s}: {model.calculation_rate(100_000):8,.0f} n/s")
    node = SymmetricNode(JLSE_HOST, [MIC_7120A, MIC_7120A], "hm-large")
    print(
        f"  {'CPU + 2 MIC (balanced)':28s}: "
        f"{node.calculation_rate(100_000, 'alpha', 0.62):8,.0f} n/s "
        "(paper: 17,098)"
    )


if __name__ == "__main__":
    main()
