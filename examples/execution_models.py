"""The three Xeon Phi execution models, compared (paper §II-B, §III).

Walks through the paper's decision space with the calibrated machine model:

* **offload** — when does shipping banked particles over PCIe beat doing
  the lookups on the host? (Fig. 3's ~10,000-particle crossover);
* **native** — how does the MIC's rate compare to the host's across batch
  sizes, and where does memory run out? (Fig. 5, alpha = 0.62);
* **symmetric** — what does static load balancing buy? (Table III), and
  how does the runtime-adaptive alpha of §V converge?

Run:  python examples/execution_models.py
"""

from repro.execution.loadbalance import AdaptiveAlphaController, alpha_split
from repro.execution.native import NativeModel, alpha
from repro.execution.offload import OffloadCostModel
from repro.execution.symmetric import SymmetricNode
from repro.machine.presets import JLSE_HOST, MIC_7120A, PCIE_GEN2_X16


def main() -> None:
    print("=== Offload mode (bank + PCIe + MIC compute) ===")
    off = OffloadCostModel(JLSE_HOST, MIC_7120A, PCIE_GEN2_X16, "hm-small")
    print(f"  one-time energy grid transfer: {off.grid_transfer_time():.2f} s")
    for n in (1_000, 10_000, 100_000, 1_000_000):
        verdict = "offload WINS" if off.profitable(n) else "host wins"
        print(
            f"  {n:>9,} particles: offload {off.offload_time(n):7.3f} s vs "
            f"host lookups {off.host_lookup_time(n):7.3f} s -> {verdict}"
        )
    print(f"  crossover: ~{off.crossover_particles():,} particles "
          "(paper: above 10,000)")

    print("\n=== Native mode (whole app on the MIC) ===")
    host = NativeModel(JLSE_HOST, "hm-large")
    mic = NativeModel(MIC_7120A, "hm-large")
    print(f"  {'particles':>10s} {'CPU n/s':>10s} {'MIC n/s':>10s} {'alpha':>7s}")
    for exp in range(3, 8):
        n = 10**exp
        a = alpha(JLSE_HOST, MIC_7120A, "hm-large", n)
        print(
            f"  {n:>10,} {host.calculation_rate(n):>10,.0f} "
            f"{mic.calculation_rate(n):>10,.0f} {a:>7.3f}"
        )
    print("  (paper: alpha = 0.61-0.62 for >= 1e4 particles; MIC 1.5-2x)")

    print("\n=== Symmetric mode (MPI ranks on host + MICs) ===")
    n = 100_000
    node1 = SymmetricNode(JLSE_HOST, [MIC_7120A], "hm-large")
    node2 = SymmetricNode(JLSE_HOST, [MIC_7120A, MIC_7120A], "hm-large")
    n_mic, n_cpu = alpha_split(n, 1, 1, 0.62)
    print(f"  Eq. 3 split for {n:,} particles at alpha=0.62: "
          f"MIC {n_mic:,}, CPU {n_cpu:,}")
    for label, node in (("CPU + 1 MIC", node1), ("CPU + 2 MIC", node2)):
        eq = node.calculation_rate(n, "equal")
        lb = node.calculation_rate(n, "alpha", 0.62)
        print(
            f"  {label}: equal split {eq:8,.0f} n/s -> balanced "
            f"{lb:8,.0f} n/s (+{lb / eq - 1:.0%})"
        )

    print("\n=== Adaptive alpha (paper §V future work) ===")
    ctrl = AdaptiveAlphaController(p_mic=1, p_cpu=1, smoothing=0.5)
    cpu_rate = host.calculation_rate(n)
    mic_rate = mic.calculation_rate(n)
    print("  batch  alpha estimate  MIC share of particles")
    for batch in range(1, 6):
        ctrl.observe(cpu_rate, mic_rate)
        n_mic, _ = ctrl.split(n)
        print(f"  {batch:5d}  {ctrl.alpha:14.4f}  {n_mic / n:.1%}")


if __name__ == "__main__":
    main()
