"""Downstream workflow: few-group constants from the continuous-energy data.

What a reactor analyst does with a Monte Carlo code: collapse materials
onto a coarse group structure for deterministic calculations.  This example
condenses the H.M. fuel and moderator to two groups (fast/thermal split at
0.625 eV), prints the group constants, solves the infinite-medium
eigenvalue, and shows the resonance self-shielding effect by refining the
group structure.

Run:  python examples/multigroup_workflow.py
"""

import numpy as np

from repro import LibraryConfig, build_library
from repro.data.multigroup import GroupStructure, condense
from repro.geometry.materials import make_fuel, make_water


def main() -> None:
    library = build_library("hm-small", LibraryConfig.tiny())
    fuel = make_fuel("hm-small")
    water = make_water()
    two = GroupStructure.two_group()

    print("=== Two-group constants (fast / thermal split at 0.625 eV) ===")
    for material in (fuel, water):
        mg = condense(library, material, two)
        print(f"\n  {material.name}:")
        print(f"    {'':12s} {'fast':>12s} {'thermal':>12s}")
        print(f"    {'Sigma_t':12s} {mg.sigma_t[0]:12.4f} {mg.sigma_t[1]:12.4f}")
        print(f"    {'Sigma_a':12s} {mg.sigma_a[0]:12.4f} {mg.sigma_a[1]:12.4f}")
        print(f"    {'nu Sigma_f':12s} {mg.nu_sigma_f[0]:12.4f} "
              f"{mg.nu_sigma_f[1]:12.4f}")
        print(f"    {'down-scatter':12s} {mg.scatter[0, 1]:12.4f} "
              f"{'(fast -> thermal)':>12s}")
        if mg.nu_sigma_f.max() > 0:
            print(f"    chi (fast fraction): {mg.chi[0]:.4f}")
            print(f"    k-infinity (2-group): {mg.k_infinity():.4f}")

    print("\n=== Resonance self-shielding: k_inf vs group count ===")
    print("  (smooth-spectrum condensation over-absorbs in resonances;")
    print("   finer groups recover — the classic lattice-physics lesson)")
    for n_groups in (1, 2, 4, 8, 16, 32):
        mg = condense(
            library, fuel, GroupStructure.equal_lethargy(n_groups),
            points_per_group=200,
        )
        bar = "#" * int(40 * mg.k_infinity() / 1.3)
        print(f"  {n_groups:3d} groups: k_inf = {mg.k_infinity():.4f} |{bar}")

    print("\n=== Group flux of the fundamental mode (8 groups) ===")
    mg = condense(library, fuel, GroupStructure.equal_lethargy(8))
    phi = mg.flux()
    for g in range(8):
        lo, hi = mg.structure.bounds(g)
        bar = "#" * int(50 * phi[g] / phi.max())
        print(f"  g={g} [{lo:8.2e}, {hi:8.2e}] MeV  {bar}")


if __name__ == "__main__":
    main()
