"""Distributed scaling on the simulated Stampede cluster (Figs. 6-7).

Sweeps node counts for the three node configurations (CPU-only, +1 MIC,
+2 MICs) in strong scaling (1e7 total particles) and weak scaling (1e6 per
node), printing rates and efficiencies.  Watch for the paper's signatures:
>= 95% strong-scaling efficiency at 128 nodes, the 1-MIC tail at 1,024
nodes, the 2-MIC curve ending at 384 nodes, and flat weak scaling.

Run:  python examples/cluster_scaling.py
"""

from repro.cluster.scaling import strong_scaling, weak_scaling
from repro.cluster.topology import STAMPEDE

ALPHA = 0.42  # the paper's measured Stampede alpha
NODES = [4, 8, 16, 32, 64, 128, 256, 512, 1024]


def main() -> None:
    print(f"Cluster: {STAMPEDE.name} — "
          f"{STAMPEDE.max_nodes_1mic} nodes with 1 MIC, "
          f"{STAMPEDE.max_nodes_2mic} with 2 MICs\n")

    print("=== Strong scaling: H.M. Large, 1e7 total particles ===")
    curves = {
        "CPU only": strong_scaling(STAMPEDE, NODES, 10_000_000, 0),
        "CPU+1MIC": strong_scaling(STAMPEDE, NODES, 10_000_000, 1, alpha=ALPHA),
        "CPU+2MIC": strong_scaling(STAMPEDE, NODES, 10_000_000, 2, alpha=ALPHA),
    }
    print(f"  {'nodes':>6s}" + "".join(f" {k:>20s}" for k in curves))
    for i, p in enumerate(NODES):
        cells = []
        for label, pts in curves.items():
            match = [pt for pt in pts if pt.nodes == p]
            if match:
                pt = match[0]
                cells.append(f"{pt.rate:>10,.0f} ({pt.efficiency:4.0%})")
            else:
                cells.append(f"{'—':>17s}")
        print(f"  {p:>6d}" + "".join(f" {c:>20s}" for c in cells))
    tail = [pt for pt in curves["CPU+1MIC"] if pt.nodes == 1024][0]
    print(f"\n  1-MIC tail at 1,024 nodes: {tail.efficiency:.0%} efficiency "
          f"({tail.particles_per_node:,} particles/node starves the MIC)")

    print("\n=== Weak scaling: 1e6 particles per node ===")
    pts = weak_scaling(
        STAMPEDE, [1, 4, 16, 64, 128, 512, 1024], 1_000_000, 1, alpha=ALPHA
    )
    for pt in pts:
        print(
            f"  {pt.nodes:>5d} nodes: {pt.rate:>12,.0f} n/s, "
            f"efficiency {pt.efficiency:.1%}, comm {pt.comm_time * 1e3:.2f} ms"
        )
    print("  (paper: > 94% to 128 nodes; predicted flat to 2^10 — confirmed)")


if __name__ == "__main__":
    main()
