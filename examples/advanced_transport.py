"""Advanced transport features: survival biasing, delta tracking, spectra.

Three capabilities beyond the paper's baseline, each compared against the
analog/surface-tracking reference on the same pin cell:

1. **survival biasing** — implicit capture + Russian roulette: longer
   histories, same eigenvalue, reduced variance;
2. **Woodcock delta tracking** — geometry-free flights against a majorant
   cross section (the SIMD-friendliest tracking scheme);
3. **flux spectrum** — the track-length energy spectrum with its thermal
   Maxwellian, 1/E slowing-down region, and Watt fission bump.

Run:  python examples/advanced_transport.py
"""

import numpy as np

from repro import LibraryConfig, Settings, Simulation, build_library
from repro.data.unionized import UnionizedGrid
from repro.transport.context import TransportContext
from repro.transport.events import run_generation_event
from repro.transport.spectrum import SpectrumTally
from repro.transport.tally import GlobalTallies


def main() -> None:
    library = build_library("hm-small", LibraryConfig.tiny())

    print("=== 1. Analog vs survival biasing vs delta tracking ===")
    print(f"  {'mode':28s} {'k-effective':>24s} {'collisions':>11s} "
          f"{'rate n/s':>9s}")
    for label, mode, survival in (
        ("event (analog)", "event", False),
        ("event + survival biasing", "event", True),
        ("delta tracking", "delta", False),
        ("delta + survival biasing", "delta", True),
    ):
        r = Simulation(
            library,
            Settings(
                n_particles=300, n_inactive=2, n_active=4, pincell=True,
                mode=mode, seed=2015, survival_biasing=survival,
            ),
        ).run()
        k = r.k_effective
        print(f"  {label:28s} {k.mean:10.5f} +/- {k.std_err:.5f} "
              f"{r.counters.collisions:>11,} {r.calculation_rate:>9,.0f}")
    print("  (same eigenvalue from every algorithm; survival biasing "
          "lengthens histories, delta pays virtual collisions)")

    print("\n=== 2. The flux spectrum (end-to-end physics check) ===")
    union = UnionizedGrid(library)
    ctx = TransportContext.create(
        library, pincell=True, union=union, master_seed=4,
        survival_biasing=True,
    )
    spec = SpectrumTally(n_bins=48)
    rng = np.random.default_rng(4)
    pos = np.column_stack(
        [rng.uniform(-0.3, 0.3, 400), rng.uniform(-0.3, 0.3, 400),
         rng.uniform(-150, 150, 400)]
    )
    en = np.full(400, 2.0)
    for g in range(3):
        bank = run_generation_event(
            ctx, pos, en, GlobalTallies(), 1.0, g * 400, spectrum=spec
        )
        pos, en = bank.sample_source(400, rng)

    phi = spec.per_lethargy()
    peak = phi.max()
    print("  flux per lethargy (log-energy axis, '#' bars):")
    marks = {
        spec.bin_of(2.5e-8): "<- kT (thermal)",
        spec.bin_of(1e-3): "<- 1/E slowing-down",
        spec.bin_of(2.0): "<- Watt fission source",
    }
    for b in range(0, spec.n_bins, 2):
        bar = "#" * int(40 * phi[b] / peak)
        note = marks.get(b, marks.get(b + 1, ""))
        print(f"  {spec.centers[b]:9.2e} MeV |{bar:40s}| {note}")
    print(f"\n  thermal (<4 eV) flux fraction: "
          f"{spec.fraction_below(4e-6):.1%}")


if __name__ == "__main__":
    main()
